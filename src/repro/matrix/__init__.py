"""Attack × defense sweep over gallery, seed, and regression rows."""

from .sweep import (
    DEFAULT_SEED,
    DEFAULT_STEP_BUDGET,
    SCHEMA,
    MatrixRow,
    attack_rows,
    build_report,
    canonical_report_json,
    collect_rows,
    diff_reports,
    evaluate_cell,
    regress_rows,
    render_report,
    run_attack_cell,
    run_program_cell,
    run_sweep,
    seed_rows,
)

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_STEP_BUDGET",
    "SCHEMA",
    "MatrixRow",
    "attack_rows",
    "build_report",
    "canonical_report_json",
    "collect_rows",
    "diff_reports",
    "evaluate_cell",
    "regress_rows",
    "render_report",
    "run_attack_cell",
    "run_program_cell",
    "run_sweep",
    "seed_rows",
]

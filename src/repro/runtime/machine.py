"""The simulated process: address space, loader, call stack, dispatch.

:class:`Machine` ties every substrate together and satisfies the
``NewContext`` / ``ObjectContext`` protocols, so placement new, object
field access, frame management and control transfers all operate on the
same bytes.  One machine == one victim process; attack scenarios
construct a machine, script the attacker's inputs, run the victim code
and inspect the outcome.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..core.placement import PlacementAuditLog
from ..cxx.classdef import ClassDef
from ..cxx.layout import LayoutEngine
from ..cxx.object_model import CArrayView, Instance
from ..cxx.text import TextImage
from ..cxx.types import CType
from ..cxx.vtable import VTableBuilder
from ..errors import ApiMisuseError, SegmentationFault, StackSmashingDetected
from ..memory.address_space import AddressSpace
from ..memory.alignment import align_up
from ..memory.encoding import POINTER_SIZE
from ..memory.heap import HeapAllocator
from ..memory.segments import SegmentKind
from ..memory.stack import StackRegion
from ..memory.tracker import AllocationTracker, ArenaOrigin
from . import shellcode as shellcode_mod
from .canary import CanaryPolicy, CanarySource
from .control_flow import ExecutionKind, ExecutionResult, FrameExit
from .frames import INITIAL_FRAME_POINTER, CallFrame, FrameSlots
from .functions import CALLER_SYMBOL, install_standard_library
from .io import FileSystem, SimulatedStdin


@dataclass(frozen=True)
class MachineConfig:
    """Compile-time/runtime hardening knobs of the victim process."""

    canary_policy: CanaryPolicy = CanaryPolicy.NONE
    canary_seed: Optional[int] = 1337
    save_frame_pointer: bool = True
    nx_stack: bool = False
    nx_heap: bool = False
    #: Fault on misaligned typed access (SIGBUS), as strict targets do;
    #: the paper's x86 testbed is permissive, hence the default.
    strict_alignment: bool = False


@dataclass
class GlobalVar:
    """One data/bss global: where it lives and how to read it."""

    name: str
    address: int
    size: int
    segment: SegmentKind
    ctype: Optional[CType] = None
    class_def: Optional[ClassDef] = None


class Machine:
    """One simulated victim process."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.space = AddressSpace(
            nx_stack=self.config.nx_stack,
            nx_heap=self.config.nx_heap,
            strict_alignment=self.config.strict_alignment,
        )
        self.layouts = LayoutEngine()
        self.text = TextImage(self.space)
        self.vtables = VTableBuilder(self.text)
        self.heap = HeapAllocator(self.space)
        self.stack = StackRegion(self.space)
        self.tracker = AllocationTracker()
        self.placement_log = PlacementAuditLog()
        self.canaries = CanarySource(
            self.config.canary_policy, seed=self.config.canary_seed
        )
        self.stdin = SimulatedStdin()
        self.files = FileSystem()
        #: Optional MemoryEventTap; writers that install vptrs announce
        #: the slot through it so later tampering is distinguishable.
        self.event_tap = None
        #: Optional shadow call stack (:mod:`repro.defenses.shadow_stack`).
        #: When set, every push_frame records the frame's return address
        #: in protected storage and every pop_frame verifies it — the
        #: machine-integrated equivalent of a hardware shadow stack.
        self.call_shadow = None
        self.events: list[str] = []
        self.syscalls: list[str] = []
        self._globals: dict[str, GlobalVar] = {}
        data = self.space.segment(SegmentKind.DATA)
        bss = self.space.segment(SegmentKind.BSS)
        self._cursors = {SegmentKind.DATA: data.base, SegmentKind.BSS: bss.base}
        install_standard_library(self)

    # -- events ---------------------------------------------------------------

    def record_event(self, message: str) -> None:
        """Append to the process's observable-behaviour log."""
        self.events.append(message)

    @property
    def shell_spawned(self) -> bool:
        """Did any transfer end in a shell? (the attacker's usual goal)"""
        return "spawn_shell" in self.syscalls

    # -- globals (data/bss) -------------------------------------------------

    def _reserve_static(
        self, size: int, alignment: int, segment: SegmentKind
    ) -> int:
        if segment not in (SegmentKind.DATA, SegmentKind.BSS):
            raise ApiMisuseError(f"globals live in data or bss, not {segment}")
        address = align_up(self._cursors[segment], alignment)
        seg = self.space.segment(segment)
        if address + size > seg.end:
            raise ApiMisuseError(f"{segment.value} segment exhausted")
        self._cursors[segment] = address + size
        return address

    def static_object(
        self,
        class_def: ClassDef,
        name: str,
        segment: SegmentKind = SegmentKind.BSS,
    ) -> Instance:
        """Declare a global object (storage only; construction is the
        program's job, matching C++ where it runs at a definite time)."""
        layout = self.layouts.layout_of(class_def)
        address = self._reserve_static(layout.size, layout.alignment, segment)
        self._globals[name] = GlobalVar(
            name=name,
            address=address,
            size=layout.size,
            segment=segment,
            class_def=class_def,
        )
        self.tracker.record(address, layout.size, ArenaOrigin.STATIC, label=name)
        return Instance(self, class_def, address)

    def static_scalar(
        self,
        ctype: CType,
        name: str,
        init: Any = None,
        segment: Optional[SegmentKind] = None,
    ) -> GlobalVar:
        """Declare a global scalar; initialized ones go to data, others
        to bss, matching the ELF convention the paper cites."""
        if segment is None:
            segment = SegmentKind.DATA if init is not None else SegmentKind.BSS
        address = self._reserve_static(ctype.size, ctype.alignment, segment)
        var = GlobalVar(
            name=name, address=address, size=ctype.size, segment=segment, ctype=ctype
        )
        self._globals[name] = var
        if init is not None:
            self.space.write(address, ctype.encode(init))
        return var

    def static_array(
        self,
        element: CType,
        count: int,
        name: str,
        segment: SegmentKind = SegmentKind.BSS,
    ) -> CArrayView:
        """Declare a global array."""
        if count <= 0:
            raise ApiMisuseError(f"array length must be positive, got {count}")
        size = element.size * count
        address = self._reserve_static(size, element.alignment, segment)
        self._globals[name] = GlobalVar(
            name=name, address=address, size=size, segment=segment, ctype=element
        )
        return CArrayView(self, element, count, address)

    def global_var(self, name: str) -> GlobalVar:
        """Look up a declared global."""
        try:
            return self._globals[name]
        except KeyError:
            raise ApiMisuseError(f"no global named '{name}'") from None

    def read_global(self, name: str) -> Any:
        """Decode a scalar global's current value."""
        var = self.global_var(name)
        if var.ctype is None:
            raise ApiMisuseError(f"global '{name}' is an object, not a scalar")
        return var.ctype.decode(self.space.read(var.address, var.ctype.size))

    def write_global(self, name: str, value: Any) -> None:
        """Encode a value into a scalar global."""
        var = self.global_var(name)
        if var.ctype is None:
            raise ApiMisuseError(f"global '{name}' is an object, not a scalar")
        self.space.write(var.address, var.ctype.encode(value))

    # -- typed views ---------------------------------------------------------

    def instance(self, class_def: ClassDef, address: int) -> Instance:
        """A typed window at an arbitrary address (C++ pointer cast)."""
        return Instance(self, class_def, address)

    def sizeof(self, class_def: ClassDef) -> int:
        """``sizeof`` through the layout engine."""
        return self.layouts.sizeof(class_def)

    # -- frames -----------------------------------------------------------

    def push_frame(self, name: str) -> CallFrame:
        """Simulate ``call name``: lay down ret addr, saved FP, canary.

        The fixed words are packed contiguously — [canary][saved FP]
        [return address] from low to high — and the *lowest* of them is
        placed on an 8-byte boundary, so an 8-aligned local object sits
        flush against them.  That adjacency is the paper's Listing 13
        index arithmetic: overflowing word *i* of the object hits fixed
        slot *i* with no gap.
        """
        from ..memory.alignment import align_down

        saved_sp = self.stack.stack_pointer
        caller = self.text.function_named(CALLER_SYMBOL)
        assert caller is not None
        fixed_words = 1
        if self.config.save_frame_pointer:
            fixed_words += 1
        if self.canaries.policy.enabled:
            fixed_words += 1
        block_base = align_down(
            self.stack.stack_pointer - fixed_words * POINTER_SIZE, 8
        )
        self.stack.reserve_to(block_base)
        cursor = block_base
        canary_slot: Optional[int] = None
        canary_value: Optional[int] = None
        if self.canaries.policy.enabled:
            canary_value = self.canaries.value
            canary_slot = cursor
            self.space.write_int(
                canary_slot, canary_value, width=POINTER_SIZE, signed=False
            )
            cursor += POINTER_SIZE
        fp_slot: Optional[int] = None
        if self.config.save_frame_pointer:
            fp_slot = cursor
            self.space.write_pointer(fp_slot, INITIAL_FRAME_POINTER)
            cursor += POINTER_SIZE
        return_slot = cursor
        self.space.write_pointer(return_slot, caller.address)
        slots = FrameSlots(
            return_slot=return_slot, fp_slot=fp_slot, canary_slot=canary_slot
        )
        frame = CallFrame(
            machine=self,
            name=name,
            slots=slots,
            original_return=caller.address,
            saved_fp=INITIAL_FRAME_POINTER,
            saved_sp=saved_sp,
            canary_value=canary_value,
        )
        if self.call_shadow is not None:
            self.call_shadow.record_call(frame)
        return frame

    def pop_frame(self, frame: CallFrame) -> FrameExit:
        """Simulate the epilogue + ``ret``.

        Order matches gcc: the stack-protector check runs *first* (and
        aborts via :class:`StackSmashingDetected`), then control
        transfers to whatever the return slot now holds.
        """
        if frame.closed:
            raise ApiMisuseError(f"frame {frame.name} already popped")
        frame.closed = True
        for arena_address in frame._tracked_arenas:
            self.tracker.forget(arena_address)
        canary_intact: Optional[bool] = None
        if frame.canary_value is not None:
            found = frame.read_canary()
            assert found is not None
            canary_intact = found == frame.canary_value
            if not canary_intact:
                self.stack.pop_to(frame.saved_sp)
                self.record_event(f"*** stack smashing detected ***: {frame.name}")
                raise StackSmashingDetected(
                    frame.name, expected=frame.canary_value, found=found
                )
        fp_clobbered = False
        saved_fp = frame.read_saved_fp()
        if saved_fp is not None and saved_fp != frame.saved_fp:
            fp_clobbered = True
        return_target = frame.read_return_address()
        if self.call_shadow is not None:
            # Shadow-stack check runs where the hardware's would: after
            # the canary (gcc epilogue order) and before the transfer.
            self.call_shadow.check_return(frame, return_target)
        self.stack.pop_to(frame.saved_sp)
        if return_target == frame.original_return:
            return FrameExit(
                function=frame.name,
                normal=True,
                returned_to=return_target,
                original_return=frame.original_return,
                canary_intact=canary_intact,
                fp_clobbered=fp_clobbered,
            )
        execution = self.execute_at(return_target)
        return FrameExit(
            function=frame.name,
            normal=False,
            returned_to=return_target,
            original_return=frame.original_return,
            canary_intact=canary_intact,
            fp_clobbered=fp_clobbered,
            execution=execution,
        )

    @contextmanager
    def frame(self, name: str) -> Iterator[CallFrame]:
        """Run a function body in a frame; the epilogue runs on exit.

        The :class:`FrameExit` is stored on the frame as ``frame.exit``.
        :class:`StackSmashingDetected` propagates, as an abort would.
        """
        call_frame = self.push_frame(name)
        try:
            yield call_frame
        finally:
            if not call_frame.closed:
                call_frame.exit = self.pop_frame(call_frame)  # type: ignore[attr-defined]

    # -- control transfers ------------------------------------------------------

    def execute_at(self, address: int, *args: Any) -> ExecutionResult:
        """Transfer control to an arbitrary address.

        Resolution order mirrors hardware: a registered function entry
        executes natively; otherwise the bytes at ``address`` are fetched
        and interpreted, subject to mapping and NX checks.
        """
        entry = self.text.function_at(address)
        if entry is not None:
            value = entry.callable(self, *args)
            return ExecutionResult(
                address=address,
                kind=ExecutionKind.NATIVE,
                function_name=entry.name,
                privileged=entry.privileged,
                return_value=value,
            )
        segment = self.space.find_segment(address)
        if segment is not None and segment.kind is SegmentKind.TEXT:
            # Inside text but not at a function entry: decodes garbage.
            raise SegmentationFault(
                address, "execute", "jump into the middle of text"
            )
        result = shellcode_mod.interpret(self.space, address, enforce_nx=True)
        self.syscalls.extend(result.syscalls)
        for name in result.syscalls:
            self.record_event(f"shellcode syscall: {name}")
        return ExecutionResult(
            address=address, kind=ExecutionKind.SHELLCODE, shellcode=result
        )

    def virtual_call(self, instance: Instance, method: str, *args: Any) -> ExecutionResult:
        """Dispatch ``instance->method(args...)`` through memory.

        Every step a compiled vcall performs is done on simulated bytes:
        load the vptr from the object, index the table, load the slot,
        jump.  A corrupted vptr therefore behaves exactly as in
        Section 3.8.2 — attacker-chosen methods run, or the process
        crashes on a wild pointer.
        """
        slot_index = self.vtables.slot_index(instance.class_def, method)
        layout = instance.layout
        vptr = self.space.read_pointer(
            instance.address + layout.primary_vptr_offset
        )
        slot_address = vptr + slot_index * POINTER_SIZE
        target = self.space.read_pointer(slot_address)
        return self.execute_at(target, instance, *args)

    def call_function_pointer(self, address: int, *args: Any) -> ExecutionResult:
        """Invoke a function pointer value (Listing 17's call site)."""
        return self.execute_at(address, *args)

    # -- diagnostics ------------------------------------------------------------

    def memory_map(self) -> str:
        """The process's memory map."""
        return self.space.describe()

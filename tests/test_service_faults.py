"""Fault-injection hardening suite (repro.service.faults).

The acceptance bar from the hardening issue: for every fault kind in
:class:`FaultPlan` — worker crash, hang past deadline, transient burst,
corrupt cache, unwritable disk, slow disk — every submitted job must
resolve to a terminal :class:`JobStatus`, ``drain()`` must return, and
no cache write error may flip a SUCCEEDED outcome.
"""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.service import (
    FaultInjected,
    FaultKind,
    FaultPlan,
    Job,
    JobStatus,
    MetricsRegistry,
    ResultCache,
    Scheduler,
    ServiceEngine,
    WorkerPool,
    execute_job_with_faults,
    fault_plan_from,
    register_worker,
    render_prometheus,
)

TERMINAL = (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.TIMED_OUT)


@dataclass(frozen=True)
class EchoJob(Job):
    token: str = ""

    KIND = "test-echo"


@pytest.fixture(autouse=True)
def _echo_worker():
    register_worker("test-echo", lambda payload: {"token": payload.get("token", "")})


class TestFaultPlanSpec:
    def test_parse_full_clause(self):
        plan = FaultPlan.parse("crash:analyze:2:0.1")
        (rule,) = plan.rules
        assert rule.kind is FaultKind.CRASH
        assert rule.selector == "analyze"
        assert rule.times == 2
        assert rule.delay == 0.1

    def test_parse_defaults_and_unlimited(self):
        plan = FaultPlan.parse("transient, hang:*:*:0.5")
        assert plan.rules[0].selector == "*"
        assert plan.rules[0].times == 1
        assert plan.rules[1].times is None
        assert plan.rules[1].delay == 0.5

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode")

    def test_parse_rejects_malformed_clause(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("crash:a:b:c:d:e")

    def test_activate_respects_selector_times_and_accounting(self):
        plan = FaultPlan().add("crash", selector="analyze", times=1)
        assert plan.activate(("crash",), job_kind="attack") is None
        assert plan.activate(("crash",), job_kind="analyze") is not None
        assert plan.activate(("crash",), job_kind="analyze") is None  # spent
        assert plan.injected["crash"] == 1
        assert plan.total_injected == 1
        assert plan.stats()["rules_live"] == 0

    def test_selector_matches_key_prefix(self):
        plan = FaultPlan().add("unwritable-disk", selector="analyze")
        assert plan.activate(("unwritable-disk",), key="analyze-3f2b") is not None

    def test_fault_plan_from_coercions(self):
        assert fault_plan_from(None) is None
        plan = FaultPlan()
        assert fault_plan_from(plan) is plan
        parsed = fault_plan_from("crash")
        assert isinstance(parsed, FaultPlan)
        assert parsed.rules[0].kind is FaultKind.CRASH


class TestWorkerSeam:
    def test_crash_rule_raises_fault_injected(self):
        plan = FaultPlan().add("crash", times=1)
        with pytest.raises(FaultInjected):
            execute_job_with_faults(plan, "test-echo", {"token": "x"})
        # the rule burned out: the next run goes through
        assert execute_job_with_faults(plan, "test-echo", {"token": "x"}) == {
            "token": "x"
        }

    def test_hang_rule_delays_then_completes(self):
        plan = FaultPlan().add("hang", times=1, delay=0.1)
        started = time.monotonic()
        result = execute_job_with_faults(plan, "test-echo", {"token": "h"})
        assert result == {"token": "h"}
        assert time.monotonic() - started >= 0.1

    def test_process_backend_refuses_fault_plan(self):
        with pytest.raises(ValueError, match="thread backend"):
            WorkerPool(max_workers=1, backend="process", fault_plan=FaultPlan())


@pytest.mark.parametrize(
    "spec,expect_status",
    [
        ("crash:*:*", JobStatus.FAILED),
        ("hang:*:*:0.5", JobStatus.TIMED_OUT),
        ("transient:*:*", JobStatus.FAILED),  # unlimited burst exhausts retries
        ("unwritable-disk:*:*", JobStatus.SUCCEEDED),
        ("slow-disk:*:*:0.01", JobStatus.SUCCEEDED),
        ("corrupt-cache:*:*", JobStatus.SUCCEEDED),
    ],
)
def test_every_fault_kind_resolves_terminally_and_drain_returns(
    spec, expect_status, tmp_path
):
    """The headline guarantee: induced faults never hang a job."""
    plan = FaultPlan.parse(spec)
    cache = ResultCache(directory=str(tmp_path), version="f1", fault_plan=plan)
    pool = WorkerPool(max_workers=2, fault_plan=plan)
    with Scheduler(
        pool=pool,
        cache=cache,
        fault_plan=plan,
        max_retries=2,
        sleep=lambda _: None,
    ) as scheduler:
        handles = scheduler.map(
            [EchoJob(token=f"{spec}-{i}") for i in range(6)],
            timeout=0.1,
        )
        scheduler.drain()  # must return, never wedge
        outcomes = [handle.outcome(timeout=10) for handle in handles]
    assert all(outcome.status in TERMINAL for outcome in outcomes)
    assert all(outcome.status is expect_status for outcome in outcomes), outcomes
    assert plan.total_injected >= 6


class TestCacheFaultSemantics:
    def test_unwritable_disk_never_flips_a_success(self, tmp_path):
        plan = FaultPlan().add("unwritable-disk", times=None)
        cache = ResultCache(directory=str(tmp_path), version="v", fault_plan=plan)
        metrics = MetricsRegistry()
        with Scheduler(
            pool=WorkerPool(max_workers=2), cache=cache, metrics=metrics
        ) as scheduler:
            outcome = scheduler.submit(EchoJob(token="w")).outcome(timeout=5)
            assert outcome.status is JobStatus.SUCCEEDED
            assert cache.write_errors == 1
            # the in-memory tier still serves the result
            warm = scheduler.submit(EchoJob(token="w")).outcome(timeout=5)
            assert warm.from_cache
        counters = metrics.snapshot()["counters"]
        assert counters["scheduler.cache_write_errors"] == 1
        stages = [span["stage"] for span in outcome.trace["spans"]]
        assert "cache-write-error" in stages

    def test_corrupt_entry_reads_as_a_miss(self, tmp_path):
        plan = FaultPlan().add("corrupt-cache", times=1)
        poisoned = ResultCache(
            directory=str(tmp_path), version="v", fault_plan=plan
        )
        poisoned.put("test-echo-k", {"fine": True})
        fresh = ResultCache(directory=str(tmp_path), version="v")
        assert fresh.get("test-echo-k") is None  # tolerated, not raised
        assert fresh.misses == 1

    def test_slow_disk_does_not_block_readers(self, tmp_path):
        plan = FaultPlan().add("slow-disk", times=None, delay=0.5)
        cache = ResultCache(directory=str(tmp_path), version="v", fault_plan=plan)
        cache.put("seed", {"n": 0})  # eats the first slow write

        done = threading.Event()
        threading.Thread(
            target=lambda: (cache.put("slow", {"n": 1}), done.set()),
            daemon=True,
        ).start()
        time.sleep(0.05)  # writer is now asleep inside the disk fault
        started = time.monotonic()
        assert cache.get("seed") == {"n": 0}  # memory read: not serialized
        assert time.monotonic() - started < 0.3
        assert done.wait(5)


class TestEngineIntegration:
    def test_engine_accepts_spec_string_and_counts_faults(self, tmp_path):
        with ServiceEngine(
            workers=2,
            cache_dir=str(tmp_path),
            fault_plan="transient:analyze:1",
        ) as engine:
            report = engine.analyze("void f() {}", label="fi")
            assert report["label"] == "fi"
            snapshot = engine.metrics_snapshot()
        assert snapshot["faults"]["injected"]["transient"] == 1
        assert snapshot["counters"]["scheduler.jobs_retried"] == 1

    def test_prometheus_rendering_includes_new_gauges(self, tmp_path):
        with ServiceEngine(
            workers=2, cache_dir=str(tmp_path), fault_plan="crash:attack:1"
        ) as engine:
            engine.analyze("void f() {}")
            text = engine.metrics_prometheus()
        assert "# TYPE repro_scheduler_jobs_submitted_total counter" in text
        assert "repro_scheduler_queue_depth" in text
        assert "repro_cache_write_errors 0" in text
        assert "repro_faults_injected_crash 0" in text
        assert 'repro_pool_info{backend="thread"} 1' in text
        # deterministic: identical state renders byte-identically
        assert text == render_prometheus(engine.metrics_snapshot())

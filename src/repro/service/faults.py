"""Deterministic fault injection for the service layer.

The paper's DoS experiments (Section 4.4) weaponize overflows into
denial of service; this module lets us turn the same hostility on our
own scheduler/cache/worker stack and prove every induced fault still
resolves to a terminal :class:`~repro.service.scheduler.JobStatus`.

A :class:`FaultPlan` is a small, thread-safe list of :class:`FaultRule`
entries.  Components that own a fault *seam* (the worker pool, the
result cache, the scheduler's dispatch path) call
:meth:`FaultPlan.activate` with the fault kinds they know how to honor;
the plan returns the first matching rule (decrementing its remaining
activation budget) or ``None``.  The seam — not the plan — interprets
the rule, so this module imports nothing from its siblings and the
injection points stay visible in the production code instead of hiding
behind monkeypatches.

Seam ownership:

- ``workers.py`` honors :data:`WORKER_FAULTS` (``crash``, ``hang``) —
  a crash raises :class:`FaultInjected`; a hang sleeps ``rule.delay``
  seconds before completing, long enough to blow a job deadline.
- ``scheduler.py`` honors :data:`DISPATCH_FAULTS` (``transient``) —
  a burst of retryable :class:`~repro.service.workers.TransientWorkerError`
  raised before dispatch, exercising the retry/backoff machinery.
- ``cache.py`` honors :data:`CACHE_FAULTS` (``unwritable-disk``,
  ``slow-disk``, ``corrupt-cache``) at the disk-write seam.
- ``repro.cluster.router`` honors :data:`CLUSTER_FAULTS`
  (``shard-crash``, ``partition``) at its dispatch seam — a shard
  crash kills the job's owner shard before dispatch (exercising ring
  failover and re-dispatch), a partition makes the owner unreachable
  for that one request so it routes to the ring successor instead.

Plans are deterministic: rules fire in order, each at most ``times``
times (``None`` = unlimited), so a test or a ``repro-serve
--fault-plan`` demo produces the same fault sequence on every run.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple


class FaultInjected(RuntimeError):
    """A non-retryable failure injected by a fault plan (worker crash)."""


class FaultKind(str, enum.Enum):
    """Every fault the service's seams know how to inject."""

    CRASH = "crash"  # worker raises FaultInjected (terminal FAILED)
    HANG = "hang"  # worker sleeps past the job deadline (TIMED_OUT)
    TRANSIENT = "transient"  # retryable TransientWorkerError burst
    UNWRITABLE_DISK = "unwritable-disk"  # cache write raises OSError
    SLOW_DISK = "slow-disk"  # cache write sleeps rule.delay seconds
    CORRUPT_CACHE = "corrupt-cache"  # cache writes an unparseable entry
    SHARD_CRASH = "shard-crash"  # cluster router kills the owner shard
    PARTITION = "partition"  # owner unreachable for one request


#: Kinds honored by the :class:`~repro.service.workers.WorkerPool` seam.
WORKER_FAULTS: Tuple[FaultKind, ...] = (FaultKind.CRASH, FaultKind.HANG)
#: Kinds honored by the scheduler's pre-dispatch seam.
DISPATCH_FAULTS: Tuple[FaultKind, ...] = (FaultKind.TRANSIENT,)
#: Kinds honored by the result cache's disk-write seam.
CACHE_FAULTS: Tuple[FaultKind, ...] = (
    FaultKind.UNWRITABLE_DISK,
    FaultKind.SLOW_DISK,
    FaultKind.CORRUPT_CACHE,
)
#: Kinds honored by the cluster router's dispatch seam.
CLUSTER_FAULTS: Tuple[FaultKind, ...] = (
    FaultKind.SHARD_CRASH,
    FaultKind.PARTITION,
)


@dataclass
class FaultRule:
    """One injectable fault: what, where, how often, how long."""

    kind: FaultKind
    #: ``"*"`` matches every job; otherwise matched against the job kind
    #: (``"analyze"``) or as a prefix of the job/cache key
    #: (``"analyze-3f2b..."`` keys start with their kind).
    selector: str = "*"
    #: Remaining activations; ``None`` = unlimited.
    times: Optional[int] = 1
    #: Sleep duration for ``hang`` / ``slow-disk`` rules.
    delay: float = 0.25

    def matches(self, job_kind: str, key: str) -> bool:
        if self.selector == "*":
            return True
        if job_kind and self.selector == job_kind:
            return True
        return bool(key) and key.startswith(self.selector)


@dataclass
class FaultPlan:
    """An ordered, thread-safe set of fault rules with hit accounting."""

    rules: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self.injected: dict = {kind.value: 0 for kind in FaultKind}

    # -- construction ------------------------------------------------------

    def add(
        self,
        kind: "FaultKind | str",
        selector: str = "*",
        times: Optional[int] = 1,
        delay: float = 0.25,
    ) -> "FaultPlan":
        """Append one rule; chainable (``plan.add(...).add(...)``)."""
        self.rules.append(
            FaultRule(FaultKind(kind), selector=selector, times=times, delay=delay)
        )
        return self

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact CLI spec.

        The spec is comma-separated ``kind[:selector[:times[:delay]]]``
        clauses, e.g. ``"crash:analyze:2,hang:*:1:0.5,transient"``.
        ``times`` of ``*`` (or ``inf``) means unlimited.  Raises
        :class:`ValueError` on unknown kinds or malformed clauses.
        """
        plan = cls()
        for clause in filter(None, (part.strip() for part in spec.split(","))):
            fields = clause.split(":")
            if len(fields) > 4:
                raise ValueError(f"malformed fault clause '{clause}'")
            try:
                kind = FaultKind(fields[0])
            except ValueError:
                known = ", ".join(k.value for k in FaultKind)
                raise ValueError(
                    f"unknown fault kind '{fields[0]}' (known: {known})"
                ) from None
            selector = fields[1] if len(fields) > 1 and fields[1] else "*"
            times: Optional[int] = 1
            if len(fields) > 2 and fields[2]:
                times = None if fields[2] in ("*", "inf") else int(fields[2])
            delay = float(fields[3]) if len(fields) > 3 and fields[3] else 0.25
            plan.add(kind, selector=selector, times=times, delay=delay)
        return plan

    # -- the seam entry point ----------------------------------------------

    def activate(
        self,
        kinds: Sequence["FaultKind | str"],
        job_kind: str = "",
        key: str = "",
    ) -> Optional[FaultRule]:
        """The first live rule matching this seam's kinds, or ``None``.

        A returned rule has already been charged one activation; the
        caller is responsible for carrying out the fault.
        """
        wanted = {FaultKind(kind) for kind in kinds}
        with self._lock:
            for rule in self.rules:
                if rule.kind not in wanted or rule.times == 0:
                    continue
                if not rule.matches(job_kind, key):
                    continue
                if rule.times is not None:
                    rule.times -= 1
                self.injected[rule.kind.value] += 1
                return rule
        return None

    # -- introspection -----------------------------------------------------

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def stats(self) -> dict:
        """Accounting snapshot folded into the metrics endpoint."""
        with self._lock:
            live = sum(1 for rule in self.rules if rule.times != 0)
            return {
                "enabled": True,
                "rules": len(self.rules),
                "rules_live": live,
                "injected_total": sum(self.injected.values()),
                "injected": dict(self.injected),
            }

    def describe(self) -> str:
        """One-line summary for the ``repro-serve`` startup banner."""
        return ", ".join(
            f"{rule.kind.value}:{rule.selector}"
            + ("" if rule.times is None else f"x{rule.times}")
            for rule in self.rules
        )


def fault_plan_from(spec: "FaultPlan | str | Iterable | None") -> Optional[FaultPlan]:
    """Coerce a plan, spec string, or rule iterable into a plan (or None)."""
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, str):
        return FaultPlan.parse(spec)
    plan = FaultPlan()
    for rule in spec:
        plan.rules.append(rule)
    return plan

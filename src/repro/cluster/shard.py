"""Cluster shards: the units the consistent-hash ring routes across.

A shard is one :class:`~repro.service.engine.ServiceEngine` plus the
async seam the router needs: run a job, probe/warm the result cache,
drain, die.  Two implementations share that seam:

:class:`InProcessShard`
    The engine lives in this process; blocking scheduler calls run on
    a shard-owned thread pool so the router's event loop never blocks.
    This is what tests and the default ``repro-cluster`` use.

:class:`SubprocessShard`
    The engine lives in a child ``repro-serve`` process (launched as
    ``python -m repro.service --shard-id ...``) and is reached through
    :class:`~repro.cluster.client.AsyncServiceClient` — the deployment
    shape, where shard loss is a real process death.

Lifecycle: ``active`` shards accept work; ``draining`` shards finish
what they already accepted but reject new submissions (the router
stops routing to them); ``dead`` shards reject everything with
:class:`ShardLost`.  A kill is deliberately brutal: work in flight on
a killed shard is *lost* (the router re-dispatches it to the ring
successor), which is exactly the failure the determinism tests pin
down.
"""

from __future__ import annotations

import asyncio
import os
import re
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from ..service.engine import ServiceEngine
from ..service.jobs import Job
from .client import AsyncServiceClient

ACTIVE = "active"
DRAINING = "draining"
DEAD = "dead"


class ShardLost(RuntimeError):
    """The shard died before (or while) running the request."""

    def __init__(self, shard_id: str, detail: str = ""):
        super().__init__(
            f"shard '{shard_id}' lost" + (f": {detail}" if detail else "")
        )
        self.shard_id = shard_id


class InProcessShard:
    """A ServiceEngine running inside the router's process."""

    def __init__(
        self,
        shard_id: str,
        workers: int = 2,
        backend: str = "thread",
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        fault_plan=None,
    ):
        self.shard_id = shard_id
        self.state = ACTIVE
        self.engine = ServiceEngine(
            workers=workers,
            backend=backend,
            cache_dir=cache_dir,
            use_cache=use_cache,
            fault_plan=fault_plan,
            shard_id=shard_id,
        )
        # +4 headroom: cache probes and health checks must not queue
        # behind a full complement of blocking job runs
        self._executor = ThreadPoolExecutor(
            max_workers=workers + 4,
            thread_name_prefix=f"shard-{shard_id}",
        )
        self.inflight = 0
        self.completed = 0

    async def _call(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    # -- the shard seam ----------------------------------------------------

    async def run_job(self, job: Job) -> dict:
        """Run one job to completion on this shard's engine.

        Raises :class:`ShardLost` if the shard is dead on arrival *or*
        dies mid-run — a result computed by a crashing shard is
        discarded, exactly as a process death would lose it.
        """
        if self.state == DEAD:
            raise ShardLost(self.shard_id, "submit after death")
        if self.state == DRAINING:
            raise ShardLost(self.shard_id, "draining, not accepting work")
        self.inflight += 1
        try:
            result = await self._call(
                self.engine.scheduler.run, job
            )
        finally:
            self.inflight -= 1
        if self.state == DEAD:
            raise ShardLost(self.shard_id, "died while running job")
        self.completed += 1
        return result

    async def cache_probe(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        if self.state == DEAD:
            return None, None
        return await self._call(self.engine.cache_lookup, key)

    async def cache_put(self, key: str, value: dict) -> bool:
        if self.state == DEAD:
            return False
        return await self._call(self.engine.cache_store, key, value)

    async def health(self) -> dict:
        if self.state == DEAD:
            raise ShardLost(self.shard_id)
        return await self._call(self.engine.health)

    async def metrics_snapshot(self) -> dict:
        return await self._call(self.engine.metrics_snapshot)

    async def metrics_prometheus(self, emit_types: bool = True) -> str:
        return await self._call(self.engine.metrics_prometheus, emit_types)

    # -- lifecycle ---------------------------------------------------------

    def start_drain(self) -> None:
        """Stop accepting work; already-accepted jobs run to completion."""
        if self.state == ACTIVE:
            self.state = DRAINING

    def kill(self) -> None:
        """Simulate a crash: every current and future request is lost."""
        self.state = DEAD

    async def close(self) -> None:
        self.state = DEAD
        await asyncio.get_running_loop().run_in_executor(
            None, self.engine.close
        )
        self._executor.shutdown(wait=False)

    def describe(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "mode": "inprocess",
            "state": self.state,
            "inflight": self.inflight,
            "completed": self.completed,
        }


#: job KIND → repro-serve endpoint, for shards reached over HTTP.
_KIND_PATHS = {
    "analyze": "/analyze",
    "attack": "/attacks",
    "exec": "/exec",
}

_BANNER = re.compile(r"listening on http://[^:]+:(\d+)")


class SubprocessShard:
    """A ``repro-serve`` child process reached over the async client."""

    def __init__(
        self,
        shard_id: str,
        workers: int = 2,
        backend: str = "thread",
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        host: str = "127.0.0.1",
        startup_timeout: float = 30.0,
    ):
        self.shard_id = shard_id
        self.workers = workers
        self.backend = backend
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.host = host
        self.startup_timeout = startup_timeout
        self.state = ACTIVE
        self.port: Optional[int] = None
        self.inflight = 0
        self.completed = 0
        self._process: Optional[asyncio.subprocess.Process] = None
        self._client: Optional[AsyncServiceClient] = None

    async def start(self) -> None:
        """Launch the child and wait for its listening banner."""
        argv = [
            sys.executable,
            "-m",
            "repro.service",
            "--host",
            self.host,
            "--port",
            "0",
            "--workers",
            str(self.workers),
            "--backend",
            self.backend,
            "--shard-id",
            self.shard_id,
        ]
        if self.use_cache and self.cache_dir:
            argv += ["--cache-dir", self.cache_dir]
        elif not self.use_cache:
            argv += ["--no-cache"]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src_root, env.get("PYTHONPATH")])
        )
        self._process = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            env=env,
        )
        assert self._process.stdout is not None
        try:
            banner = await asyncio.wait_for(
                self._process.stdout.readline(), timeout=self.startup_timeout
            )
        except asyncio.TimeoutError:
            await self._terminate()
            raise ShardLost(self.shard_id, "no startup banner") from None
        match = _BANNER.search(banner.decode(errors="replace"))
        if match is None:
            await self._terminate()
            raise ShardLost(
                self.shard_id, f"unexpected banner {banner!r}"
            )
        self.port = int(match.group(1))
        self._client = AsyncServiceClient(self.host, self.port)
        await self._client.healthz()  # fail fast if the API is not up

    # -- the shard seam ----------------------------------------------------

    def _require_client(self) -> AsyncServiceClient:
        if self.state == DEAD or self._client is None:
            raise ShardLost(self.shard_id, "no live process")
        return self._client

    async def run_job(self, job: Job) -> dict:
        if self.state == DRAINING:
            raise ShardLost(self.shard_id, "draining, not accepting work")
        client = self._require_client()
        path = _KIND_PATHS.get(job.KIND)
        if path is None:
            raise ValueError(
                f"job kind '{job.KIND}' is not routable to subprocess "
                f"shards (HTTP protocol exposes: {sorted(_KIND_PATHS)})"
            )
        body = {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in job.payload().items()
        }
        self.inflight += 1
        try:
            return await client.request_json("POST", path, body)
        except (OSError, asyncio.IncompleteReadError) as error:
            raise ShardLost(self.shard_id, str(error)) from error
        finally:
            self.inflight -= 1
            if self.state != DEAD:
                self.completed += 1

    async def cache_probe(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        if self.state == DEAD or self._client is None:
            return None, None
        try:
            response = await self._client.cache_get(key)
        except (OSError, asyncio.IncompleteReadError):
            return None, None
        if response is None:
            return None, None
        return response.get("result"), response.get("tier")

    async def cache_put(self, key: str, value: dict) -> bool:
        if self.state == DEAD or self._client is None:
            return False
        try:
            return await self._client.cache_put(key, value)
        except (OSError, asyncio.IncompleteReadError):
            return False

    async def health(self) -> dict:
        return await self._require_client().healthz()

    async def metrics_snapshot(self) -> dict:
        return await self._require_client().metrics()

    async def metrics_prometheus(self, emit_types: bool = True) -> str:
        client = self._require_client()
        suffix = "" if emit_types else "&types=0"
        status, _, payload = await client.request(
            "GET", f"/metrics?format=prom{suffix}"
        )
        if status != 200:
            raise ShardLost(self.shard_id, f"metrics status {status}")
        return payload.decode()

    # -- lifecycle ---------------------------------------------------------

    def start_drain(self) -> None:
        if self.state == ACTIVE:
            self.state = DRAINING

    def kill(self) -> None:
        """Kill the child process; in-flight requests fail as ShardLost."""
        self.state = DEAD
        if self._process is not None and self._process.returncode is None:
            self._process.kill()

    async def _terminate(self) -> None:
        if self._process is not None and self._process.returncode is None:
            self._process.terminate()
            try:
                await asyncio.wait_for(self._process.wait(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover
                self._process.kill()
                await self._process.wait()

    async def close(self) -> None:
        self.state = DEAD
        await self._terminate()

    def describe(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "mode": "subprocess",
            "state": self.state,
            "port": self.port,
            "inflight": self.inflight,
            "completed": self.completed,
        }

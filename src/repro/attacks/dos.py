"""Denial of service through overflow — Section 4.4.

The corrupted loop bound of Listing 15 is weaponized three ways, all
from the paper's text: a huge bound makes the service loop "iterated for
a long time" (response-time blow-up, modelled with an instruction
budget); a non-positive bound means the loop "is never taken" (here:
skipping the per-student authentication, i.e. auth bypass); and
resource allocation inside the loop exhausts memory and crashes the
process.
"""

from __future__ import annotations

from ..cxx.types import INT
from ..errors import OutOfMemory, SimulatedTimeout
from ..workloads.classes import make_student_classes
from .base import AttackResult, AttackScenario, Environment


class DosLoopAttack(AttackScenario):
    """Inflate the loop bound past the service's time budget."""

    name = "dos-loop-inflation"
    paper_ref = "§4.4 (via Listing 15)"
    description = "overwritten loop bound exceeds the server's step budget"

    def __init__(self, injected_n: int = 50_000_000, budget: int = 100_000) -> None:
        self.injected_n = injected_n
        self.budget = budget

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()

        frame = machine.push_frame("serveRequest")
        n_address = frame.local_scalar(INT, "n", init=5)
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        gs = env.place(machine, stud, grad_cls)
        gs.set_element("ssn", 1, self.injected_n)

        n = machine.space.read_int(n_address)
        steps = 0
        try:
            for _ in range(max(n, 0)):
                steps += 1
                if steps > self.budget:
                    raise SimulatedTimeout(self.budget)
        except SimulatedTimeout:
            machine.pop_frame(frame)
            return self.result(
                env,
                succeeded=True,
                machine=machine,
                outcome="request timed out",
                loop_bound=n,
                steps_executed=steps,
            )
        machine.pop_frame(frame)
        return self.result(
            env,
            succeeded=False,
            machine=machine,
            outcome="request served",
            loop_bound=n,
            steps_executed=steps,
        )


class AuthBypassAttack(AttackScenario):
    """Zero the loop bound so the validation loop never runs.

    Paper: "by modifying n to a non-positive value ... the loop is never
    taken" and "authentication mechanisms can also be bypassed".
    """

    name = "dos-auth-bypass"
    paper_ref = "§4.4"
    description = "validation loop skipped by zeroing its bound"

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()

        frame = machine.push_frame("authenticateBatch")
        n_address = frame.local_scalar(INT, "n", init=5)
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        gs = env.place(machine, stud, grad_cls)
        gs.set_element("ssn", 1, 0)

        n = machine.space.read_int(n_address)
        checks_run = 0
        for _ in range(max(n, 0)):
            checks_run += 1
            machine.record_event("credential checked")
        machine.pop_frame(frame)
        return self.result(
            env,
            succeeded=(checks_run == 0),
            machine=machine,
            checks_expected=5,
            checks_run=checks_run,
        )


class ResourceExhaustionAttack(AttackScenario):
    """Allocate inside the inflated loop until the heap dies.

    Paper: "if the resources are allocated/locked inside the loop, the
    attacker ... might crash the whole software stack ... by using up
    all the memory".
    """

    name = "dos-resource-exhaustion"
    paper_ref = "§4.4"
    description = "inflated loop allocates until OutOfMemory"

    def __init__(self, allocation_size: int = 4096) -> None:
        self.allocation_size = allocation_size

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()

        frame = machine.push_frame("serveRequest")
        n_address = frame.local_scalar(INT, "n", init=4)
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        gs = env.place(machine, stud, grad_cls)
        gs.set_element("ssn", 1, 10**6)

        n = machine.space.read_int(n_address)
        allocations = 0
        exhausted = False
        try:
            for _ in range(max(n, 0)):
                machine.heap.allocate(self.allocation_size)
                allocations += 1
        except OutOfMemory:
            exhausted = True
        machine.pop_frame(frame)
        return self.result(
            env,
            succeeded=exhausted,
            machine=machine,
            allocations_before_oom=allocations,
            heap_bytes_in_use=machine.heap.bytes_in_use,
        )

"""Tests for the package graph layer."""

import pytest

from repro.score.packages import (
    DEMO_PACKAGES,
    Package,
    PackageGraph,
    demo_graph,
    generated_package_graph,
    load_package_dir,
    parse_package_source,
    render_package_source,
)


class TestHeaderFormat:
    def test_parse_name_and_imports(self):
        package = parse_package_source(
            "// package: svc-auth\n"
            "// imports: core-pool, lib-serialize\n"
            "void f() { int x = 1; }\n"
        )
        assert package.name == "svc-auth"
        assert package.imports == ("core-pool", "lib-serialize")
        assert package.source == "void f() { int x = 1; }\n"

    def test_missing_header_falls_back_to_default_name(self):
        package = parse_package_source("void f() {}\n", "from-filename")
        assert package.name == "from-filename"
        assert package.imports == ()

    def test_no_name_at_all_is_rejected(self):
        with pytest.raises(ValueError, match="package"):
            parse_package_source("void f() {}\n")

    def test_render_parse_roundtrip(self):
        for package in DEMO_PACKAGES:
            again = parse_package_source(render_package_source(package))
            assert again == package


class TestPackageGraph:
    def test_unknown_import_is_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            PackageGraph([Package(name="a", source="", imports=("ghost",))])

    def test_self_import_is_rejected(self):
        with pytest.raises(ValueError, match="imports itself"):
            PackageGraph([Package(name="a", source="", imports=("a",))])

    def test_duplicate_name_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PackageGraph(
                [Package(name="a", source=""), Package(name="a", source="")]
            )

    def test_cycle_is_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            PackageGraph(
                [
                    Package(name="a", source="", imports=("b",)),
                    Package(name="b", source="", imports=("c",)),
                    Package(name="c", source="", imports=("a",)),
                ]
            )

    def test_transitive_dependents_with_min_depth(self):
        graph = demo_graph()
        dependents = graph.transitive_dependents("core-pool")
        assert dependents == {
            "lib-serialize": 1,
            "svc-auth": 1,
            "svc-cache": 1,
            "app-batch": 2,
            "app-gateway": 2,
        }

    def test_min_depth_wins_on_diamond(self):
        graph = PackageGraph(
            [
                Package(name="base", source=""),
                Package(name="mid", source="", imports=("base",)),
                Package(name="top", source="", imports=("base", "mid")),
            ]
        )
        assert graph.transitive_dependents("base") == {"mid": 1, "top": 1}
        assert graph.transitive_dependencies("top") == {"base": 1, "mid": 1}

    def test_topological_order_puts_dependencies_first(self):
        order = demo_graph().topological()
        assert order.index("core-pool") < order.index("svc-auth")
        assert order.index("svc-auth") < order.index("app-gateway")


class TestLoadAndGenerate:
    def test_load_package_dir_roundtrip(self, tmp_path):
        for package in DEMO_PACKAGES:
            (tmp_path / f"{package.name}.cpp").write_text(
                render_package_source(package)
            )
        graph = load_package_dir(tmp_path)
        assert graph.names() == sorted(p.name for p in DEMO_PACKAGES)

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_package_dir(tmp_path / "nope")

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no .* packages"):
            load_package_dir(tmp_path)

    def test_generated_graph_is_reproducible(self):
        first = generated_package_graph(7, 12)
        second = generated_package_graph(7, 12)
        assert first.names() == second.names()
        for name in first.names():
            assert first.package(name) == second.package(name)

    def test_generated_graph_is_a_dag_with_edges(self):
        graph = generated_package_graph(2026, 24)
        assert len(graph) == 24
        assert any(graph.package(name).imports for name in graph.names())

    def test_committed_corpus_matches_generator(self):
        from pathlib import Path

        corpus = Path(__file__).resolve().parent.parent / "corpus" / "packages"
        committed = load_package_dir(corpus)
        generated = generated_package_graph(2026, 24)
        assert committed.names() == generated.names()
        for name in committed.names():
            assert committed.package(name) == generated.package(name)

"""Round-trip tests for the MiniC++ pretty-printer."""

import pytest

from repro.analysis import analyze_source, parse
from repro.analysis.unparse import unparse_program
from repro.workloads.corpus import FULL_CORPUS, INTERPROC_CORPUS


class TestUnparseBasics:
    def test_simple_function(self):
        source = "int f(int a) { return a + 1; }"
        text = unparse_program(parse(source))
        assert "int f(int a)" in text
        assert "return (a + 1);" in text

    def test_placement_new_render(self):
        program = parse(
            "class A { public: int x; };\n"
            "void f() { A arena; A *p = new (&arena) A(); }"
        )
        text = unparse_program(program)
        assert "new (&arena) A()" in text

    def test_placement_array_render(self):
        program = parse("char pool[8]; void f() { char *b = new (pool) char[4]; }")
        text = unparse_program(program)
        assert "new (pool) char[4]" in text
        assert "char pool[8];" in text

    def test_class_with_virtual(self):
        program = parse(
            "class A { public: virtual char* info(); double d; };"
        )
        text = unparse_program(program)
        assert "virtual char* info();" in text

    def test_inheritance_render(self):
        program = parse(
            "class A { public: int x; };"
            "class B : public A { public: int y; };"
        )
        assert "class B : public A" in unparse_program(program)

    def test_cin_cout(self):
        program = parse('void f() { int x; cin >> x; cout << "v" << x; }')
        text = unparse_program(program)
        assert "cin >> x;" in text
        assert 'cout << "v" << x << endl;' in text

    def test_control_flow(self):
        program = parse(
            "void f(int a) { if (a) { a = 1; } else { a = 2; } "
            "while (a) { --a; } for (int i = 0; i < 3; ++i) { a = i; } }"
        )
        text = unparse_program(program)
        assert "if (" in text and "else" in text
        assert "while (" in text
        assert "for (int i = 0; (i < 3); ++i)" in text

    def test_member_chains(self):
        program = parse("class P { public: int ssn[3]; }; void f(P *p) { p->ssn[2] = 1; }")
        assert "p->ssn[2] = 1;" in unparse_program(program)

    def test_delete_forms(self):
        program = parse("void f(int *p) { delete p; delete [] p; }")
        text = unparse_program(program)
        assert "delete p;" in text
        assert "delete [] p;" in text

    def test_unparse_expr_sizeof(self):
        program = parse("class A { public: int x; }; void f() { int s = sizeof(A); }")
        assert "sizeof(A)" in unparse_program(program)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "program", FULL_CORPUS + INTERPROC_CORPUS, ids=lambda p: p.key
    )
    def test_reparse_preserves_analysis(self, program):
        """unparse(parse(src)) analyzes identically to src — the
        strongest practical equivalence for the whole corpus."""
        original = analyze_source(program.source)
        round_tripped = analyze_source(unparse_program(parse(program.source)))
        assert round_tripped.rules_fired() == original.rules_fired()

    @pytest.mark.parametrize(
        "program", FULL_CORPUS[:6], ids=lambda p: p.key
    )
    def test_unparse_is_idempotent(self, program):
        once = unparse_program(parse(program.source))
        twice = unparse_program(parse(once))
        assert once == twice

    def test_generated_programs_round_trip(self):
        import random

        from repro.workloads.generators import generate_program

        for seed in range(10):
            generated = generate_program(random.Random(seed), vulnerable=seed % 2 == 0)
            original = analyze_source(generated.source)
            reparsed = analyze_source(unparse_program(parse(generated.source)))
            assert reparsed.flagged == original.flagged

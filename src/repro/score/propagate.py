"""Deterministic blast-radius propagation over a package graph.

Each package's *intrinsic* score is the sum of the risk scores the
threat registry assigns to its own findings.  Propagation then follows
the import edges (vpss-style):

* ``blast_radius(p)`` — how much damage a flaw in ``p`` can do:
  ``intrinsic(p) * (1 + sum(attenuation**depth))`` over every
  transitive *dependent*, each weighted by its minimum import depth.
* ``exposure(p)`` — how much inherited risk ``p`` carries:
  ``intrinsic(p) + sum(intrinsic(dep) * attenuation**depth)`` over
  every transitive *dependency*.

All sums iterate packages in sorted-name order and the default
attenuation (0.5) is exact in binary floating point, so reports are
byte-stable regardless of scheduling — the property the service layer
relies on to fan scoring over the worker pool.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .packages import PackageGraph
from .threats import Threatlib, risks_from_report, scoring_versions

#: Depth weight for propagated score; 0.5 is exact in binary floats.
DEFAULT_ATTENUATION = 0.5


def analyze_package_source(
    source: str, label: str = "", threatlib: Optional[Threatlib] = None
) -> List[dict]:
    """Score one module's source: detector + legacy scanner findings
    mapped through the threat registry, as deterministic risk dicts."""
    from ..analysis.detector import analyze_source
    from ..analysis.legacy_tools import LegacyRuleScanner

    risks = risks_from_report(label, analyze_source(source), threatlib)
    risks += risks_from_report(
        label, LegacyRuleScanner().scan_source(source), threatlib
    )
    dicts = [risk.to_dict() for risk in risks]
    dicts.sort(key=lambda r: (r["line"], r["trigger"], r["threat"], r["detail"]))
    return dicts


@dataclass(frozen=True)
class PackageScore:
    """One package's intrinsic and propagated scores."""

    name: str
    intrinsic: int
    blast_radius: float
    exposure: float
    dependents: int  # size of the transitive dependent set
    risks: Tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        return {
            "blast_radius": self.blast_radius,
            "dependents": self.dependents,
            "exposure": self.exposure,
            "intrinsic": self.intrinsic,
            "name": self.name,
            "risks": [dict(risk) for risk in self.risks],
        }


@dataclass(frozen=True)
class CorpusScore:
    """The scored corpus: per-package entries plus both rankings."""

    attenuation: float
    packages: Tuple[PackageScore, ...]  # sorted by name
    fingerprint: dict = field(default_factory=scoring_versions)

    def entry(self, name: str) -> PackageScore:
        for package in self.packages:
            if package.name == name:
                return package
        raise KeyError(name)

    @property
    def ranking(self) -> List[str]:
        """Names by propagated blast radius, largest first."""
        return [
            p.name
            for p in sorted(
                self.packages, key=lambda p: (-p.blast_radius, p.name)
            )
        ]

    @property
    def flat_ranking(self) -> List[str]:
        """Names by flat per-file severity, largest first."""
        return [
            p.name
            for p in sorted(self.packages, key=lambda p: (-p.intrinsic, p.name))
        ]

    @property
    def totals(self) -> dict:
        return {
            "flawed_packages": sum(1 for p in self.packages if p.intrinsic),
            "max_blast_radius": max(
                (p.blast_radius for p in self.packages), default=0.0
            ),
            "packages": len(self.packages),
            "risks": sum(len(p.risks) for p in self.packages),
        }

    def to_dict(self) -> dict:
        return {
            "attenuation": self.attenuation,
            "fingerprint": dict(self.fingerprint),
            "flat_ranking": self.flat_ranking,
            "packages": [p.to_dict() for p in self.packages],
            "ranking": self.ranking,
            "totals": self.totals,
        }

    def to_json(self) -> str:
        """Byte-stable JSON (sorted keys, fixed indentation)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self, top: int = 0) -> str:
        """Human-readable ranking table (``top`` = 0 shows all)."""
        names = self.ranking
        if top:
            names = names[:top]
        width = max([len("package")] + [len(name) for name in names])
        lines = [
            f"{'package':<{width}}  {'blast':>8}  {'intrinsic':>9}  "
            f"{'exposure':>8}  {'dependents':>10}  risks"
        ]
        for name in names:
            entry = self.entry(name)
            lines.append(
                f"{name:<{width}}  {entry.blast_radius:>8.2f}  "
                f"{entry.intrinsic:>9}  {entry.exposure:>8.2f}  "
                f"{entry.dependents:>10}  {len(entry.risks)}"
            )
        totals = self.totals
        lines.append(
            f"{totals['flawed_packages']}/{totals['packages']} packages "
            f"flawed, {totals['risks']} risks, attenuation "
            f"{self.attenuation}"
        )
        return "\n".join(lines)


def score_packages(
    graph: PackageGraph,
    risks_by_package: Dict[str, Sequence[dict]],
    attenuation: float = DEFAULT_ATTENUATION,
) -> CorpusScore:
    """Propagate pre-computed per-package risks over ``graph``.

    ``risks_by_package`` maps every package name to its risk dicts
    (what :func:`analyze_package_source` returns); the split lets the
    service layer compute the per-package half in parallel workers and
    keep propagation — which needs the whole graph — in one place.
    """
    if not 0.0 <= attenuation <= 1.0:
        raise ValueError(f"attenuation must be in [0, 1], got {attenuation}")
    missing = [name for name in graph.names() if name not in risks_by_package]
    if missing:
        raise ValueError(f"no risks computed for packages: {missing}")
    intrinsic = {
        name: sum(risk["score"] for risk in risks_by_package[name])
        for name in graph.names()
    }
    scores = []
    for name in graph.names():
        dependents = graph.transitive_dependents(name)
        reach = 1.0 + sum(
            attenuation ** depth
            for _, depth in sorted(dependents.items())
        )
        exposure = float(intrinsic[name]) + sum(
            intrinsic[dep] * attenuation ** depth
            for dep, depth in sorted(graph.transitive_dependencies(name).items())
        )
        scores.append(
            PackageScore(
                name=name,
                intrinsic=intrinsic[name],
                blast_radius=round(intrinsic[name] * reach, 6),
                exposure=round(exposure, 6),
                dependents=len(dependents),
                risks=tuple(dict(r) for r in risks_by_package[name]),
            )
        )
    return CorpusScore(attenuation=attenuation, packages=tuple(scores))


def score_graph(
    graph: PackageGraph,
    attenuation: float = DEFAULT_ATTENUATION,
    threatlib: Optional[Threatlib] = None,
) -> CorpusScore:
    """Sequential scoring: analyze every package in-process, then
    propagate.  ``ServiceEngine.score_corpus`` is the parallel twin and
    must produce byte-identical reports."""
    risks_by_package = {
        name: analyze_package_source(
            graph.package(name).source, name, threatlib
        )
        for name in graph.names()
    }
    return score_packages(graph, risks_by_package, attenuation)


def diff_score_reports(before: dict, after: dict) -> List[str]:
    """Differences between two ``CorpusScore.to_dict`` documents.

    Returns human-readable difference lines, empty when equivalent.
    Fingerprint drift is reported first — a score change under a
    different registry or detector version is expected, not a
    regression.
    """
    lines: List[str] = []
    for key in sorted(set(before.get("fingerprint", {})) | set(after.get("fingerprint", {}))):
        old = before.get("fingerprint", {}).get(key)
        new = after.get("fingerprint", {}).get(key)
        if old != new:
            lines.append(f"fingerprint {key}: {old} -> {new}")
    old_packages = {p["name"]: p for p in before.get("packages", ())}
    new_packages = {p["name"]: p for p in after.get("packages", ())}
    for name in sorted(set(old_packages) - set(new_packages)):
        lines.append(f"package removed: {name}")
    for name in sorted(set(new_packages) - set(old_packages)):
        lines.append(f"package added: {name}")
    for name in sorted(set(old_packages) & set(new_packages)):
        old, new = old_packages[name], new_packages[name]
        for key in ("intrinsic", "blast_radius", "exposure"):
            if old[key] != new[key]:
                lines.append(f"{name} {key}: {old[key]} -> {new[key]}")
    if before.get("ranking") != after.get("ranking"):
        lines.append(
            f"ranking: {' > '.join(before.get('ranking', []))} -> "
            f"{' > '.join(after.get('ranking', []))}"
        )
    return lines

"""Control-flow graphs for MiniC++ functions.

The detector's abstract interpretation is structured (MiniC++ has no
goto), but a CFG is still the right representation for reachability
queries, path counting and graph export — and it documents the analysis
the way the paper's Section 5.1 frames it ("there is a data flow path
(intra-procedural or inter-procedural) from remoteobj to another object
obj at program point p").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast


@dataclass
class BasicBlock:
    """A straight-line statement sequence with one entry and one exit."""

    block_id: int
    statements: list = field(default_factory=list)
    successors: list = field(default_factory=list)  # block ids
    label: str = ""

    def add_successor(self, block: "BasicBlock") -> None:
        if block.block_id not in self.successors:
            self.successors.append(block.block_id)


@dataclass
class ControlFlowGraph:
    """The CFG of one function."""

    function: str
    blocks: dict = field(default_factory=dict)  # id -> BasicBlock
    entry_id: int = 0
    exit_id: int = 0

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_id]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[self.exit_id]

    def reachable_blocks(self) -> set:
        """Block ids reachable from entry."""
        seen: set = set()
        worklist = [self.entry_id]
        while worklist:
            current = worklist.pop()
            if current in seen:
                continue
            seen.add(current)
            worklist.extend(self.blocks[current].successors)
        return seen

    def statements_reachable(self) -> list:
        """Every statement in a reachable block, in block order."""
        ordered = []
        for block_id in sorted(self.reachable_blocks()):
            ordered.extend(self.blocks[block_id].statements)
        return ordered

    def edge_count(self) -> int:
        return sum(len(b.successors) for b in self.blocks.values())

    def to_dot(self) -> str:
        """Graphviz rendering for documentation and debugging."""
        lines = [f'digraph "{self.function}" {{']
        for block in self.blocks.values():
            text = block.label or f"B{block.block_id}"
            count = len(block.statements)
            lines.append(
                f'  B{block.block_id} [label="{text}\\n{count} stmt(s)"];'
            )
            for succ in block.successors:
                lines.append(f"  B{block.block_id} -> B{succ};")
        lines.append("}")
        return "\n".join(lines)


class _Builder:
    def __init__(self, function_name: str) -> None:
        self.cfg = ControlFlowGraph(function=function_name)
        self._next_id = 0
        entry = self._new_block("entry")
        self.cfg.entry_id = entry.block_id
        self._exit = self._new_block("exit")
        self.cfg.exit_id = self._exit.block_id
        self._current = entry

    def _new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(block_id=self._next_id, label=label)
        self._next_id += 1
        self.cfg.blocks[block.block_id] = block
        return block

    def build(self, body: ast.Block) -> ControlFlowGraph:
        after = self._lower_block(body, self._current)
        after.add_successor(self._exit)
        return self.cfg

    def _lower_block(self, block: ast.Block, current: BasicBlock) -> BasicBlock:
        for stmt in block.statements:
            current = self._lower_statement(stmt, current)
        return current

    def _lower_statement(self, stmt: ast.Stmt, current: BasicBlock) -> BasicBlock:
        if isinstance(stmt, ast.Block):
            return self._lower_block(stmt, current)
        if isinstance(stmt, ast.If):
            current.statements.append(stmt.cond)
            then_block = self._new_block("then")
            current.add_successor(then_block)
            then_end = self._lower_block(stmt.then_body, then_block)
            join = self._new_block("join")
            then_end.add_successor(join)
            if stmt.else_body is not None:
                else_block = self._new_block("else")
                current.add_successor(else_block)
                else_end = self._lower_block(stmt.else_body, else_block)
                else_end.add_successor(join)
            else:
                current.add_successor(join)
            return join
        if isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt, ast.For) and stmt.init is not None:
                current.statements.append(stmt.init)
            header = self._new_block("loop-header")
            current.add_successor(header)
            if getattr(stmt, "cond", None) is not None:
                header.statements.append(stmt.cond)
            body_block = self._new_block("loop-body")
            header.add_successor(body_block)
            body_end = self._lower_block(stmt.body, body_block)
            if isinstance(stmt, ast.For) and stmt.step is not None:
                body_end.statements.append(stmt.step)
            body_end.add_successor(header)
            after = self._new_block("loop-exit")
            header.add_successor(after)
            return after
        if isinstance(stmt, ast.ReturnStmt):
            current.statements.append(stmt)
            current.add_successor(self._exit)
            # Statements after an unconditional return are unreachable;
            # keep collecting them in a fresh, unconnected block.
            return self._new_block("unreachable")
        current.statements.append(stmt)
        return current


def build_cfg(function: ast.FunctionDecl) -> ControlFlowGraph:
    """Build the CFG of one function."""
    return _Builder(function.name).build(function.body)


def placement_sites(cfg: ControlFlowGraph) -> list:
    """All reachable placement-new expressions in a CFG — the program
    points the detector must visit."""
    sites = []
    for item in cfg.statements_reachable():
        node = item if isinstance(item, (ast.Stmt, ast.Expr)) else None
        if node is None:
            continue
        for expr in ast.walk_expressions(node):
            if isinstance(expr, ast.NewExpr) and expr.is_placement:
                sites.append(expr)
    return sites

#!/usr/bin/env python
"""Quickstart: your first placement-new overflow, byte by byte.

Builds a simulated 32-bit process, declares the paper's ``Student`` and
``GradStudent`` classes, and walks Listing 11's data/bss overflow —
showing the exact bytes before and after, the way a debugger would.

Run:  python examples/quickstart.py
"""

from repro import Machine, placement_new
from repro.core import construct
from repro.workloads import make_student_classes, set_ssn


def hexdump(machine: Machine, address: int, length: int) -> str:
    """A compact one-line hexdump of simulated memory."""
    data = machine.space.read(address, length)
    return " ".join(f"{byte:02x}" for byte in data)


def main() -> None:
    machine = Machine()
    student_cls, grad_cls = make_student_classes()

    print("process memory map:")
    print(machine.memory_map())
    print()
    print(f"sizeof(Student)     = {machine.sizeof(student_cls)}")
    print(f"sizeof(GradStudent) = {machine.sizeof(grad_cls)}")
    print()

    # Two adjacent globals in bss, as in Listing 11.
    stud1 = machine.static_object(student_cls, "stud1")
    stud2 = machine.static_object(student_cls, "stud2")
    print(f"stud1 @ {stud1.address:#010x}")
    print(f"stud2 @ {stud2.address:#010x}  (exactly sizeof(Student) above)")

    # Legitimate construction of stud2.
    construct(machine, student_cls, stud2.address, 3.5, 2009, 1)
    print()
    print("before the attack:")
    print(f"  stud2 = {stud2.field_values()}")
    print(f"  stud2 bytes: {hexdump(machine, stud2.address, 16)}")

    # The vulnerability: a 32-byte GradStudent placed in stud1's 16 bytes.
    gs = placement_new(machine, stud1, grad_cls, 4.0, 2009, 1)
    print()
    print("placement_new(machine, stud1, GradStudent)  # no bounds check!")
    print(f"  placed object spans {gs.address:#010x}..{gs.end:#010x}")
    print(f"  stud2 begins at     {stud2.address:#010x}  <- inside the placed object")

    # The attacker "sets the SSN" — which lands on stud2.
    set_ssn(gs, 0x11111111, 0x22222222, 777)
    print()
    print("after set_ssn(0x11111111, 0x22222222, 777):")
    print(f"  stud2 = {stud2.field_values()}")
    print(f"  stud2 bytes: {hexdump(machine, stud2.address, 16)}")
    print()

    record = machine.placement_log.overflowing()[0]
    print(
        f"audit log: placement of {record.type_name} ({record.size}B) into a "
        f"{record.arena_size}B arena — overflow of {record.size - record.arena_size} bytes"
    )


if __name__ == "__main__":
    main()

"""The flat virtual address space of the simulated process.

An :class:`AddressSpace` maps virtual addresses to :class:`Segment`
objects laid out like a classic 32-bit Linux/ELF process image::

    0x08048000  text   (code; vtables and function entry points live here)
    0x0804c000  data   (initialized globals)
    0x08050000  bss    (zero-initialized globals)
    0x08060000  heap   (grows upward)
    0xbfff0000  stack  (grows downward from 0xc0000000)

All reads and writes in the library flow through this class, so it is the
single choke point where watchpoints, taint propagation and the shadow
memory sanitizer hook in.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Iterable, Optional

from ..errors import ApiMisuseError, SegmentationFault
from . import encoding
from .segments import Permissions, Segment, SegmentKind

# Default image geometry (see module docstring).
DEFAULT_LAYOUT = {
    SegmentKind.TEXT: (0x08048000, 0x4000),
    SegmentKind.DATA: (0x0804C000, 0x4000),
    SegmentKind.BSS: (0x08050000, 0x8000),
    SegmentKind.HEAP: (0x08060000, 0x40000),
    SegmentKind.STACK: (0xBFFF0000, 0x10000),
}

#: Signature of a memory-access observer: (address, data, is_write).
AccessHook = Callable[[int, bytes, bool], None]

#: Signature of a typed-access guard: (base, address, length, is_write).
#: Unlike an :data:`AccessHook`, a guard also receives the *referent* —
#: the base address of the object or array the access was derived from —
#: so provenance-aware defenses (per-allocation bounds tables, memory
#: tagging) can reject a dereference that a raw address trace cannot
#: distinguish from a legitimate neighbour access.
TypedGuard = Callable[[int, int, int, bool], None]


class AddressSpace:
    """Byte-addressable memory of one simulated process."""

    def __init__(
        self,
        layout: Optional[dict] = None,
        nx_stack: bool = False,
        nx_heap: bool = False,
        strict_alignment: bool = False,
    ) -> None:
        """Create the process image.

        ``nx_stack`` / ``nx_heap`` strip execute permission from those
        segments, modelling the non-executable-stack mitigation the paper
        discusses for legacy software (Section 5.2).  ``strict_alignment``
        makes misaligned typed accesses fault with a bus error, modelling
        the strict targets behind the paper's §2.5 alignment warning
        (x86, the paper's testbed, is permissive — the default).
        """
        self.strict_alignment = strict_alignment
        self._segments: list[Segment] = []
        self._hooks: list[AccessHook] = []
        self._typed_guards: list[TypedGuard] = []
        geometry = dict(DEFAULT_LAYOUT)
        if layout:
            geometry.update(layout)
        for kind, (base, size) in sorted(geometry.items(), key=lambda kv: kv[1][0]):
            permissions = None
            if kind is SegmentKind.STACK and nx_stack:
                permissions = Permissions(read=True, write=True, execute=False)
            if kind is SegmentKind.HEAP and nx_heap:
                permissions = Permissions(read=True, write=True, execute=False)
            self._segments.append(
                Segment(kind=kind, base=base, size=size, permissions=permissions)
            )
        self._check_no_overlap()
        self._rebuild_index()

    def _check_no_overlap(self) -> None:
        ordered = sorted(self._segments, key=lambda s: s.base)
        for before, after in zip(ordered, ordered[1:]):
            if before.end > after.base:
                raise ApiMisuseError(
                    f"segments overlap: {before.describe()} vs {after.describe()}"
                )

    # -- segment lookup ---------------------------------------------------

    def _rebuild_index(self) -> None:
        """Precompute the sorted lookup tables every access uses.

        Must be called after any change to the segment list (segments
        are immutable after construction today, so in practice this
        runs once).  ``find_segment`` then costs one C-level bisect
        instead of a linear scan of method calls.
        """
        ordered = tuple(sorted(self._segments, key=lambda s: s.base))
        self._ordered: tuple[Segment, ...] = ordered
        self._bases: list[int] = [seg.base for seg in ordered]
        self._ends: list[int] = [seg.end for seg in ordered]
        # Parallel views of each segment's backing store and permission
        # bits: read/write then run as one Python frame over C-level
        # bisect + slice operations, with the Segment methods kept as
        # the slow path that raises the precise fault.
        self._sizes: list[int] = [seg.size for seg in ordered]
        self._datas: list[bytearray] = [seg._data for seg in ordered]
        self._views: list[memoryview] = [seg._view for seg in ordered]
        self._readable: list[bool] = [seg.permissions.read for seg in ordered]
        self._writable: list[bool] = [seg.permissions.write for seg in ordered]
        self._by_kind: dict[SegmentKind, Segment] = {}
        for seg in ordered:
            self._by_kind.setdefault(seg.kind, seg)
        # Locality cache: most access sequences stay within one segment,
        # so read/write try the last segment hit before bisecting.  Only
        # ever set to a valid index (the layout always maps the five
        # default kinds, so ordered is never empty).
        self._last_index = 0

    @property
    def segments(self) -> Iterable[Segment]:
        """The mapped segments, in address order (cached, never re-sorted)."""
        return self._ordered

    def segment(self, kind: SegmentKind) -> Segment:
        """Return the (single) segment of ``kind``."""
        try:
            return self._by_kind[kind]
        except KeyError:
            raise ApiMisuseError(f"no segment of kind {kind}") from None

    def segment_at(self, address: int) -> Segment:
        """Return the segment mapping ``address`` or fault."""
        seg = self.find_segment(address)
        if seg is None:
            raise SegmentationFault(address, "read", "address is unmapped")
        return seg

    def find_segment(self, address: int) -> Optional[Segment]:
        """Like :meth:`segment_at` but returns None instead of faulting."""
        i = bisect_right(self._bases, address) - 1
        if i >= 0 and address < self._ends[i]:
            return self._ordered[i]
        return None

    def is_mapped(self, address: int, length: int = 1) -> bool:
        """True if the whole range is inside one mapped segment."""
        seg = self.find_segment(address)
        return seg is not None and seg.contains(address, length)

    # -- observers ---------------------------------------------------------

    def add_access_hook(self, hook: AccessHook) -> None:
        """Register an observer called on every read and write."""
        self._hooks.append(hook)

    def remove_access_hook(self, hook: AccessHook) -> None:
        """Unregister a previously added observer."""
        self._hooks.remove(hook)

    def _notify(self, address: int, data: bytes, is_write: bool) -> None:
        # Callers guard with ``if self._hooks`` so the zero-observer hot
        # path never pays for the call or the notification copy.
        for hook in self._hooks:
            hook(address, data, is_write)

    def add_typed_guard(self, guard: TypedGuard) -> None:
        """Register a provenance-aware guard for typed accesses.

        Typed views (:class:`~repro.cxx.object_model.Instance`,
        :class:`~repro.cxx.object_model.CArrayView`) call every guard
        before each field/element access with the view's base address as
        the referent.  Guards raise to fault the access.  Note that
        ``locate()`` keeps returning fast-path ranges while only typed
        guards are registered — typed access never goes through
        ``locate`` — so guards that also need to see *raw* bulk accesses
        must register an :data:`AccessHook` as well.
        """
        self._typed_guards.append(guard)

    def remove_typed_guard(self, guard: TypedGuard) -> None:
        """Unregister a previously added typed guard."""
        self._typed_guards.remove(guard)

    def check_typed_access(
        self, base: int, address: int, length: int, is_write: bool
    ) -> None:
        """Run every typed guard for an access derived from ``base``."""
        for guard in self._typed_guards:
            guard(base, address, length, is_write)

    # -- raw access ----------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``.

        The range may not straddle two segments — real processes have
        unmapped guard gaps between segments, and running off the end of
        one is exactly the segfault the paper's wild overflows produce.
        """
        if length < 0:
            raise ApiMisuseError(f"negative read length {length}")
        i = self._last_index
        if not self._bases[i] <= address < self._ends[i]:
            i = bisect_right(self._bases, address) - 1
            if i < 0 or address >= self._ends[i]:
                raise SegmentationFault(address, "read", "address is unmapped")
            self._last_index = i
        offset = address - self._bases[i]
        stop = offset + length
        if stop <= self._sizes[i] and self._readable[i]:
            data = bytes(self._views[i][offset:stop])
            for hook in self._hooks:
                hook(address, data, False)
            return data
        # Unreadable segment or a range straddling the segment end: the
        # segment raises the precise fault.
        return self._ordered[i].read(address, length)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address`` (no bounds checking
        beyond segment limits — this is what makes overflows possible)."""
        if not isinstance(data, bytes):
            # Convert exactly once; the same object feeds the segment
            # store and the hook notification.
            data = bytes(data)
        i = self._last_index
        if not self._bases[i] <= address < self._ends[i]:
            i = bisect_right(self._bases, address) - 1
            if i < 0 or address >= self._ends[i]:
                raise SegmentationFault(address, "write", "address is unmapped")
            self._last_index = i
        offset = address - self._bases[i]
        stop = offset + len(data)
        if stop <= self._sizes[i] and self._writable[i]:
            self._datas[i][offset:stop] = data
            for hook in self._hooks:
                hook(address, data, True)
            return
        # Unwritable segment or a straddling range: precise fault.
        self._ordered[i].write(address, data)

    def locate(
        self, address: int, length: int, writable: bool = False
    ) -> Optional[tuple]:
        """Resolve a hook-free in-bounds range to ``(memoryview, offset)``.

        The bytecode VM's vectorized access path: when no observer is
        registered and the whole range sits inside one segment with the
        required permission, the caller may (un)pack values straight
        from the backing store.  Any other case — hooks attached,
        unmapped address, a range straddling the segment end, missing
        permission — returns None, and the caller must go through
        :meth:`read`/:meth:`write` so the precise fault or notification
        happens exactly as it always has.
        """
        if self._hooks:
            return None
        i = self._last_index
        if not self._bases[i] <= address < self._ends[i]:
            i = bisect_right(self._bases, address) - 1
            if i < 0 or address >= self._ends[i]:
                return None
            self._last_index = i
        if not (self._writable[i] if writable else self._readable[i]):
            return None
        offset = address - self._bases[i]
        if offset + length > self._sizes[i]:
            return None
        return self._views[i], offset

    def fill(self, address: int, length: int, byte: int = 0) -> None:
        """memset: used by the sanitization defense (Section 5.1).

        Delegates to the segment's slice-assignment fill; no
        ``length``-sized buffer is built unless a hook needs the bytes.
        """
        seg = self.find_segment(address)
        if seg is None:
            raise SegmentationFault(address, "write", "address is unmapped")
        seg.fill(address, length, byte)
        if self._hooks:
            self._notify(address, bytes((byte,)) * max(length, 0), True)

    def memmove(self, dest: int, src: int, length: int) -> None:
        """Copy ``length`` bytes from ``src`` to ``dest`` (overlap-safe)."""
        if self._hooks:
            # Observed path: one bulk read + one bulk write, both notified.
            self.write(dest, self.read(src, length))
            return
        if length < 0:
            raise ApiMisuseError(f"negative read length {length}")
        src_seg = self.find_segment(src)
        if src_seg is None:
            raise SegmentationFault(src, "read", "address is unmapped")
        if not src_seg.permissions.read:
            raise SegmentationFault(src, "read", "segment is not readable")
        src_off = src_seg._offset(src, length, "read")
        dest_seg = self.find_segment(dest)
        if dest_seg is None:
            raise SegmentationFault(dest, "write", "address is unmapped")
        if not dest_seg.permissions.write:
            raise SegmentationFault(dest, "write", "segment is not writable")
        dest_off = dest_seg._offset(dest, length, "write")
        # The RHS slice is itself a copy, so overlapping ranges are safe.
        dest_seg._data[dest_off : dest_off + length] = src_seg._data[
            src_off : src_off + length
        ]

    # -- typed access -------------------------------------------------------

    def _check_aligned(self, address: int, alignment: int, access: str) -> None:
        if self.strict_alignment and address % alignment != 0:
            from ..errors import BusError

            raise BusError(address, alignment, access)

    def read_int(self, address: int, width: int = 4, signed: bool = True) -> int:
        """Read a little-endian integer."""
        self._check_aligned(address, width, "read")
        return encoding.decode_int(self.read(address, width), signed=signed)

    def write_int(
        self, address: int, value: int, width: int = 4, signed: bool = True
    ) -> None:
        """Write a little-endian integer (wraps modulo width)."""
        self._check_aligned(address, width, "write")
        self.write(address, encoding.encode_int(value, width, signed=signed))

    def read_double(self, address: int) -> float:
        """Read an IEEE-754 binary64."""
        self._check_aligned(address, encoding.DOUBLE_ALIGN, "read")
        return encoding.decode_double(self.read(address, encoding.DOUBLE_SIZE))

    def write_double(self, address: int, value: float) -> None:
        """Write an IEEE-754 binary64."""
        self._check_aligned(address, encoding.DOUBLE_ALIGN, "write")
        self.write(address, encoding.encode_double(value))

    def read_pointer(self, address: int) -> int:
        """Read a 32-bit pointer."""
        self._check_aligned(address, encoding.POINTER_SIZE, "read")
        return encoding.decode_pointer(self.read(address, encoding.POINTER_SIZE))

    def write_pointer(self, address: int, value: int) -> None:
        """Write a 32-bit pointer."""
        self._check_aligned(address, encoding.POINTER_SIZE, "write")
        self.write(address, encoding.encode_pointer(value))

    def read_c_string(self, address: int, max_length: int = 4096) -> str:
        """Read a NUL-terminated string (capped at ``max_length`` bytes).

        The terminator is located with one C-speed scan per backing
        segment instead of a hooked 1-byte read per character.  A string
        that runs off the end of one segment continues into an adjacent
        mapped segment (in DEFAULT_LAYOUT text/data/bss are contiguous,
        and data overflowing into bss is exactly the scenario the paper
        reproduces), faulting only where the next byte really is
        unmapped or unreadable — the same addresses the per-byte loop
        faulted on.  With hooks registered, the whole scanned range
        (string plus terminator, when found) is notified as a single
        read.
        """
        seg = self.find_segment(address)
        if seg is None:
            raise SegmentationFault(address, "read", "address is unmapped")
        if not seg.permissions.read:
            raise SegmentationFault(address, "read", "segment is not readable")
        if max_length <= 0:
            return ""
        chunks: list[bytes] = []
        cursor = address
        remaining = max_length
        nul = -1
        while True:
            span = min(remaining, seg.end - cursor)
            nul = seg.find_byte(0, cursor, span)
            if nul >= 0:
                chunks.append(seg.read(cursor, nul - cursor + 1))
                break
            chunks.append(seg.read(cursor, span))
            remaining -= span
            if remaining == 0:
                break
            # No terminator before this segment ran out: the next
            # 1-byte read lands at seg.end, which may be the base of
            # an adjacent segment.
            cursor = seg.end
            seg = self.find_segment(cursor)
            if seg is None:
                raise SegmentationFault(cursor, "read", "address is unmapped")
            if not seg.permissions.read:
                raise SegmentationFault(cursor, "read", "segment is not readable")
        scanned = chunks[0] if len(chunks) == 1 else b"".join(chunks)
        if self._hooks:
            self._notify(address, scanned, False)
        text = scanned if nul < 0 else scanned[:-1]
        return text.decode("latin-1", errors="replace")

    def write_c_string(self, address: int, text: str) -> None:
        """Write a NUL-terminated string."""
        self.write(address, encoding.encode_c_string(text))

    def strncpy(self, dest: int, src_text: str, count: int) -> None:
        """C ``strncpy``: copy at most ``count`` bytes, zero-padding.

        Faithful to the libc contract the paper's Listing 19 relies on:
        perfectly "safe" as long as ``count`` matches the destination size
        — and an overflow vehicle the moment the size variable has been
        corrupted.
        """
        self.write(dest, encoding.encode_c_string(src_text, buffer_size=count))

    def describe(self) -> str:
        """Render the memory map like ``/proc/<pid>/maps``."""
        return "\n".join(seg.describe() for seg in self.segments)

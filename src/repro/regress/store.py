"""The regression store: durable, replayable oracle disagreements.

A campaign's minimized divergence — or a deliberately recorded
agreement — lives here as one self-contained JSON *bundle*: the MiniC++
source, its scripted stdin, the :class:`~repro.fuzz.OracleConfig` knobs
it ran under, the expected static/dynamic verdicts, the triage label,
and the detector/rule/event-vocabulary versions current at recording
time.  Bundles are **content-addressed by their replay identity**
(source + stdin + oracle knobs): re-recording the same input updates
expectations in place instead of accumulating duplicates, and renaming
a file breaks the address check that :meth:`RegressionStore.gc` (and
the replay harness) enforce.

Version awareness is the load-bearing half: every bundle pins the
versions it was judged under, and :func:`current_versions` recomputes
them from the live code.  A replay over a bundle whose versions no
longer match is *stale*, never silently green — an intentional
``DETECTOR_VERSION`` bump demands an explicit ``repro-regress
rebaseline`` (see docs/REGRESSION.md).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from ..fuzz.divergence import Divergence, normalized_events
from ..fuzz.oracles import DEFAULT_STEP_BUDGET, Observation, OracleConfig

#: Bundle document schema revision.
BUNDLE_SCHEMA = 1

#: The expected-outcome kinds a bundle may record.
BUNDLE_KINDS = ("static-only", "dynamic-only", "agree", "invalid")


def canonical_json(payload) -> str:
    """Deterministic encoding shared by bundle ids and bundle files."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def current_versions() -> dict:
    """The version fingerprint of everything that can move a verdict.

    * ``detector`` / ``legacy_rules`` — the analysis revisions that
      already key the result caches;
    * ``event_vocabulary`` — a digest of the dynamic oracle's
      vulnerability-relevant event kinds, so adding or renaming an
      event kind invalidates recorded dynamic expectations;
    * ``triage_rules`` — a digest of the auto-triage rule labels, so a
      new or renamed triage class cannot silently re-label a corpus.
    """
    from ..analysis import DETECTOR_VERSION, LEGACY_RULE_VERSION
    from ..fuzz.divergence import TRIAGE_RULES
    from ..fuzz.oracles import VULNERABLE_EVENTS

    vocabulary = hashlib.sha256(
        ",".join(sorted(VULNERABLE_EVENTS)).encode()
    ).hexdigest()[:12]
    triage = hashlib.sha256(
        "|".join(label for label, _, _ in TRIAGE_RULES).encode()
    ).hexdigest()[:12]
    return {
        "detector": DETECTOR_VERSION,
        "legacy_rules": LEGACY_RULE_VERSION,
        "event_vocabulary": vocabulary,
        "triage_rules": triage,
    }


def triage_label(triage: str) -> str:
    """The comparable head of a triage note (``"taint-quantifier"``,
    ``"manual"``, or ``""`` for an open divergence)."""
    return triage.split(":", 1)[0].strip() if triage else ""


@dataclass
class RegressionBundle:
    """One recorded input with its expected oracle outcome."""

    source: str
    stdin: tuple = ()
    step_budget: int = DEFAULT_STEP_BUDGET
    canary: bool = True
    expected_kind: str = "agree"  # one of BUNDLE_KINDS
    expected_fingerprint: str = ""
    expected_rules: tuple = ()
    expected_events: tuple = ()  # normalized (see fuzz.divergence)
    triage: str = ""  # recorded triage note; "" = open divergence
    versions: dict = field(default_factory=current_versions)
    family: str = ""
    entry: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def bundle_id(self) -> str:
        """Content address over the replay identity only — the inputs,
        never the expectations, so a rebaseline updates in place."""
        digest = hashlib.sha256(
            canonical_json(
                {
                    "source": self.source,
                    "stdin": list(self.stdin),
                    "step_budget": self.step_budget,
                    "canary": self.canary,
                }
            ).encode()
        ).hexdigest()
        return f"rb-{digest[:20]}"

    def oracle_config(self) -> OracleConfig:
        return OracleConfig(step_budget=self.step_budget, canary=self.canary)

    @property
    def status(self) -> str:
        if self.expected_kind == "agree":
            return "agree"
        return "known-benign" if self.triage else "open"

    def to_dict(self) -> dict:
        return {
            "schema": BUNDLE_SCHEMA,
            "id": self.bundle_id,
            "source": self.source,
            "stdin": list(self.stdin),
            "config": {
                "step_budget": self.step_budget,
                "canary": self.canary,
            },
            "expected": {
                "kind": self.expected_kind,
                "fingerprint": self.expected_fingerprint,
                "static_rules": list(self.expected_rules),
                "dynamic_events": list(self.expected_events),
                "triage": self.triage,
                "status": self.status,
            },
            "versions": dict(sorted(self.versions.items())),
            "family": self.family,
            "entry": self.entry,
            "meta": {str(k): self.meta[k] for k in sorted(self.meta)},
        }

    def to_json(self) -> str:
        """The canonical on-disk document (sorted, trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "RegressionBundle":
        if data.get("schema") != BUNDLE_SCHEMA:
            raise ValueError(
                f"unsupported bundle schema {data.get('schema')!r} "
                f"(this build reads schema {BUNDLE_SCHEMA})"
            )
        config = data.get("config", {})
        expected = data.get("expected", {})
        kind = expected.get("kind", "agree")
        if kind not in BUNDLE_KINDS:
            raise ValueError(f"unknown expected kind {kind!r}")
        return cls(
            source=data["source"],
            stdin=tuple(data.get("stdin", ())),
            step_budget=config.get("step_budget", DEFAULT_STEP_BUDGET),
            canary=config.get("canary", True),
            expected_kind=kind,
            expected_fingerprint=expected.get("fingerprint", ""),
            expected_rules=tuple(expected.get("static_rules", ())),
            expected_events=tuple(expected.get("dynamic_events", ())),
            triage=expected.get("triage", ""),
            versions=dict(data.get("versions", {})),
            family=data.get("family", ""),
            entry=data.get("entry", ""),
            meta=dict(data.get("meta", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RegressionBundle":
        return cls.from_dict(json.loads(text))


def bundle_from_divergence(
    div: Divergence, config: OracleConfig, meta: Optional[dict] = None
) -> RegressionBundle:
    """A bundle capturing one (preferably minimized) divergence."""
    if div.minimized_source:
        source, stdin = div.minimized_source, tuple(div.minimized_stdin)
    else:
        source, stdin = div.source, tuple(div.stdin)
    return RegressionBundle(
        source=source,
        stdin=stdin,
        step_budget=config.step_budget,
        canary=config.canary,
        expected_kind=div.kind,
        expected_fingerprint=div.fingerprint,
        expected_rules=tuple(div.static_rules),
        expected_events=tuple(div.dynamic_events),
        triage=div.triage,
        family=div.family,
        entry=div.entry,
        meta=dict(meta or {}),
    )


def bundle_from_observation(
    source: str,
    stdin: tuple,
    config: OracleConfig,
    observation: Observation,
    triage: str = "",
    meta: Optional[dict] = None,
) -> RegressionBundle:
    """A bundle pinning whatever the oracles currently say about one
    input — a divergence, an agreement, or (rarely) an invalid run."""
    if not observation.valid:
        kind = "invalid"
        events: tuple = ()
    else:
        kind = observation.divergence_kind or "agree"
        events = normalized_events(observation.dynamic.events)
    fingerprint = ""
    if kind in ("static-only", "dynamic-only"):
        from ..fuzz.divergence import auto_triage, fingerprint_of

        fingerprint = fingerprint_of(kind, observation.static.rules, events)
        if not triage:
            # Pin the auto-triage class too: replay recomputes it, and a
            # bundle recorded "open" would drift on its very first replay.
            triage = auto_triage(
                Divergence(
                    fingerprint=fingerprint,
                    kind=kind,
                    static_rules=tuple(observation.static.rules),
                    dynamic_events=events,
                    family="",
                    entry=observation.entry,
                    source=source,
                    stdin=tuple(stdin),
                )
            ).triage
    return RegressionBundle(
        source=source,
        stdin=tuple(stdin),
        step_budget=config.step_budget,
        canary=config.canary,
        expected_kind=kind,
        expected_fingerprint=fingerprint,
        expected_rules=tuple(observation.static.rules),
        expected_events=events,
        triage=triage,
        entry=observation.entry,
        meta=dict(meta or {}),
    )


class RegressionStore:
    """A directory of content-addressed regression bundles.

    One ``<bundle id>.json`` per bundle; ids are derived from the
    bundle's replay identity, so the store is append-mostly and
    naturally deduplicating.  All listing APIs are sorted by id —
    every consumer (replay, diff, the service fan-out) sees the same
    deterministic order.
    """

    def __init__(self, directory, create: bool = True):
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, bundle_id: str) -> Path:
        return self.directory / f"{bundle_id}.json"

    # -- writing -----------------------------------------------------------

    def record(
        self, bundle: RegressionBundle, overwrite: bool = False
    ) -> tuple:
        """Persist ``bundle``; returns ``(id, disposition)``.

        Dispositions: ``"created"`` (new id), ``"unchanged"`` (identical
        document already on disk), ``"kept"`` (same id, different
        expectations, ``overwrite=False`` — the recorded triage/baseline
        wins over an auto-recorder), ``"updated"`` (``overwrite=True``).
        """
        bundle_id = bundle.bundle_id
        path = self.path_for(bundle_id)
        document = bundle.to_json()
        if path.is_file():
            existing = path.read_text()
            if existing == document:
                return bundle_id, "unchanged"
            if not overwrite:
                return bundle_id, "kept"
            self._publish(path, document)
            return bundle_id, "updated"
        self._publish(path, document)
        return bundle_id, "created"

    def _publish(self, path: Path, document: str) -> None:
        """Write ``document`` atomically: a crash mid-write must never
        leave a truncated ``rb-*.json`` for ``gc`` to reap.  The tmp
        name carries pid+tid so concurrent recorders never collide, and
        its ``.tmp`` suffix keeps it invisible to the ``rb-*.json``
        listing globs."""
        tmp = path.parent / (
            f"{path.name}.{os.getpid():x}.{threading.get_ident():x}.tmp"
        )
        try:
            tmp.write_text(document)
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def record_divergence(
        self,
        div: Divergence,
        config: OracleConfig,
        meta: Optional[dict] = None,
        overwrite: bool = False,
    ) -> tuple:
        """Record one fuzz divergence (minimized form when available)."""
        return self.record(
            bundle_from_divergence(div, config, meta=meta), overwrite=overwrite
        )

    def record_report(
        self, report, config: OracleConfig, meta: Optional[dict] = None
    ) -> dict:
        """Record every divergence of a campaign report; returns the
        disposition tally (``{"created": n, "unchanged": m, ...}``)."""
        tally: dict = {}
        for div in report.sorted_divergences():
            _, disposition = self.record_divergence(div, config, meta=meta)
            tally[disposition] = tally.get(disposition, 0) + 1
        return tally

    def remove(self, bundle_id: str) -> bool:
        path = self.path_for(bundle_id)
        if not path.is_file():
            return False
        path.unlink()
        return True

    # -- reading -----------------------------------------------------------

    def ids(self) -> list:
        return sorted(path.stem for path in self.directory.glob("rb-*.json"))

    def load(self, bundle_id: str) -> RegressionBundle:
        return RegressionBundle.from_json(self.path_for(bundle_id).read_text())

    def bundles(self) -> Iterator[RegressionBundle]:
        for bundle_id in self.ids():
            yield self.load(bundle_id)

    def __len__(self) -> int:
        return len(self.ids())

    # -- maintenance -------------------------------------------------------

    def gc(self, dry_run: bool = False) -> dict:
        """Sweep the store: drop documents that cannot be replayed.

        Removes files that are not valid bundle JSON, whose recorded
        ``id`` does not match their recomputed content address (tampered
        or hand-edited inputs), or whose filename does not match their
        id (renamed files).  Stray ``*.tmp`` files — partial writes
        orphaned by a crash before their atomic rename — are swept too.
        Returns ``{"scanned", "kept", "removed"}`` where ``removed``
        maps file name → reason.
        """
        removed: dict = {}
        kept = 0
        scanned = 0
        for path in sorted(self.directory.glob("*.tmp")):
            scanned += 1
            removed[path.name] = "orphaned partial write"
            if not dry_run:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        for path in sorted(self.directory.glob("*.json")):
            scanned += 1
            try:
                bundle = RegressionBundle.from_json(path.read_text())
            except (ValueError, KeyError) as error:
                removed[path.name] = f"unreadable: {error}"
            else:
                if path.stem != bundle.bundle_id:
                    removed[path.name] = (
                        f"address mismatch: content hashes to "
                        f"{bundle.bundle_id}"
                    )
                else:
                    kept += 1
                    continue
            if not dry_run:
                path.unlink()
        return {"scanned": scanned, "kept": kept, "removed": removed}

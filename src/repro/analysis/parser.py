"""Recursive-descent parser for MiniC++.

Produces a :class:`~repro.analysis.ast_nodes.Program` from source text.
The grammar covers the paper's listings: class declarations (with
inheritance, access specifiers, virtual methods, constructors with
initializer lists), global variables, free functions, and the statement
and expression forms the attacks use — most importantly every flavour of
``new``, including placement forms.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import ast_nodes as ast
from .lexer import Token, TokenKind, tokenize

#: Built-in type names (an optional leading ``unsigned``/``const`` is
#: folded into the base name during parsing).
BUILTIN_TYPES = {
    "int", "double", "char", "bool", "float", "void", "long", "short",
    "unsigned", "string", "size_t",
}


class Parser:
    """One-pass parser; class names are registered as encountered so the
    declaration-vs-expression ambiguity resolves the way C++ does."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0
        self._known_types: set[str] = set(BUILTIN_TYPES)

    # -- token plumbing -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect_op(self, op: str) -> Token:
        token = self._advance()
        if not token.is_op(op):
            raise ParseError(f"expected '{op}', got '{token.text}'", token.line, token.column)
        return token

    def _expect_ident(self) -> Token:
        token = self._advance()
        if token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
            raise ParseError(
                f"expected identifier, got '{token.text}'", token.line, token.column
            )
        return token

    def _accept_op(self, *ops: str) -> Optional[Token]:
        if self._peek().is_op(*ops):
            return self._advance()
        return None

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._advance()
        return None

    # -- entry point -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse a translation unit."""
        classes: list[ast.ClassDecl] = []
        globals_: list[ast.VarDecl] = []
        functions: list[ast.FunctionDecl] = []
        while self._peek().kind is not TokenKind.EOF:
            token = self._peek()
            if token.is_keyword("class", "struct"):
                classes.append(self._parse_class())
                continue
            # Either a global variable or a function definition; both
            # start with a type.
            if self._starts_type():
                snapshot = self._pos
                type_ref, name_token = self._parse_type_and_name()
                if self._peek().is_op("("):
                    self._pos = snapshot
                    functions.append(self._parse_function())
                else:
                    self._pos = snapshot
                    globals_.extend(self._parse_var_decl_statement())
                continue
            raise ParseError(
                f"unexpected top-level token '{token.text}'", token.line, token.column
            )
        return ast.Program(
            classes=tuple(classes),
            globals=tuple(globals_),
            functions=tuple(functions),
        )

    # -- types --------------------------------------------------------------

    def _starts_type(self) -> bool:
        token = self._peek()
        if token.is_keyword("const"):
            return True
        if token.kind is TokenKind.IDENT and token.text in self._known_types:
            return True
        return token.kind is TokenKind.IDENT and token.text in BUILTIN_TYPES

    def _parse_base_type(self) -> str:
        while self._accept_keyword("const"):
            pass
        token = self._expect_ident()
        name = token.text
        if name == "unsigned" and self._peek().kind is TokenKind.IDENT and self._peek().text in (
            "int",
            "char",
            "long",
            "short",
        ):
            name = f"unsigned {self._advance().text}"
        return name

    def _parse_type_and_name(self) -> tuple[ast.TypeRef, Token]:
        base = self._parse_base_type()
        depth = 0
        while self._accept_op("*"):
            depth += 1
        name_token = self._expect_ident()
        return ast.TypeRef(name=base, pointer_depth=depth), name_token

    # -- classes --------------------------------------------------------------

    def _parse_class(self) -> ast.ClassDecl:
        keyword = self._advance()  # class/struct
        name_token = self._expect_ident()
        self._known_types.add(name_token.text)
        bases: list[str] = []
        if self._accept_op(":"):
            while True:
                self._accept_keyword("public", "private", "protected")
                bases.append(self._expect_ident().text)
                if not self._accept_op(","):
                    break
        self._expect_op("{")
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self._peek().is_op("}"):
            if self._accept_keyword("public", "private", "protected"):
                self._expect_op(":")
                continue
            virtual = bool(self._accept_keyword("virtual"))
            # Constructor: ClassName '(' ...
            if (
                self._peek().kind is TokenKind.IDENT
                and self._peek().text == name_token.text
                and self._peek(1).is_op("(")
            ):
                methods.append(self._parse_method(name_token.text, constructor=True))
                continue
            base = self._parse_base_type()
            depth = 0
            while self._accept_op("*"):
                depth += 1
            member_name = self._expect_ident()
            if self._peek().is_op("("):
                methods.append(
                    self._parse_method_tail(
                        member_name.text,
                        ast.TypeRef(name=base, pointer_depth=depth),
                        virtual,
                        member_name.line,
                    )
                )
                continue
            # Field (possibly several declarators).
            fields.extend(
                self._parse_field_declarators(base, depth, member_name)
            )
        self._expect_op("}")
        self._accept_op(";")
        return ast.ClassDecl(
            line=keyword.line,
            name=name_token.text,
            bases=tuple(bases),
            fields=tuple(fields),
            methods=tuple(methods),
        )

    def _parse_field_declarators(
        self, base: str, first_depth: int, first_name: Token
    ) -> list[ast.FieldDecl]:
        fields = []
        depth = first_depth
        name_token = first_name
        while True:
            array_size = None
            if self._accept_op("["):
                array_size = self._parse_expression()
                self._expect_op("]")
            fields.append(
                ast.FieldDecl(
                    type=ast.TypeRef(
                        name=base, pointer_depth=depth, array_size=array_size
                    ),
                    name=name_token.text,
                    line=name_token.line,
                )
            )
            if not self._accept_op(","):
                break
            depth = 0
            while self._accept_op("*"):
                depth += 1
            name_token = self._expect_ident()
        self._expect_op(";")
        return fields

    def _parse_method(self, class_name: str, constructor: bool) -> ast.MethodDecl:
        name_token = self._advance()  # the class name
        return self._parse_method_tail(
            name_token.text,
            ast.TypeRef(name="void"),
            virtual=False,
            line=name_token.line,
            constructor=True,
        )

    def _parse_method_tail(
        self,
        name: str,
        return_type: ast.TypeRef,
        virtual: bool,
        line: int,
        constructor: bool = False,
    ) -> ast.MethodDecl:
        params = self._parse_params()
        if constructor and self._accept_op(":"):
            # Initializer list: name(expr) [, name(expr)]*
            while True:
                self._expect_ident()
                self._expect_op("(")
                if not self._peek().is_op(")"):
                    self._parse_expression()
                self._expect_op(")")
                if not self._accept_op(","):
                    break
        body: Optional[ast.Block] = None
        if self._peek().is_op("{"):
            body = self._parse_block()
        else:
            self._expect_op(";")
        return ast.MethodDecl(
            name=name,
            return_type=return_type,
            params=params,
            virtual=virtual,
            body=body,
            line=line,
        )

    def _parse_params(self) -> tuple:
        self._expect_op("(")
        params: list[ast.Param] = []
        if not self._peek().is_op(")"):
            while True:
                base = self._parse_base_type()
                depth = 0
                while self._accept_op("*"):
                    depth += 1
                param_name = ""
                if self._peek().kind is TokenKind.IDENT:
                    param_name = self._advance().text
                if self._accept_op("["):
                    self._expect_op("]")
                    depth += 1
                params.append(
                    ast.Param(
                        type=ast.TypeRef(name=base, pointer_depth=depth),
                        name=param_name,
                    )
                )
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return tuple(params)

    # -- functions -----------------------------------------------------------

    def _parse_function(self) -> ast.FunctionDecl:
        start = self._peek()
        base = self._parse_base_type()
        depth = 0
        while self._accept_op("*"):
            depth += 1
        name_token = self._expect_ident()
        params = self._parse_params()
        body = self._parse_block()
        return ast.FunctionDecl(
            line=start.line,
            name=name_token.text,
            return_type=ast.TypeRef(name=base, pointer_depth=depth),
            params=params,
            body=body,
        )

    # -- statements -----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_token = self._expect_op("{")
        statements: list[ast.Stmt] = []
        while not self._peek().is_op("}"):
            statements.append(self._parse_statement())
        self._expect_op("}")
        return ast.Block(line=open_token.line, statements=tuple(statements))

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_op("{"):
            return self._parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._peek().is_op(";"):
                value = self._parse_expression()
            self._expect_op(";")
            return ast.ReturnStmt(line=token.line, value=value)
        if token.is_keyword("delete"):
            self._advance()
            is_array = False
            if self._accept_op("["):
                self._expect_op("]")
                is_array = True
            target = self._parse_expression()
            self._expect_op(";")
            return ast.DeleteStmt(line=token.line, target=target, is_array=is_array)
        if token.is_keyword("cin"):
            self._advance()
            targets = []
            while self._accept_op(">>"):
                targets.append(self._parse_unary())
            self._expect_op(";")
            return ast.CinRead(line=token.line, targets=tuple(targets))
        if token.is_keyword("cout"):
            self._advance()
            values = []
            while self._accept_op("<<"):
                if self._accept_keyword("endl"):
                    continue
                values.append(self._parse_expression_no_shift())
            self._expect_op(";")
            return ast.CoutWrite(line=token.line, values=tuple(values))
        if self._starts_declaration():
            decls = self._parse_var_decl_statement()
            if len(decls) == 1:
                return decls[0]
            return ast.Block(line=decls[0].line, statements=tuple(decls))
        return self._parse_expr_or_assign_statement()

    def _starts_declaration(self) -> bool:
        token = self._peek()
        if token.is_keyword("const"):
            return True
        if token.kind is not TokenKind.IDENT or token.text not in self._known_types:
            return False
        # TYPE '*'* IDENT  → declaration
        offset = 1
        if token.text == "unsigned":
            offset += 1
        while self._peek(offset).is_op("*"):
            offset += 1
        return self._peek(offset).kind is TokenKind.IDENT

    def _parse_var_decl_statement(self) -> list[ast.VarDecl]:
        base = self._parse_base_type()
        decls: list[ast.VarDecl] = []
        while True:
            depth = 0
            while self._accept_op("*"):
                depth += 1
            name_token = self._expect_ident()
            array_size = None
            if self._accept_op("["):
                array_size = self._parse_expression()
                self._expect_op("]")
            init = None
            if self._accept_op("="):
                init = self._parse_expression()
            elif self._peek().is_op("("):
                # Direct initialization: Student first = Student(...) is
                # handled by '='; `Student s(args)` comes here.
                self._advance()
                args = self._parse_call_args_until_close()
                init = ast.Call(
                    line=name_token.line, func=base, args=tuple(args)
                )
            decls.append(
                ast.VarDecl(
                    line=name_token.line,
                    type=ast.TypeRef(
                        name=base, pointer_depth=depth, array_size=array_size
                    ),
                    name=name_token.text,
                    init=init,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")
        return decls

    def _parse_call_args_until_close(self) -> list[ast.Expr]:
        args: list[ast.Expr] = []
        if not self._peek().is_op(")"):
            while True:
                args.append(self._parse_expression())
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return args

    def _parse_expr_or_assign_statement(self) -> ast.Stmt:
        start = self._peek()
        expr = self._parse_expression()
        if self._accept_op("="):
            value = self._parse_expression()
            self._expect_op(";")
            return ast.Assign(line=start.line, target=expr, value=value)
        if self._peek().is_op("+=", "-=", "*=", "/="):
            op_token = self._advance()
            value = self._parse_expression()
            self._expect_op(";")
            desugared = ast.Binary(
                line=start.line, op=op_token.text[0], left=expr, right=value
            )
            return ast.Assign(line=start.line, target=expr, value=desugared)
        self._expect_op(";")
        return ast.ExprStmt(line=start.line, expr=expr)

    def _parse_if(self) -> ast.If:
        token = self._advance()
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        then_body = self._as_block(self._parse_statement())
        else_body = None
        if self._accept_keyword("else"):
            else_body = self._as_block(self._parse_statement())
        return ast.If(line=token.line, cond=cond, then_body=then_body, else_body=else_body)

    def _parse_while(self) -> ast.While:
        token = self._advance()
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        body = self._as_block(self._parse_statement())
        return ast.While(line=token.line, cond=cond, body=body)

    def _parse_for(self) -> ast.For:
        token = self._advance()
        self._expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_op(";"):
            if self._starts_declaration():
                decls = self._parse_var_decl_statement()
                init = decls[0] if len(decls) == 1 else ast.Block(
                    line=token.line, statements=tuple(decls)
                )
            else:
                init = self._parse_expr_or_assign_statement()
        else:
            self._expect_op(";")
        cond: Optional[ast.Expr] = None
        if not self._peek().is_op(";"):
            cond = self._parse_expression()
        self._expect_op(";")
        step: Optional[ast.Stmt] = None
        if not self._peek().is_op(")"):
            step_start = self._peek()
            step_expr = self._parse_expression()
            if self._accept_op("="):
                value = self._parse_expression()
                step = ast.Assign(line=step_start.line, target=step_expr, value=value)
            elif self._peek().is_op("+=", "-="):
                op_token = self._advance()
                value = self._parse_expression()
                step = ast.Assign(
                    line=step_start.line,
                    target=step_expr,
                    value=ast.Binary(
                        line=step_start.line,
                        op=op_token.text[0],
                        left=step_expr,
                        right=value,
                    ),
                )
            else:
                step = ast.ExprStmt(line=step_start.line, expr=step_expr)
        self._expect_op(")")
        body = self._as_block(self._parse_statement())
        return ast.For(line=token.line, init=init, cond=cond, step=step, body=body)

    def _as_block(self, stmt: ast.Stmt) -> ast.Block:
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(line=stmt.line, statements=(stmt,))

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_expression_no_shift(self) -> ast.Expr:
        """For cout chains: stop at << (precedence level above shifts)."""
        return self._parse_binary(2)

    _PRECEDENCE = (
        ("||",),
        ("&&",),
        ("==", "!=", "<", ">", "<=", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while self._peek().is_op(*self._PRECEDENCE[level]):
            op_token = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(
                line=op_token.line, op=op_token.text, left=left, right=right
            )
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_op("&", "*", "-", "!", "++", "--", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.is_keyword("sizeof"):
            self._advance()
            self._expect_op("(")
            inner = self._peek()
            if inner.kind is TokenKind.IDENT and inner.text in self._known_types:
                type_name = self._parse_base_type()
                while self._accept_op("*"):
                    type_name += "*"
                self._expect_op(")")
                return ast.SizeOf(line=token.line, type_name=type_name)
            expr = self._parse_expression()
            self._expect_op(")")
            return ast.SizeOf(line=token.line, expr=expr)
        if token.is_keyword("new"):
            return self._parse_new()
        return self._parse_postfix(self._parse_primary())

    def _parse_new(self) -> ast.NewExpr:
        token = self._advance()  # 'new'
        placement: Optional[ast.Expr] = None
        if self._peek().is_op("("):
            self._advance()
            placement = self._parse_expression()
            self._expect_op(")")
        type_name = self._parse_base_type()
        while self._accept_op("*"):
            type_name += "*"
        array_count: Optional[ast.Expr] = None
        args: list[ast.Expr] = []
        if self._accept_op("["):
            array_count = self._parse_expression()
            self._expect_op("]")
        elif self._peek().is_op("("):
            self._advance()
            args = self._parse_call_args_until_close()
        return ast.NewExpr(
            line=token.line,
            type_name=type_name,
            placement=placement,
            array_count=array_count,
            args=tuple(args),
        )

    def _parse_primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind is TokenKind.NUMBER:
            return ast.IntLit(line=token.line, value=int(token.text, 0))
        if token.kind is TokenKind.FLOAT:
            return ast.FloatLit(line=token.line, value=float(token.text))
        if token.kind is TokenKind.STRING:
            return ast.StrLit(line=token.line, value=token.text)
        if token.kind is TokenKind.CHARLIT:
            return ast.IntLit(line=token.line, value=ord(token.text[:1] or "\0"))
        if token.is_keyword("true"):
            return ast.BoolLit(line=token.line, value=True)
        if token.is_keyword("false"):
            return ast.BoolLit(line=token.line, value=False)
        if token.is_keyword("NULL", "nullptr"):
            return ast.NullLit(line=token.line)
        if token.is_op("("):
            expr = self._parse_expression()
            self._expect_op(")")
            return expr
        if token.kind is TokenKind.IDENT or token.kind is TokenKind.KEYWORD:
            if self._peek().is_op("("):
                self._advance()
                args = self._parse_call_args_until_close()
                return ast.Call(line=token.line, func=token.text, args=tuple(args))
            return ast.Name(line=token.line, ident=token.text)
        raise ParseError(
            f"unexpected token '{token.text}' in expression", token.line, token.column
        )

    def _parse_postfix(self, expr: ast.Expr) -> ast.Expr:
        while True:
            if self._accept_op("["):
                index = self._parse_expression()
                self._expect_op("]")
                expr = ast.Index(line=expr.line, base=expr, index=index)
                continue
            if self._peek().is_op(".", "->"):
                op_token = self._advance()
                name_token = self._expect_ident()
                if self._peek().is_op("("):
                    self._advance()
                    args = self._parse_call_args_until_close()
                    expr = ast.Call(
                        line=name_token.line,
                        func=name_token.text,
                        args=tuple(args),
                        receiver=expr,
                    )
                else:
                    expr = ast.Member(
                        line=name_token.line,
                        obj=expr,
                        name=name_token.text,
                        arrow=op_token.text == "->",
                    )
                continue
            if self._peek().is_op("++", "--"):
                op_token = self._advance()
                expr = ast.Unary(line=op_token.line, op="post" + op_token.text, operand=expr)
                continue
            break
        return expr


def parse(source: str) -> ast.Program:
    """Parse MiniC++ source into a Program."""
    return Parser(source).parse_program()

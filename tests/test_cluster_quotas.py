"""Tenant token buckets: exact-capacity bursts, refill math, isolation."""

import pytest

from repro.cluster import QuotaManager, TokenBucket, parse_override


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_at_exactly_capacity_is_granted(self):
        bucket = TokenBucket(capacity=8, refill_rate=1)
        granted, retry_after = bucket.try_take(now=0.0, cost=8)
        assert granted and retry_after == 0.0

    def test_one_past_capacity_is_denied_with_exact_wait(self):
        bucket = TokenBucket(capacity=8, refill_rate=2)
        assert bucket.try_take(now=0.0, cost=8)[0]
        granted, retry_after = bucket.try_take(now=0.0, cost=1)
        assert not granted
        assert retry_after == pytest.approx(0.5)  # 1 token at 2 tokens/s

    def test_refill_is_linear_and_capped(self):
        bucket = TokenBucket(capacity=4, refill_rate=2)
        bucket.try_take(now=0.0, cost=4)
        granted, _ = bucket.try_take(now=1.0, cost=2)  # 2s * 2/s = 2 tokens
        assert granted
        # a long idle period cannot overfill past capacity
        bucket.try_take(now=100.0, cost=0)
        assert bucket.tokens == pytest.approx(4.0)

    def test_cost_above_capacity_waits_for_a_full_bucket(self):
        bucket = TokenBucket(capacity=4, refill_rate=1)
        bucket.try_take(now=0.0, cost=3)
        granted, retry_after = bucket.try_take(now=0.0, cost=10)
        assert not granted
        assert retry_after == pytest.approx(3.0)  # back to full: 3 tokens @ 1/s

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_rate=1)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, refill_rate=0)


class TestQuotaManager:
    def test_tenants_are_isolated(self):
        clock = FakeClock()
        quotas = QuotaManager(capacity=2, refill_rate=1, clock=clock)
        assert quotas.admit("a", cost=2)[0]
        assert not quotas.admit("a", cost=1)[0]  # a is dry...
        assert quotas.admit("b", cost=2)[0]  # ...b is untouched
        assert quotas.admit("c", cost=1)[0]

    def test_refill_after_throttle(self):
        clock = FakeClock()
        quotas = QuotaManager(capacity=2, refill_rate=2, clock=clock)
        quotas.admit("t", cost=2)
        granted, retry_after = quotas.admit("t", cost=1)
        assert not granted
        clock.advance(retry_after)
        assert quotas.admit("t", cost=1)[0]

    def test_empty_tenant_maps_to_anon(self):
        clock = FakeClock()
        quotas = QuotaManager(capacity=1, refill_rate=1, clock=clock)
        assert quotas.admit("", cost=1)[0]
        assert not quotas.admit("anon", cost=1)[0]  # same bucket

    def test_overrides_take_precedence(self):
        clock = FakeClock()
        quotas = QuotaManager(
            capacity=1, refill_rate=1, overrides={"vip": (100, 50)}, clock=clock
        )
        assert quotas.admit("vip", cost=50)[0]
        assert not quotas.admit("anon", cost=50)[0]

    def test_stats_accounting(self):
        clock = FakeClock()
        quotas = QuotaManager(capacity=2, refill_rate=1, clock=clock)
        quotas.admit("a", cost=2)
        quotas.admit("a", cost=2)
        stats = quotas.stats()
        assert stats["granted"] == 1
        assert stats["throttled"] == 1
        assert stats["tenants"]["a"]["capacity"] == 2.0
        assert stats["tenants"]["a"]["tokens"] == pytest.approx(0.0)


class TestParseOverride:
    def test_round_trip(self):
        assert parse_override("team-a=128:32.5") == ("team-a", (128.0, 32.5))

    @pytest.mark.parametrize(
        "spec", ["", "a", "a=", "a=1", "a=1:", "=1:2", "a=0:2", "a=1:-3"]
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_override(spec)

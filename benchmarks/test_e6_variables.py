"""E6 — variable modification and the alignment analysis (§3.7).

Claims: a bss global adjacent to the overflowed object is rewritten
(Listing 14); a stack local ``int n`` is rewritten by ``ssn[1]`` while
``ssn[0]`` lands in the 4-byte padding hole (Listing 15).
"""

from repro.attacks import (
    UNPROTECTED,
    DataVariableAttack,
    StackLocalVariableAttack,
)

from conftest import print_table


def run_experiment():
    data_result = DataVariableAttack(injected_count=1_000_000).run(UNPROTECTED)
    stack_result = StackLocalVariableAttack(injected_n=7777).run(UNPROTECTED)
    print_table(
        "E6: variable overwrites (Listings 14-15)",
        ["victim", "before", "after ssn[0]", "after ssn[1]", "padding"],
        [
            (
                "bss noOfStudents",
                data_result.detail["count_before"],
                "-",
                data_result.detail["count_after"],
                "-",
            ),
            (
                "stack local n",
                5,
                stack_result.detail["n_after_ssn0"],
                stack_result.detail["n_after_ssn1"],
                stack_result.detail["padding_above_stud"],
            ),
        ],
    )
    return data_result, stack_result


def test_e6_shape(benchmark):
    data_result, stack_result = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    assert data_result.succeeded
    assert data_result.detail["count_after"] == 1_000_000
    # The paper's alignment paragraph, verbatim in numbers:
    assert stack_result.detail["padding_above_stud"] == 4
    assert stack_result.detail["n_after_ssn0"] == 5      # padding absorbed it
    assert stack_result.detail["n_after_ssn1"] == 7777   # ssn[1] hit n

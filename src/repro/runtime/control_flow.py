"""Control-flow transfer outcomes.

When a simulated indirect transfer happens — a function returns through a
(possibly corrupted) return address, a virtual call goes through a
(possibly corrupted) vptr, a function pointer is invoked — the target
address is resolved against the process image and one of three things
happens, captured by :class:`ExecutionResult`:

* the address is a registered function entry → that function runs
  (*arc injection* when the attacker chose it, Section 3.6.2);
* the address lands in mapped, executable, non-text memory → the bytes
  there are interpreted as shellcode (*code injection*);
* anything else → a simulated fault.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from .shellcode import ShellcodeResult


class ExecutionKind(enum.Enum):
    """How a transfer target was executed."""

    NATIVE = "native"
    SHELLCODE = "shellcode"


@dataclass(frozen=True)
class ExecutionResult:
    """The consequence of one indirect control transfer."""

    address: int
    kind: ExecutionKind
    function_name: Optional[str] = None
    privileged: bool = False
    shellcode: Optional[ShellcodeResult] = None
    return_value: Any = None

    @property
    def spawned_shell(self) -> bool:
        """Did the transfer end in a shell — the canonical attack goal?"""
        if self.shellcode is not None and self.shellcode.spawned_shell:
            return True
        return self.function_name == "system"


@dataclass(frozen=True)
class FrameExit:
    """How a function invocation ended (the epilogue's observations)."""

    function: str
    normal: bool
    returned_to: int
    original_return: int
    canary_intact: Optional[bool] = None
    fp_clobbered: bool = False
    execution: Optional[ExecutionResult] = None

    @property
    def hijacked(self) -> bool:
        """True when control left through a rewritten return address."""
        return not self.normal

"""E13 — detection-tool coverage (§1 + §5.2).

Claims: classic rule-based scanners (the ITS4/Flawfinder tradition the
paper's tool list embodies) flag **0** of the placement-new listings,
while the paper's proposed detector flags all of them — and stays quiet
on the correct-code controls.
"""

from repro.analysis import Severity, analyze_source, simulated_tool_suite
from repro.workloads.corpus import CLASSIC_CORPUS, PLACEMENT_CORPUS, SAFE_CORPUS

from conftest import print_table


def run_experiment():
    tools = simulated_tool_suite()
    rows = []
    scores = {tool.name: 0 for tool in tools}
    scores["placement-analyzer"] = 0
    for program in PLACEMENT_CORPUS:
        our_flag = analyze_source(program.source).flagged
        scores["placement-analyzer"] += int(our_flag)
        row = [program.key, "FLAGGED" if our_flag else "-"]
        for tool in tools:
            flagged = bool(
                tool.scan_source(program.source).at_least(Severity.ERROR)
            )
            scores[tool.name] += int(flagged)
            row.append("FLAGGED" if flagged else "-")
        rows.append(tuple(row))
    headers = ["listing", "placement-analyzer"] + [t.name for t in tools]
    print_table("E13a: placement-new corpus coverage", headers, rows)

    totals = [
        (name, f"{count}/{len(PLACEMENT_CORPUS)}")
        for name, count in scores.items()
    ]
    print_table("E13b: totals", ["tool", "flagged"], totals)

    classic_hits = sum(
        int(simulated_tool_suite()[0].scan_source(p.source).flagged)
        for p in CLASSIC_CORPUS
    )
    false_positives = sum(
        int(bool(analyze_source(p.source).at_least(Severity.WARNING)))
        for p in SAFE_CORPUS
    )
    print_table(
        "E13c: controls",
        ["control", "value"],
        [
            ("legacy tools on classic corpus", f"{classic_hits}/{len(CLASSIC_CORPUS)}"),
            ("our analyzer FPs on safe corpus", f"{false_positives}/{len(SAFE_CORPUS)}"),
        ],
    )
    return scores, classic_hits, false_positives


def test_e13_shape(benchmark):
    scores, classic_hits, false_positives = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    total = len(PLACEMENT_CORPUS)
    # The paper's claim, quantified: legacy tools 0/N as errors.
    assert scores["legacy-strict"] == 0
    assert scores["legacy-grep"] == 0
    # The future-work tool: N/N.
    assert scores["placement-analyzer"] == total
    # And neither side is a straw man.
    assert classic_hits == len(CLASSIC_CORPUS)
    assert false_positives == 0

"""The memory-leak countermeasures of Sections 4.5 / 5.1.

Three options the paper discusses, each implemented and measurable:

1. define and use a *placement delete* (:func:`repro.core.placement_delete`);
2. only place objects whose size equals the arena's ("not quite
   practical" — provided for the ablation);
3. the arena-owner protocol — keep the first pointer at the arena's true
   size and free through it (:class:`repro.core.ArenaOwner`), which the
   paper calls the easiest to implement.

:func:`run_leak_comparison` replays the Listing 23 loop under each
discipline and reports leaked bytes, the E12 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.new_expr import new_object
from ..core.placement import placement_new
from ..core.placement_delete import ArenaOwner
from ..runtime.machine import Machine
from ..workloads.classes import make_student_classes


@dataclass(frozen=True)
class LeakOutcome:
    """Leak accounting for one discipline."""

    discipline: str
    iterations: int
    leaked_bytes: int
    refused: int = 0

    @property
    def leak_per_iteration(self) -> float:
        """Average bytes stranded each pass."""
        return self.leaked_bytes / self.iterations if self.iterations else 0.0


def _leaky_loop(machine: Machine, iterations: int) -> LeakOutcome:
    """Listing 23 as written: free at the smaller believed size."""
    student_cls, grad_cls = make_student_classes()
    for _ in range(iterations):
        arena = new_object(machine, grad_cls)
        placement_new(machine, arena.address, student_cls)
        machine.tracker.mark_freed(arena.address)
        machine.heap.free(arena.address)
    return LeakOutcome(
        discipline="as-written (Listing 23)",
        iterations=iterations,
        leaked_bytes=machine.tracker.leaked_bytes,
    )


def _arena_owner_loop(machine: Machine, iterations: int) -> LeakOutcome:
    """The paper's recommended protocol: free through the true-size owner."""
    student_cls, grad_cls = make_student_classes()
    grad_size = machine.layouts.sizeof(grad_cls)
    for _ in range(iterations):
        with ArenaOwner(machine, grad_size, label="student-arena") as owner:
            placement_new(machine, owner.address, student_cls)
    return LeakOutcome(
        discipline="arena-owner protocol",
        iterations=iterations,
        leaked_bytes=machine.tracker.leaked_bytes,
    )


def _equal_size_loop(machine: Machine, iterations: int) -> LeakOutcome:
    """Option 2: refuse placements whose size differs from the arena's."""
    student_cls, grad_cls = make_student_classes()
    student_size = machine.layouts.sizeof(student_cls)
    refused = 0
    for _ in range(iterations):
        arena = new_object(machine, grad_cls)
        if machine.layouts.sizeof(grad_cls) != student_size:
            refused += 1
            machine.tracker.mark_freed(arena.address)
            machine.heap.free(arena.address)
            continue
        placement_new(machine, arena.address, student_cls)  # pragma: no cover
    return LeakOutcome(
        discipline="equal-size-only",
        iterations=iterations,
        leaked_bytes=machine.tracker.leaked_bytes,
        refused=refused,
    )


def run_leak_comparison(iterations: int = 50) -> list[LeakOutcome]:
    """The E12 ablation: Listing 23 vs both corrected disciplines."""
    outcomes = []
    for loop in (_leaky_loop, _arena_owner_loop, _equal_size_loop):
        outcomes.append(loop(Machine(), iterations))
    return outcomes

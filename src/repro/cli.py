"""Command-line front ends.

``repro-attacks``
    Run the attack gallery (or one named attack) under a chosen defense
    environment and print the outcome table; ``--matrix`` prints the
    full attack × defense matrix (experiment E14).

``repro-analyze``
    Run the placement-new detector — and optionally the legacy-scanner
    suite — over MiniC++ source files or the built-in paper corpus.
    ``--json`` emits machine-readable findings.

``repro-exec``
    Execute a MiniC++ source file on the simulated machine: choose the
    entry function, scripted stdin, and hardening flags, then watch the
    placement log, events, and frame exit.

``repro-serve``
    Run the JSON API service: a worker pool and result cache behind
    ``/analyze``, ``/attacks``, ``/matrix``, ``/exec``, ``/metrics``,
    and ``/healthz`` (see docs/SERVICE.md).

``repro-fuzz``
    Drive coverage-guided differential fuzzing campaigns (static
    detector vs. dynamic simulator): ``run`` executes a deterministic
    campaign and writes the report, ``report`` re-renders a saved
    report, ``triage`` records a human triage note on a divergence, and
    ``minimize`` shrinks one reproducer (see docs/FUZZING.md).

``repro-regress``
    Manage the replayable regression corpus (see docs/REGRESSION.md):
    ``record`` persists divergences from a campaign report or a single
    source file as content-addressed bundles, ``replay`` re-judges the
    whole store against the live oracles and fails on drift or on a
    version bump without rebaseline, ``list``/``diff`` inspect the
    store, ``rebaseline`` re-asserts expectations after an intentional
    detector change, and ``gc`` sweeps unreadable or tampered bundles.

``repro-matrix``
    Run the modern-mitigation sweep (see docs/DEFENSES.md): every
    attack-gallery scenario, generator seed family, and regression
    bundle under every defense — including the shadow call stack, VRT
    bounds table, and memory tagging.  ``run`` evaluates (byte-identical
    at any ``--jobs`` and on either engine), ``report`` renders a saved
    report, and ``diff`` exits 1 on any cell-outcome drift (the CI
    ``matrix-smoke`` gate).

``repro-score``
    Rank a multi-package MiniC++ corpus by propagated blast radius
    (see docs/SCORING.md): ``score`` prints per-package CWE/CAPEC
    risks, ``rank`` prints the corpus ranking (``--json`` is
    byte-stable), and ``diff`` compares two saved reports.

All front ends exit with status 2 on bad input (missing files,
unknown attack/environment names, malformed arguments), so scripts and
service workers can tell usage errors from real findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import analyze_source, run_tool_suite
from .attacks import ALL_ENVIRONMENTS, all_attacks, attack_by_name
from .defenses import ALL_DEFENSES, evaluate_matrix
from .workloads.corpus import FULL_CORPUS

#: Exit status for bad input, shared by every front end.
EX_USAGE = 2


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return EX_USAGE


def _environment_by_label(label: str):
    for env in ALL_ENVIRONMENTS:
        if env.label == label:
            return env
    choices = ", ".join(env.label for env in ALL_ENVIRONMENTS)
    raise LookupError(f"unknown environment '{label}' (choose from: {choices})")


def attacks_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-attacks``."""
    parser = argparse.ArgumentParser(
        prog="repro-attacks",
        description="Run the placement-new attack gallery (Kundu & Bertino, ICDCS'11)",
    )
    parser.add_argument(
        "--attack",
        help="run a single attack by name (default: the whole gallery)",
    )
    parser.add_argument(
        "--env",
        default="unprotected",
        help="defense environment label (default: unprotected)",
    )
    parser.add_argument(
        "--matrix",
        action="store_true",
        help="run every attack under every defense and print the matrix",
    )
    parser.add_argument(
        "--list", action="store_true", help="list attack and environment names"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="include per-attack details"
    )
    args = parser.parse_args(argv)

    if args.list:
        print("attacks:")
        for scenario in all_attacks():
            print(f"  {scenario.name:38s} {scenario.paper_ref}")
        print("environments:")
        for env in ALL_ENVIRONMENTS:
            print(f"  {env.label}")
        return 0

    if args.matrix:
        matrix = evaluate_matrix(all_attacks(), ALL_DEFENSES)
        print(matrix.render(column_width=24))
        return 0

    try:
        environment = _environment_by_label(args.env)
        scenarios = (
            [attack_by_name(args.attack)] if args.attack else all_attacks()
        )
    except LookupError as error:  # KeyError's str() adds quotes; unwrap
        return _fail(error.args[0] if error.args else str(error))
    exit_code = 0
    for scenario in scenarios:
        result = scenario.run(environment)
        print(result.describe())
        if args.verbose:
            for key, value in result.detail.items():
                print(f"    {key} = {value}")
        if args.attack and not result.succeeded and not result.detected_by:
            exit_code = 1
    return exit_code


def analyze_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-analyze``."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Static placement-new vulnerability detector (MiniC++)",
    )
    parser.add_argument(
        "files", nargs="*", help="MiniC++ source files (default: paper corpus)"
    )
    parser.add_argument(
        "--legacy",
        action="store_true",
        help="also run the classic ITS4-style scanners for comparison",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON instead of text",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze with N parallel workers through the job scheduler "
        "(default: 1, the classic sequential path)",
    )
    parser.add_argument(
        "--cache-dir",
        help="persist scheduler results on disk so repeat sweeps are warm "
        "(only meaningful with --jobs)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        return _fail("--jobs must be >= 1")

    sources: list[tuple[str, str]] = []
    if args.files:
        for path in args.files:
            try:
                with open(path) as handle:
                    sources.append((path, handle.read()))
            except OSError as error:
                return _fail(f"cannot read {path}: {error.strerror or error}")
    else:
        sources = [(prog.key, prog.source) for prog in FULL_CORPUS]

    if args.jobs > 1:
        reports = _parallel_reports(sources, args)
    else:
        reports = [
            (name, analyze_source(source), source) for name, source in sources
        ]

    if args.json:
        import json

        from .score.threats import scoring_versions

        print(
            json.dumps(
                {"fingerprint": scoring_versions(), "tool": "repro-analyze"},
                indent=2,
                sort_keys=True,
            )
        )
    any_flagged = False
    for name, report, source in reports:
        any_flagged = any_flagged or report.flagged
        if args.json:
            print(report.to_json())
            continue
        print(f"── {name} ──")
        print(report.render())
        if args.legacy:
            for _, legacy_report in run_tool_suite(source):
                print(legacy_report.render())
        print()
    return 1 if any_flagged and args.files else 0


def _parallel_reports(sources, args):
    """The batch path: sweep through the service scheduler with caching."""
    from .service import ServiceEngine
    from .service.workers import report_from_payload

    with ServiceEngine(workers=args.jobs, cache_dir=args.cache_dir) as engine:
        payloads = engine.sweep(sources)
    return [
        (name, report_from_payload(payload), source)
        for (name, source), payload in zip(sources, payloads)
    ]


def exec_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-exec``."""
    from .execution import run_source
    from .runtime import CanaryPolicy, Machine, MachineConfig

    parser = argparse.ArgumentParser(
        prog="repro-exec",
        description="Execute MiniC++ source on the simulated 32-bit machine",
    )
    parser.add_argument("file", help="MiniC++ source file")
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument(
        "--args",
        default="",
        help="comma-separated entry arguments (ints; default: 0,0 for main)",
    )
    parser.add_argument(
        "--stdin", default="", help="comma-separated tokens for cin"
    )
    parser.add_argument(
        "--canary",
        action="store_true",
        help="enable the StackGuard-style random canary",
    )
    parser.add_argument(
        "--engine",
        choices=("ast", "bytecode"),
        default="ast",
        help="execution engine: the AST interpreter (default) or the "
        "compiled bytecode VM (falls back to the interpreter for "
        "programs the compiler cannot lower)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as error:
        return _fail(f"cannot read {args.file}: {error.strerror or error}")
    machine = Machine(
        MachineConfig(
            canary_policy=CanaryPolicy.RANDOM if args.canary else CanaryPolicy.NONE
        )
    )
    entry_args: tuple = ()
    try:
        if args.args:
            entry_args = tuple(int(token, 0) for token in args.args.split(","))
        elif args.entry == "main":
            entry_args = (0, 0)
        stdin_tokens: tuple = ()
        if args.stdin:
            stdin_tokens = tuple(
                int(token, 0) if not token.lstrip("-").replace(".", "").isalpha()
                else token
                for token in args.stdin.split(",")
            )
    except ValueError as error:
        return _fail(f"bad integer argument: {error}")
    try:
        if args.engine == "bytecode":
            from .execution.vm import run_source_bytecode

            interpreter, outcome, engine_used = run_source_bytecode(
                source,
                entry=args.entry,
                args=entry_args,
                machine=machine,
                stdin=stdin_tokens,
            )
            if engine_used != "bytecode":
                print("note: program not compilable, ran on the AST interpreter")
        else:
            interpreter, outcome = run_source(
                source,
                entry=args.entry,
                args=entry_args,
                machine=machine,
                stdin=stdin_tokens,
            )
    except Exception as error:  # simulated faults included
        print(f"simulated process died: {error}")
        return 1
    print(f"{args.entry}() returned {outcome.return_value} after {outcome.steps} steps")
    if outcome.frame_exit is not None and outcome.frame_exit.hijacked:
        print(
            f"!! control-flow hijack: returned to "
            f"{outcome.frame_exit.returned_to:#010x}"
        )
    for output in interpreter.outputs:
        print("stdout:", output)
    for record in machine.placement_log.records:
        marker = " OVERFLOW" if record.overflows_arena else ""
        print(
            f"placement: {record.type_name} ({record.size}B) at "
            f"{record.address:#010x}"
            + (f" arena {record.arena_size}B" if record.arena_size else "")
            + marker
        )
    for event in machine.events:
        print("event:", event)
    return 0


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-serve``."""
    from .service import ServiceEngine, create_server

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the analysis/attack job engine over a JSON API",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8071, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="worker pool size (default: 4)"
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="worker pool backend (processes buy CPU parallelism)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="on-disk result cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help=(
            "inject faults for hardening demos: comma-separated "
            "kind[:selector[:times[:delay]]] clauses, e.g. "
            "'crash:analyze:2,hang:*:1:0.5' (kinds: crash, hang, "
            "transient, unwritable-disk, slow-disk, corrupt-cache; "
            "thread backend only)"
        ),
    )
    parser.add_argument(
        "--shard-id",
        default="",
        help=(
            "label this process as one shard of a repro-cluster "
            "deployment; stamped onto /healthz and every metrics sample"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        return _fail("--workers must be >= 1")
    fault_plan = None
    if args.fault_plan:
        from .service import FaultPlan

        if args.backend != "thread":
            return _fail("--fault-plan requires the thread backend")
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as error:
            return _fail(f"bad --fault-plan: {error}")

    engine = ServiceEngine(
        workers=args.workers,
        backend=args.backend,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
        fault_plan=fault_plan,
        shard_id=args.shard_id,
    )
    try:
        server = create_server(engine, host=args.host, port=args.port)
    except OSError as error:
        engine.close()
        return _fail(f"cannot bind {args.host}:{args.port}: {error}")
    host, port = server.server_address[:2]
    shard_note = f" [shard {args.shard_id}]" if args.shard_id else ""
    print(
        f"repro-serve listening on http://{host}:{port}{shard_note} "
        f"({args.workers} {args.backend} workers, cache "
        f"{'off' if args.no_cache else args.cache_dir})",
        flush=True,
    )
    if fault_plan is not None:
        print(f"fault plan armed: {fault_plan.describe()}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("draining...")
    finally:
        server.shutdown()
        server.server_close()
        engine.close()
    return 0


def cluster_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-cluster``."""
    import asyncio

    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description=(
            "Serve the job engine from N consistent-hash shards behind "
            "an asyncio front-end with tiered caching and tenant quotas"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8072, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--shards", type=int, default=3, help="shard count (default: 3)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="workers per shard (default: 2)"
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="per-shard worker pool backend",
    )
    parser.add_argument(
        "--shard-mode",
        choices=("inprocess", "subprocess"),
        default="inprocess",
        help=(
            "inprocess: shard engines share this process; subprocess: "
            "each shard is a child repro-serve process"
        ),
    )
    parser.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual nodes per shard on the hash ring (default: 64)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help=(
            "shared on-disk result cache directory; all shards read and "
            "write it, forming the cluster's second cache tier"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching on every shard",
    )
    parser.add_argument(
        "--quota-capacity",
        type=float,
        default=256.0,
        help="default tenant bucket capacity in jobs (default: 256)",
    )
    parser.add_argument(
        "--quota-refill",
        type=float,
        default=64.0,
        help="default tenant refill rate in jobs/second (default: 64)",
    )
    parser.add_argument(
        "--quota",
        action="append",
        default=[],
        metavar="TENANT=CAP:RATE",
        help="per-tenant quota override (repeatable)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help=(
            "arm the cluster dispatch seam: e.g. 'shard-crash:analyze:1' "
            "or 'partition:*:3' (inprocess shard mode only)"
        ),
    )
    args = parser.parse_args(argv)
    if args.shards < 1:
        return _fail("--shards must be >= 1")
    if args.workers < 1:
        return _fail("--workers must be >= 1")
    if args.vnodes < 1:
        return _fail("--vnodes must be >= 1")
    if args.quota_capacity <= 0 or args.quota_refill <= 0:
        return _fail("--quota-capacity and --quota-refill must be > 0")
    from .cluster import QuotaManager, parse_override

    overrides = {}
    for spec in args.quota:
        try:
            tenant, budget = parse_override(spec)
        except ValueError as error:
            return _fail(f"bad --quota: {error}")
        overrides[tenant] = budget
    fault_plan = None
    if args.fault_plan:
        from .service import FaultPlan

        if args.shard_mode != "inprocess":
            return _fail("--fault-plan requires --shard-mode inprocess")
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as error:
            return _fail(f"bad --fault-plan: {error}")

    async def _serve() -> int:
        from .cluster import (
            ClusterRouter,
            build_shards,
            create_cluster_server,
        )

        shards = await build_shards(
            args.shards,
            mode=args.shard_mode,
            workers=args.workers,
            backend=args.backend,
            cache_dir=None if args.no_cache else args.cache_dir,
            use_cache=not args.no_cache,
            fault_plan=fault_plan,
        )
        router = ClusterRouter(
            shards, vnodes=args.vnodes, fault_plan=fault_plan
        )
        quotas = QuotaManager(
            capacity=args.quota_capacity,
            refill_rate=args.quota_refill,
            overrides=overrides,
        )
        try:
            server = await create_cluster_server(
                router, quotas=quotas, host=args.host, port=args.port
            )
        except OSError as error:
            await router.close()
            return _fail(f"cannot bind {args.host}:{args.port}: {error}")
        print(
            f"repro-cluster listening on http://{args.host}:{server.port} "
            f"({args.shards} {args.shard_mode} shards x {args.workers} "
            f"{args.backend} workers, {args.vnodes} vnodes, cache "
            f"{'off' if args.no_cache else args.cache_dir})",
            flush=True,
        )
        if fault_plan is not None:
            print(f"fault plan armed: {fault_plan.describe()}", flush=True)
        try:
            await server.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            print("draining...")
        finally:
            await server.close()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0


def _load_report(path: str):
    """A saved campaign report, or an exit code on bad input."""
    import json

    from .fuzz import CampaignReport

    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        return None, _fail(f"cannot read {path}: {error.strerror or error}")
    except ValueError as error:
        return None, _fail(f"{path} is not a report: {error}")
    return CampaignReport.from_dict(data), None


def _fuzz_run(args) -> int:
    import signal
    import threading

    from .fuzz import (
        CampaignInterrupted,
        CheckpointError,
        FuzzConfig,
        run_campaign,
    )

    if args.resume and not args.checkpoint_dir:
        return _fail("--resume requires --checkpoint-dir")
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        step_budget=args.step_budget,
        canary=not args.no_canary,
        minimize=not args.no_minimize,
        max_corpus=args.max_corpus,
        engine=args.engine,
    )
    store = None
    if getattr(args, "record", None):
        from .regress import RegressionStore

        store = RegressionStore(args.record)

    # First Ctrl-C: graceful round-boundary stop (drain the in-flight
    # round, write a checkpoint).  Second Ctrl-C: abort hard via the
    # usual KeyboardInterrupt path.
    stop_event = threading.Event()

    def _request_stop(signum, frame):
        if stop_event.is_set():
            raise KeyboardInterrupt
        stop_event.set()
        print(
            "interrupt: finishing the current round and writing a "
            "checkpoint... (Ctrl-C again to abort hard)",
            file=sys.stderr,
        )

    previous_handler = None
    try:
        previous_handler = signal.signal(signal.SIGINT, _request_stop)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    campaign_kwargs = dict(
        store=store,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        skip_version_check=args.skip_version_check,
        stop_event=stop_event,
        stop_after_rounds=args.stop_after or None,
    )
    try:
        if args.jobs > 0:
            from .service import ServiceEngine

            with ServiceEngine(
                workers=args.jobs, backend=args.backend, use_cache=False
            ) as engine:
                report = run_campaign(
                    config,
                    engine=engine,
                    batch_size=args.batch_size,
                    batch_timeout=args.batch_timeout,
                    **campaign_kwargs,
                )
        else:
            report = run_campaign(
                config, batch_size=args.batch_size, **campaign_kwargs
            )
    except CampaignInterrupted as interrupted:
        print(f"fuzz: {interrupted}", file=sys.stderr)
        if interrupted.checkpoint_path is not None:
            print(
                "fuzz: resume with 'repro-fuzz run --resume "
                f"--checkpoint-dir {args.checkpoint_dir}'",
                file=sys.stderr,
            )
        return 130
    except CheckpointError as error:
        return _fail(str(error))
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
    if getattr(report, "record_errors", 0):
        print(
            f"warning: {report.record_errors} divergence(s) could not be "
            "recorded to the regression store (fuzz.record_errors)",
            file=sys.stderr,
        )
    if getattr(report, "compile_errors", 0):
        first = getattr(report, "first_compile_error", "")
        print(
            f"warning: the bytecode compiler crashed on "
            f"{report.compile_errors} source(s); those ran on the AST "
            "interpreter instead (bytecode.compile_errors"
            + (f"; first: {first}" if first else "")
            + ")",
            file=sys.stderr,
        )
    if getattr(report, "engine_drift", 0):
        print(
            f"warning: {report.engine_drift} execution(s) disagreed "
            "between the AST and bytecode engines (fuzz.engine_drift) — "
            "this is a simulator bug; please report it",
            file=sys.stderr,
        )
    if store is not None:
        print(
            f"recorded {len(report.divergences)} divergence(s) into "
            f"{store.directory} ({len(store)} bundle(s) total)"
        )
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(report.to_json())
        except OSError as error:
            return _fail(f"cannot write {args.out}: {error.strerror or error}")
    if args.json:
        print(report.to_json(), end="")
    else:
        print(report.render())
    if args.fail_on_untriaged and report.untriaged:
        print(
            f"FAIL: {len(report.untriaged)} un-triaged divergence(s); "
            "triage with 'repro-fuzz triage' or fix the oracle gap",
            file=sys.stderr,
        )
        return 1
    return 0


def _fuzz_report(args) -> int:
    report, error = _load_report(args.report)
    if report is None:
        return error
    if args.json:
        print(report.to_json(), end="")
    else:
        print(report.render())
    return 1 if args.fail_on_untriaged and report.untriaged else 0


def _fuzz_triage(args) -> int:
    import dataclasses

    report, error = _load_report(args.report)
    if report is None:
        return error
    if not args.fingerprint:  # list mode
        for div in report.sorted_divergences():
            status = "known-benign" if div.triage else "OPEN"
            print(f"{div.fingerprint}  [{status}]  {div.kind}")
        return 0
    if not args.note:
        return _fail("--note is required when marking a fingerprint")
    matched = False
    for index, div in enumerate(report.divergences):
        if div.fingerprint == args.fingerprint:
            report.divergences[index] = dataclasses.replace(
                div, triage=f"manual: {args.note}"
            )
            matched = True
    if not matched:
        return _fail(f"no divergence with fingerprint '{args.fingerprint}'")
    try:
        with open(args.report, "w") as handle:
            handle.write(report.to_json())
    except OSError as error:
        return _fail(f"cannot write {args.report}: {error.strerror or error}")
    print(f"marked {args.fingerprint} known-benign (manual: {args.note})")
    return 0


def _fuzz_minimize(args) -> int:
    from .fuzz import (
        FuzzInput,
        divergence_from,
        fingerprint_of,
        minimize_input,
        normalized_events,
        run_oracles,
    )

    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as error:
        return _fail(f"cannot read {args.file}: {error.strerror or error}")
    stdin: tuple = ()
    if args.stdin:
        try:
            stdin = tuple(int(token, 0) for token in args.stdin.split(","))
        except ValueError as error:
            return _fail(f"bad --stdin token: {error}")
    fuzz_input = FuzzInput(source=source, stdin=stdin)
    observation = run_oracles(source, stdin)
    div = divergence_from(observation, fuzz_input)
    if div is None:
        verdict = "invalid run" if not observation.valid else "oracles agree"
        print(f"no divergence to minimize: {verdict}")
        return 1

    def same(candidate):
        obs = run_oracles(candidate.source, candidate.stdin)
        return obs.divergence_kind == div.kind and (
            fingerprint_of(
                div.kind, obs.static.rules, normalized_events(obs.dynamic.events)
            )
            == div.fingerprint
        )

    smallest = minimize_input(fuzz_input, same)
    print(f"divergence {div.fingerprint} ({div.kind})")
    print(f"static rules: {', '.join(div.static_rules) or '-'}")
    print(f"dynamic events: {', '.join(div.dynamic_events) or '-'}")
    print("minimized source:")
    print(smallest.source)
    if smallest.stdin:
        print(f"minimized stdin: {','.join(str(t) for t in smallest.stdin)}")
    return 0


def fuzz_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-fuzz``."""
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Coverage-guided differential fuzzing: static detector "
        "vs. dynamic simulator oracle",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one deterministic campaign")
    run_parser.add_argument("--seed", type=int, default=1, help="campaign seed")
    run_parser.add_argument(
        "--iterations",
        type=int,
        default=200,
        help="mutation iterations beyond the seed set (default: 200)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="fan batches out over N service workers; 0 = in-process "
        "sequential (default: 4)",
    )
    run_parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="service worker backend (default: thread)",
    )
    run_parser.add_argument(
        "--batch-size",
        type=int,
        default=50,
        help="iterations per service batch (default: 50)",
    )
    run_parser.add_argument(
        "--batch-timeout",
        type=float,
        default=120.0,
        help="per-batch job timeout in seconds (default: 120)",
    )
    run_parser.add_argument(
        "--step-budget",
        type=int,
        default=50_000,
        help="interpreter step budget per execution (default: 50000)",
    )
    run_parser.add_argument(
        "--max-corpus",
        type=int,
        default=256,
        help="live corpus size cap (default: 256)",
    )
    run_parser.add_argument(
        "--engine",
        choices=("ast", "bytecode", "both"),
        default="ast",
        help="dynamic-oracle execution engine: the AST interpreter "
        "(default), the compiled bytecode VM, or 'both' — run each "
        "program on both engines and report any verdict disagreement "
        "as engine drift (a differential oracle over the VM itself)",
    )
    run_parser.add_argument(
        "--no-canary",
        action="store_true",
        help="run the dynamic oracle without the stack canary",
    )
    run_parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip divergence minimization (faster campaigns)",
    )
    run_parser.add_argument(
        "--record",
        metavar="DIR",
        help="record every minimized divergence into this regression "
        "store (see repro-regress / docs/REGRESSION.md)",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write a resumable checkpoint after the seed pass and after "
        "every completed round (see docs/FUZZING.md)",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the newest checkpoint in --checkpoint-dir "
        "instead of starting over",
    )
    run_parser.add_argument(
        "--skip-version-check",
        action="store_true",
        help="resume even if the checkpoint was recorded under different "
        "detector/simulator/triage versions (verdicts may mix regimes)",
    )
    run_parser.add_argument(
        "--stop-after",
        type=int,
        default=0,
        metavar="ROUNDS",
        help="gracefully stop after N completed rounds this invocation, "
        "writing a checkpoint and exiting 130 (0 = run to completion)",
    )
    run_parser.add_argument("--out", help="write the JSON report to this file")
    run_parser.add_argument(
        "--json", action="store_true", help="print the JSON report to stdout"
    )
    run_parser.add_argument(
        "--fail-on-untriaged",
        action="store_true",
        help="exit 1 if any divergence lacks a triage label (CI gate)",
    )
    run_parser.set_defaults(func=_fuzz_run)

    report_parser = sub.add_parser("report", help="render a saved report")
    report_parser.add_argument("report", help="campaign report JSON file")
    report_parser.add_argument(
        "--json", action="store_true", help="re-emit canonical JSON"
    )
    report_parser.add_argument(
        "--fail-on-untriaged",
        action="store_true",
        help="exit 1 if any divergence lacks a triage label",
    )
    report_parser.set_defaults(func=_fuzz_report)

    triage_parser = sub.add_parser(
        "triage", help="list divergences or mark one known-benign"
    )
    triage_parser.add_argument("report", help="campaign report JSON file")
    triage_parser.add_argument(
        "--fingerprint", help="divergence fingerprint to mark (omit to list)"
    )
    triage_parser.add_argument(
        "--note", help="why this divergence is benign (recorded in the report)"
    )
    triage_parser.set_defaults(func=_fuzz_triage)

    minimize_parser = sub.add_parser(
        "minimize", help="shrink one diverging source file"
    )
    minimize_parser.add_argument("file", help="MiniC++ source file")
    minimize_parser.add_argument(
        "--stdin", default="", help="comma-separated integer tokens for cin"
    )
    minimize_parser.set_defaults(func=_fuzz_minimize)

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 0) < 0:
        return _fail("--jobs must be >= 0")
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # A hard abort (second Ctrl-C, or an interrupt outside the
        # graceful-stop window).  The engine's ``with`` block has
        # already drained its pool on the way out.
        print("fuzz: interrupted", file=sys.stderr)
        return 130


def _open_store(directory: str, create: bool = False):
    """A store handle, or an exit code when the directory is missing."""
    import os

    from .regress import RegressionStore

    if not create and not os.path.isdir(directory):
        return None, _fail(f"no regression store at {directory}")
    return RegressionStore(directory, create=create), None


def _regress_record(args) -> int:
    from .fuzz import OracleConfig

    store, error = _open_store(args.store, create=True)
    if store is None:
        return error
    config = OracleConfig(
        step_budget=args.step_budget, canary=not args.no_canary
    )
    if args.from_report:
        report, error = _load_report(args.from_report)
        if report is None:
            return error
        tally = store.record_report(
            report,
            config,
            meta={"seed": report.seed, "recorded_by": "repro-regress record"},
        )
        summary = (
            ", ".join(f"{count} {kind}" for kind, count in sorted(tally.items()))
            or "no divergences in the report"
        )
        print(f"recorded from {args.from_report}: {summary}")
        return 0
    if not args.source:
        return _fail("provide --from-report or --source")
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as error:
        return _fail(f"cannot read {args.source}: {error.strerror or error}")
    stdin: tuple = ()
    if args.stdin:
        try:
            stdin = tuple(int(token, 0) for token in args.stdin.split(","))
        except ValueError as error:
            return _fail(f"bad --stdin token: {error}")
    from .fuzz import run_oracles
    from .regress import bundle_from_observation

    observation = run_oracles(source, stdin, config)
    bundle = bundle_from_observation(
        source,
        stdin,
        config,
        observation,
        triage=f"manual: {args.note}" if args.note else "",
        meta={"recorded_by": "repro-regress record", "path": args.source},
    )
    bundle_id, disposition = store.record(bundle, overwrite=args.force)
    print(
        f"{disposition} {bundle_id} (expected {bundle.expected_kind}"
        + (f", fingerprint {bundle.expected_fingerprint}" if bundle.expected_fingerprint else "")
        + ")"
    )
    if disposition == "kept":
        print("an existing bundle with different expectations was kept; "
              "pass --force to overwrite", file=sys.stderr)
        return 1
    return 0


def _regress_replay(args) -> int:
    store, error = _open_store(args.store)
    if store is None:
        return error
    if args.jobs > 0:
        from .service import ServiceEngine

        with ServiceEngine(
            workers=args.jobs, backend=args.backend, use_cache=False
        ) as engine:
            drift = engine.regress_replay(
                store,
                chunk_size=args.chunk_size,
                check_versions=not args.skip_version_check,
                engine=args.engine,
            )
    else:
        from .regress import replay_store

        drift = replay_store(
            store,
            check_versions=not args.skip_version_check,
            engine="" if args.engine == "ast" else args.engine,
        )
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(drift.to_json())
        except OSError as error:
            return _fail(f"cannot write {args.out}: {error.strerror or error}")
    if args.json:
        print(drift.to_json(), end="")
    else:
        print(drift.render())
    if drift.drifted and not args.allow_drift:
        print(
            f"FAIL: {len(drift.drifted)} bundle(s) drifted; inspect with "
            "'repro-regress diff', fix the regression, or 'repro-regress "
            "rebaseline' after an intentional change",
            file=sys.stderr,
        )
        return 1
    return 0


def _regress_list(args) -> int:
    from .regress import current_versions

    store, error = _open_store(args.store)
    if store is None:
        return error
    live = current_versions()
    count = 0
    for bundle in store.bundles():
        count += 1
        stale = "" if bundle.versions == live else " STALE-VERSION"
        rules = ",".join(bundle.expected_rules) or "-"
        events = ",".join(bundle.expected_events) or "-"
        print(
            f"{bundle.bundle_id}  [{bundle.status}] {bundle.expected_kind}"
            f"{stale}  rules={rules} events={events}"
            + (f"  (family {bundle.family})" if bundle.family else "")
        )
    print(f"{count} bundle(s) in {store.directory}")
    return 0


def _regress_diff(args) -> int:
    import json as _json

    from .regress import replay_store

    store, error = _open_store(args.store)
    if store is None:
        return error
    drift = replay_store(
        store,
        check_versions=not args.skip_version_check,
        bundle_ids=args.ids or None,
    )
    for result in drift.sorted_results():
        if result.ok:
            continue
        print(f"── {result.bundle_id} [{result.status}] ──")
        if result.detail:
            print(f"  {result.detail}")
        for side, view in (("expected", result.expected), ("observed", result.observed)):
            print(f"  {side}: {_json.dumps(view, sort_keys=True)}")
    clean = len(drift.results) - len(drift.drifted)
    print(f"{clean}/{len(drift.results)} bundle(s) reproduce exactly")
    return 1 if drift.drifted else 0


def _regress_rebaseline(args) -> int:
    from .regress import rebaseline_store

    store, error = _open_store(args.store)
    if store is None:
        return error
    outcome = rebaseline_store(store, bundle_ids=args.ids or None)
    for bundle_id in outcome["updated"]:
        print(f"rebaselined {bundle_id}")
    print(
        f"{len(outcome['updated'])} updated, "
        f"{len(outcome['unchanged'])} already current, "
        f"{len(outcome['failed'])} failed"
    )
    for bundle_id, reason in sorted(outcome["failed"].items()):
        print(f"FAILED {bundle_id}: {reason}", file=sys.stderr)
    return 1 if outcome["failed"] else 0


def _regress_gc(args) -> int:
    store, error = _open_store(args.store)
    if store is None:
        return error
    outcome = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for name, reason in sorted(outcome["removed"].items()):
        print(f"{verb} {name}: {reason}")
    print(
        f"scanned {outcome['scanned']}, kept {outcome['kept']}, "
        f"{verb} {len(outcome['removed'])}"
    )
    return 0


def regress_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-regress``."""
    parser = argparse.ArgumentParser(
        prog="repro-regress",
        description="Replayable regression corpus for oracle divergences "
        "(record, replay, and gate on drift)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p):
        p.add_argument(
            "--store",
            default="corpus/regress",
            metavar="DIR",
            help="regression store directory (default: corpus/regress)",
        )

    record_parser = sub.add_parser(
        "record", help="record divergences as replayable bundles"
    )
    add_store(record_parser)
    record_parser.add_argument(
        "--from-report",
        metavar="FILE",
        help="record every divergence of a saved campaign report",
    )
    record_parser.add_argument(
        "--source", metavar="FILE", help="record one MiniC++ source file"
    )
    record_parser.add_argument(
        "--stdin", default="", help="comma-separated integer tokens for cin"
    )
    record_parser.add_argument(
        "--note",
        default="",
        help="manual triage note stored with a --source bundle",
    )
    record_parser.add_argument(
        "--step-budget", type=int, default=50_000, help="oracle step budget"
    )
    record_parser.add_argument(
        "--no-canary", action="store_true", help="record without the canary"
    )
    record_parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing bundle with different expectations",
    )
    record_parser.set_defaults(func=_regress_record)

    replay_parser = sub.add_parser(
        "replay", help="re-judge the whole store against the live oracles"
    )
    add_store(replay_parser)
    replay_parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="fan bundle chunks out over N service workers; 0 = "
        "in-process sequential (default: 0)",
    )
    replay_parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="service worker backend (default: thread)",
    )
    replay_parser.add_argument(
        "--chunk-size",
        type=int,
        default=8,
        help="bundles per replay job (default: 8)",
    )
    replay_parser.add_argument(
        "--engine",
        choices=("ast", "bytecode", "both"),
        default="ast",
        help="execution engine override for the replay: AST interpreter "
        "(default, the recorded regime), bytecode VM, or 'both' — "
        "flag any engine disagreement as engine-drift",
    )
    replay_parser.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="exit 1 on any drift (the default; kept explicit for CI)",
    )
    replay_parser.add_argument(
        "--allow-drift",
        action="store_true",
        help="report drift but exit 0 (triage workflows)",
    )
    replay_parser.add_argument(
        "--skip-version-check",
        action="store_true",
        help="compare verdicts even for bundles recorded under other "
        "versions (no stale-version failures)",
    )
    replay_parser.add_argument(
        "--out", metavar="FILE", help="write the JSON drift report here"
    )
    replay_parser.add_argument(
        "--json", action="store_true", help="print the JSON drift report"
    )
    replay_parser.set_defaults(func=_regress_replay)

    list_parser = sub.add_parser("list", help="list the recorded bundles")
    add_store(list_parser)
    list_parser.set_defaults(func=_regress_list)

    diff_parser = sub.add_parser(
        "diff", help="show expected-vs-observed detail for drifted bundles"
    )
    add_store(diff_parser)
    diff_parser.add_argument(
        "ids", nargs="*", help="bundle ids (default: the whole store)"
    )
    diff_parser.add_argument(
        "--skip-version-check",
        action="store_true",
        help="compare verdicts even across version bumps",
    )
    diff_parser.set_defaults(func=_regress_diff)

    rebaseline_parser = sub.add_parser(
        "rebaseline",
        help="re-assert expectations and versions after an intentional change",
    )
    add_store(rebaseline_parser)
    rebaseline_parser.add_argument(
        "ids", nargs="*", help="bundle ids (default: the whole store)"
    )
    rebaseline_parser.set_defaults(func=_regress_rebaseline)

    gc_parser = sub.add_parser(
        "gc", help="sweep unreadable or address-mismatched bundles"
    )
    add_store(gc_parser)
    gc_parser.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    gc_parser.set_defaults(func=_regress_gc)

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 0) < 0:
        return _fail("--jobs must be >= 0")
    if getattr(args, "chunk_size", 1) < 1:
        return _fail("--chunk-size must be >= 1")
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Replay fans out over a worker pool; the engine's ``with``
        # block drains it on the way out, so exiting here cannot
        # orphan workers.
        print("regress: interrupted", file=sys.stderr)
        return 130


def _score_graph_from(args):
    """Build the package graph named by ``args.packages``; None + exit
    code on bad input."""
    from .score import demo_graph, load_package_dir

    if getattr(args, "demo", False):
        return demo_graph(), None
    try:
        return load_package_dir(args.packages), None
    except FileNotFoundError as error:
        return None, _fail(str(error))
    except ValueError as error:
        return None, _fail(str(error))


def _score_corpus(args):
    """Score the graph sequentially or over the service pool."""
    from .score import score_graph

    graph, error = _score_graph_from(args)
    if graph is None:
        return None, error
    if not 0.0 <= args.attenuation <= 1.0:
        return None, _fail("--attenuation must be in [0, 1]")
    if args.jobs == 0:
        return score_graph(graph, attenuation=args.attenuation), None
    from .service import ServiceEngine

    with ServiceEngine(workers=args.jobs, backend=args.backend) as engine:
        return engine.score_corpus(graph, attenuation=args.attenuation), None


def _score_score(args) -> int:
    score, error = _score_corpus(args)
    if score is None:
        return error
    if args.json:
        print(score.to_json())
        return 0
    for name in score.ranking:
        entry = score.entry(name)
        print(
            f"── {name} ── intrinsic {entry.intrinsic}, "
            f"blast {entry.blast_radius:.2f}, exposure {entry.exposure:.2f}"
        )
        for risk in entry.risks:
            cwes = ",".join(f"CWE-{n}" for n in risk["cwe"])
            print(
                f"  line {risk['line']:>3}  {risk['trigger']:<28} "
                f"{risk['threat']} ({cwes})  "
                f"{risk['likelihood']}/{risk['impact']} score={risk['score']}"
            )
        if not entry.risks:
            print("  no intrinsic risks")
    return 0


def _score_rank(args) -> int:
    score, error = _score_corpus(args)
    if score is None:
        return error
    output = score.to_json() if args.json else score.render(top=args.top)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(output + "\n")
        except OSError as error:
            return _fail(f"cannot write {args.out}: {error.strerror or error}")
        print(f"wrote {args.out}")
        return 0
    print(output)
    return 0


def _score_diff(args) -> int:
    import json

    from .score import diff_score_reports

    documents = []
    for path in (args.before, args.after):
        try:
            with open(path) as handle:
                documents.append(json.load(handle))
        except OSError as error:
            return _fail(f"cannot read {path}: {error.strerror or error}")
        except ValueError as error:
            return _fail(f"{path} is not a score report: {error}")
    lines = diff_score_reports(documents[0], documents[1])
    for line in lines:
        print(line)
    if not lines:
        print("reports are equivalent")
    return 1 if lines else 0


def _load_matrix_report(path: str):
    """A saved sweep report, or an exit code when unreadable."""
    import json
    import os

    if not os.path.exists(path):
        return _fail(f"no such report: {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        return _fail(f"cannot read report {path}: {error}")
    if not isinstance(report, dict) or "rows" not in report:
        return _fail(f"{path} is not a matrix sweep report")
    return report


def _matrix_regress_dir(args) -> Optional[str]:
    import os

    if args.no_regress:
        return None
    if args.regress_dir:
        if not os.path.isdir(args.regress_dir):
            raise LookupError(f"no such regression store: {args.regress_dir}")
        return args.regress_dir
    default = "corpus/regress"
    return default if os.path.isdir(default) else None


def _matrix_run(args) -> int:
    from .matrix import canonical_report_json, render_report, run_sweep

    defenses = (
        tuple(name.strip() for name in args.defenses.split(",") if name.strip())
        if args.defenses
        else ()
    )
    try:
        regress_dir = _matrix_regress_dir(args)
        if args.jobs == 0:
            report = run_sweep(
                defenses=defenses,
                engine=args.engine,
                seed=args.seed,
                regress_dir=regress_dir,
                step_budget=args.step_budget,
            )
        else:
            from .service import ServiceEngine

            with ServiceEngine(
                workers=args.jobs, backend=args.backend, use_cache=False
            ) as engine:
                report = engine.matrix_sweep(
                    defenses=defenses,
                    engine=args.engine,
                    seed=args.seed,
                    regress_dir=regress_dir,
                    step_budget=args.step_budget,
                )
    except (KeyError, LookupError) as error:
        return _fail(error.args[0] if error.args else str(error))
    encoded = canonical_report_json(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(encoded + "\n")
    if args.json:
        print(encoded)
    else:
        print(render_report(report))
    return 0


def _matrix_report(args) -> int:
    from .matrix import canonical_report_json, render_report

    report = _load_matrix_report(args.report)
    if isinstance(report, int):
        return report
    if args.json:
        print(canonical_report_json(report))
    else:
        print(render_report(report))
    return 0


def _matrix_diff(args) -> int:
    from .matrix import diff_reports

    baseline = _load_matrix_report(args.baseline)
    if isinstance(baseline, int):
        return baseline
    current = _load_matrix_report(args.current)
    if isinstance(current, int):
        return current
    drift = diff_reports(baseline, current)
    for line in drift:
        print(line)
    if not drift:
        print("matrix outcomes are identical")
    return 1 if drift else 0


def matrix_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-matrix``."""
    parser = argparse.ArgumentParser(
        prog="repro-matrix",
        description="Modern-mitigation sweep: gallery attacks, generator "
        "seed families, and regression bundles under every defense "
        "(see docs/DEFENSES.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="evaluate the sweep")
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="fan cells out over N service workers; 0 = in-process "
        "sequential (default: 4)",
    )
    run_parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="service worker backend (default: thread)",
    )
    run_parser.add_argument(
        "--engine",
        choices=("ast", "bytecode"),
        default="ast",
        help="execution engine for program rows (default: ast); the "
        "report is byte-identical on either",
    )
    run_parser.add_argument(
        "--seed", type=int, default=1, help="generator seed-row seed (default: 1)"
    )
    run_parser.add_argument(
        "--regress-dir",
        metavar="DIR",
        help="regression store for bundle rows (default: corpus/regress "
        "when present)",
    )
    run_parser.add_argument(
        "--no-regress",
        action="store_true",
        help="skip the regression-bundle rows",
    )
    run_parser.add_argument(
        "--defenses",
        help="comma-separated defense names (default: the full roster)",
    )
    run_parser.add_argument(
        "--step-budget",
        type=int,
        default=50_000,
        help="interpreter step budget per program cell (default: 50000)",
    )
    run_parser.add_argument("--out", help="write the canonical JSON report here")
    run_parser.add_argument(
        "--json", action="store_true", help="print canonical JSON, not the table"
    )
    run_parser.set_defaults(func=_matrix_run)

    report_parser = sub.add_parser("report", help="render a saved sweep report")
    report_parser.add_argument("report", help="sweep report JSON file")
    report_parser.add_argument(
        "--json", action="store_true", help="re-emit canonical JSON"
    )
    report_parser.set_defaults(func=_matrix_report)

    diff_parser = sub.add_parser(
        "diff", help="compare two sweep reports; exit 1 on outcome drift"
    )
    diff_parser.add_argument("baseline", help="baseline sweep report (JSON)")
    diff_parser.add_argument("current", help="current sweep report (JSON)")
    diff_parser.set_defaults(func=_matrix_diff)

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 0) < 0:
        return _fail("--jobs must be >= 0")
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("matrix: interrupted", file=sys.stderr)
        return 130


def score_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-score``."""
    parser = argparse.ArgumentParser(
        prog="repro-score",
        description="CWE/CAPEC risk scoring with dependency-graph "
        "blast-radius propagation (see docs/SCORING.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(sub_parser):
        sub_parser.add_argument(
            "packages",
            nargs="?",
            default="corpus/packages",
            help="package corpus directory (default: corpus/packages)",
        )
        sub_parser.add_argument(
            "--demo",
            action="store_true",
            help="score the built-in demo graph instead of a directory",
        )
        sub_parser.add_argument(
            "--attenuation",
            type=float,
            default=0.5,
            help="depth attenuation for propagated score (default: 0.5)",
        )
        sub_parser.add_argument(
            "--jobs",
            type=int,
            default=0,
            metavar="N",
            help="fan package scoring over N service workers; "
            "0 = in-process sequential (default: 0)",
        )
        sub_parser.add_argument(
            "--backend",
            choices=("thread", "process"),
            default="thread",
            help="service worker backend (default: thread)",
        )
        sub_parser.add_argument(
            "--json",
            action="store_true",
            help="emit the byte-stable JSON report",
        )

    score_parser = sub.add_parser(
        "score", help="per-package risks with CWE/CAPEC attribution"
    )
    add_common(score_parser)
    score_parser.set_defaults(func=_score_score)

    rank_parser = sub.add_parser(
        "rank", help="corpus ranking by propagated blast radius"
    )
    add_common(rank_parser)
    rank_parser.add_argument(
        "--top", type=int, default=0, help="show only the top N packages"
    )
    rank_parser.add_argument("--out", help="write the report to a file")
    rank_parser.set_defaults(func=_score_rank)

    diff_parser = sub.add_parser(
        "diff", help="compare two saved JSON score reports"
    )
    diff_parser.add_argument("before", help="baseline score report (JSON)")
    diff_parser.add_argument("after", help="new score report (JSON)")
    diff_parser.set_defaults(func=_score_diff)

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 0) < 0:
        return _fail("--jobs must be >= 0")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - manual entry
    sys.exit(attacks_main())

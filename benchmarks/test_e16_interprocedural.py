"""E16 (extension) — interprocedural precision ablation.

The paper frames the hard case explicitly (§3.3/§5.1): the data-flow
path from the attacker to the placement site may be *inter-procedural*,
and a placement often sees only a bare pointer.  This experiment
measures what bounded call-inlining buys the detector: helper-mediated
placements go from an info-grade "unknown arena" to a decided verdict.
"""

from repro.analysis import Severity, parse
from repro.analysis.detector import PlacementNewDetector
from repro.workloads.corpus import INTERPROC_CORPUS

from conftest import print_table


def run_experiment():
    rows = []
    outcomes = {}
    for program in INTERPROC_CORPUS:
        inter = PlacementNewDetector(
            parse(program.source), interprocedural=True
        ).analyze()
        intra = PlacementNewDetector(
            parse(program.source), interprocedural=False
        ).analyze()
        outcomes[program.key] = (inter, intra)
        rows.append(
            (
                program.key,
                "FLAGGED" if intra.flagged else "-",
                "FLAGGED" if inter.flagged else "-",
                ", ".join(sorted(r for r in inter.rules_fired() if r != "PN-UNKNOWN-ARENA")) or "-",
            )
        )
    print_table(
        "E16: intra-only vs interprocedural detection",
        ["program", "intra-only", "interprocedural", "decided rules"],
        rows,
    )
    return outcomes


def test_e16_shape(benchmark):
    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    inter_helper, intra_helper = outcomes["interproc-helper-placement"]
    # Interprocedural analysis decides what intra-only could not.
    assert inter_helper.flagged
    assert not intra_helper.flagged
    assert "PN-OVERSIZE" in inter_helper.rules_fired()
    # The safe helper stays clean in both modes (no precision-for-noise
    # trade).
    inter_safe, intra_safe = outcomes["interproc-safe-helper"]
    assert not inter_safe.at_least(Severity.WARNING)
    assert not intra_safe.at_least(Severity.WARNING)

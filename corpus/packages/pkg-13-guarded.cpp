// package: pkg-13-guarded
// imports: pkg-01-leak, pkg-07-leak
class Small { public: short f0; float f1; short f2; short f3; };
class Big : public Small { public: char g0; };
void run() {
  Big arena;
  if (sizeof(Small) <= sizeof(Big)) {
    Small *p = new (&arena) Small();
  }
}

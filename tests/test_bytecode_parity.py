"""The engine parity gate: the bytecode VM must agree with the AST
interpreter on every committed corpus — verdicts, triage, events, step
counts — with zero drift.  This is the tier-1 contract that lets the
fuzzing stack trust the fast engine.
"""

from pathlib import Path

import pytest

from repro.execution import run_source
from repro.execution.vm import BytecodeVM, compiled_for, reset_cache
from repro.fuzz import OracleConfig, run_oracles
from repro.fuzz.seeds import seed_inputs
from repro.regress import RegressionStore, replay_store
from repro.runtime import Machine

REPO = Path(__file__).resolve().parent.parent
REGRESS_DIR = REPO / "corpus" / "regress"
PACKAGES_DIR = REPO / "corpus" / "packages"


def _package_sources():
    return sorted(PACKAGES_DIR.glob("*.cpp"))


def _regress_bundles():
    store = RegressionStore(REGRESS_DIR, create=False)
    return [store.load(bundle_id) for bundle_id in store.ids()]


def _run_engines(source, stdin=()):
    """One (outcome, events) observation per engine, exceptions included."""

    def run_one(use_vm):
        machine = Machine()
        try:
            if use_vm:
                compiled, note = compiled_for(source)
                assert compiled is not None, f"not compilable: {note}"
                executor = BytecodeVM(compiled, machine=machine)
                if stdin:
                    machine.stdin.feed(*stdin)
                outcome = executor.run("main", 0, 0)
            else:
                executor, outcome = run_source(
                    source, machine=machine, stdin=stdin
                )
            return (
                "ok",
                outcome.return_value,
                outcome.steps,
                tuple(executor.outputs),
                tuple(executor.stored),
                outcome.frame_exit is not None and outcome.frame_exit.hijacked,
                tuple(machine.events),
            )
        except Exception as error:
            return ("exc", type(error).__name__, str(error), tuple(machine.events))

    return run_one(False), run_one(True)


class TestPackageCorpusParity:
    """Every committed package runs identically on both engines."""

    @pytest.mark.parametrize(
        "path", _package_sources(), ids=lambda p: p.stem
    )
    def test_package_zero_drift(self, path):
        source = path.read_text()
        ast_run, vm_run = _run_engines(source)
        assert ast_run == vm_run


class TestRegressCorpusParity:
    """The whole committed regression store replays with zero drift
    under the both-engine oracle — verdict, fingerprint, and triage."""

    def test_both_engine_sweep_is_clean(self):
        reset_cache()
        store = RegressionStore(REGRESS_DIR, create=False)
        drift = replay_store(store, engine="both")
        assert drift.clean, drift.render()
        assert drift.counts() == {"ok": len(store.ids())}

    def test_bundles_agree_per_oracle_verdict(self):
        config_ast = OracleConfig(engine="ast")
        config_vm = OracleConfig(engine="bytecode")
        for bundle in _regress_bundles():
            on_ast = run_oracles(bundle.source, bundle.stdin, config_ast)
            on_vm = run_oracles(bundle.source, bundle.stdin, config_vm)
            assert on_ast.valid == on_vm.valid
            assert on_ast.dynamic.events == on_vm.dynamic.events
            assert on_ast.dynamic.fault == on_vm.dynamic.fault
            assert on_ast.divergence_kind == on_vm.divergence_kind
            # Nothing silently fell back to the interpreter.
            assert on_vm.dynamic.engine_note == ""


class TestSeedFamilyParity:
    """Every generator seed family (both ground-truth labels) agrees."""

    @pytest.mark.parametrize(
        "fuzz_input",
        seed_inputs(20260808),
        ids=lambda i: f"{i.family or 'corpus'}-{i.label or 'x'}",
    )
    def test_seed_zero_drift(self, fuzz_input):
        ast_run, vm_run = _run_engines(fuzz_input.source, fuzz_input.stdin)
        assert ast_run == vm_run


class TestCorpusCompiles:
    """The committed corpora never take the slow-path fallback: the
    compiler handles every construct the corpus exercises."""

    def test_no_fallbacks_across_corpora(self):
        reset_cache()
        sources = [path.read_text() for path in _package_sources()]
        sources += [bundle.source for bundle in _regress_bundles()]
        for source in sources:
            compiled, note = compiled_for(source)
            assert compiled is not None and note == "", note


def test_repo_corpora_exist():
    # The gate above is vacuous if the corpus dirs move; fail loudly.
    assert _package_sources(), "corpus/packages is empty or missing"
    assert (REGRESS_DIR / "").exists() and list(REGRESS_DIR.glob("*.json"))

"""The simulated victim process runtime.

A :class:`Machine` is one process: segments, heap, stack, text image,
canary source, scripted stdin.  Frames (:mod:`frames`) reproduce the gcc
stack discipline whose layout the paper's stack attacks index into;
:mod:`shellcode` interprets injected payloads; :mod:`control_flow`
classifies where hijacked control ended up.
"""

from .canary import TERMINATOR_CANARY, CanaryCheck, CanaryPolicy, CanarySource
from .control_flow import ExecutionKind, ExecutionResult, FrameExit
from .frames import INITIAL_FRAME_POINTER, CallFrame, FrameSlots
from .functions import CALLER_SYMBOL, install_standard_library
from .io import FileSystem, SimulatedFile, SimulatedStdin, password_file
from .machine import GlobalVar, Machine, MachineConfig
from .shellcode import (
    MAX_STEPS,
    OP_NOP,
    OP_PUSH,
    OP_RET,
    OP_SYSCALL,
    ShellcodeResult,
    assemble,
    interpret,
    spawn_shell_payload,
)

__all__ = [
    "CALLER_SYMBOL",
    "CallFrame",
    "CanaryCheck",
    "CanaryPolicy",
    "CanarySource",
    "ExecutionKind",
    "ExecutionResult",
    "FileSystem",
    "FrameExit",
    "FrameSlots",
    "GlobalVar",
    "INITIAL_FRAME_POINTER",
    "Machine",
    "MachineConfig",
    "MAX_STEPS",
    "OP_NOP",
    "OP_PUSH",
    "OP_RET",
    "OP_SYSCALL",
    "ShellcodeResult",
    "SimulatedFile",
    "SimulatedStdin",
    "TERMINATOR_CANARY",
    "assemble",
    "install_standard_library",
    "interpret",
    "password_file",
    "spawn_shell_payload",
]

"""Integration tests: information leaks, DoS, and memory leaks (§4.3–4.5)."""


from repro.attacks import (
    SANITIZE,
    UNPROTECTED,
    ArrayInfoLeakAttack,
    AuthBypassAttack,
    DosLoopAttack,
    MemoryLeakAttack,
    ObjectInfoLeakAttack,
    ResourceExhaustionAttack,
    TrackedLeakMeasurement,
)
from repro.defenses import run_leak_comparison


class TestInfoLeaks:
    """Listings 21–22."""

    def test_array_leak_ships_password_bytes(self):
        result = ArrayInfoLeakAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["leaked_bytes"] > 100
        assert result.detail["contains_password_hash"]

    def test_leak_shrinks_with_longer_userdata(self):
        short = ArrayInfoLeakAttack(userdata="ab").run(UNPROTECTED)
        long = ArrayInfoLeakAttack(userdata="a" * 200).run(UNPROTECTED)
        assert short.detail["leaked_bytes"] > long.detail["leaked_bytes"]

    def test_sanitize_on_reuse_stops_array_leak(self):
        result = ArrayInfoLeakAttack().run(SANITIZE)
        assert not result.succeeded
        assert result.detail["leaked_bytes"] == 0

    def test_object_leak_ships_ssn(self):
        result = ObjectInfoLeakAttack(ssn=(111, 22, 3333)).run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["leaked_ssn"] == [111, 22, 3333]

    def test_sanitize_on_reuse_stops_object_leak(self):
        result = ObjectInfoLeakAttack().run(SANITIZE)
        assert not result.succeeded


class TestDoS:
    """Section 4.4."""

    def test_loop_inflation_times_out(self):
        result = DosLoopAttack(budget=10_000).run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["outcome"] == "request timed out"
        assert result.detail["loop_bound"] > 10_000

    def test_honest_bound_serves_request(self):
        attack = DosLoopAttack(injected_n=3)
        result = attack.run(UNPROTECTED)
        # n is overwritten with 3 — small, so the request is served;
        # the *mechanism* (overwrite) still worked.
        assert result.detail["loop_bound"] == 3
        assert not result.succeeded

    def test_auth_bypass_skips_all_checks(self):
        result = AuthBypassAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["checks_run"] == 0
        assert result.detail["checks_expected"] == 5

    def test_resource_exhaustion_reaches_oom(self):
        result = ResourceExhaustionAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["allocations_before_oom"] > 0


class TestMemoryLeak:
    """Listing 23."""

    def test_leak_per_iteration_is_size_difference(self):
        result = TrackedLeakMeasurement(iterations=20).run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["leak_per_iteration"] == 16  # 32 - 16
        assert result.detail["total_leaked"] == 20 * 16
        assert result.detail["uniform"]

    def test_leak_attack_accumulates(self):
        result = MemoryLeakAttack(iterations=50).run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["total_leaked"] == 50 * 16

    def test_exhaustion_variant_kills_heap(self):
        result = MemoryLeakAttack(until_exhaustion=True).run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["heap_exhausted"]

    def test_leak_discipline_comparison(self):
        outcomes = {o.discipline: o for o in run_leak_comparison(iterations=30)}
        leaky = outcomes["as-written (Listing 23)"]
        owner = outcomes["arena-owner protocol"]
        assert leaky.leaked_bytes == 30 * 16
        assert owner.leaked_bytes == 0
        assert outcomes["equal-size-only"].leaked_bytes == 0
        assert outcomes["equal-size-only"].refused == 30

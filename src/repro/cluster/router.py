"""The cluster router: ring assignment, tiered cache, failover.

Every job takes the same deterministic path: its content-hash key is
assigned to an owner shard by the consistent-hash ring; cacheable jobs
consult the tiered cache (owner mem → disk → ring-successor peer)
before any compute; misses run on the owner.  A shard that dies with
work in flight raises :class:`~repro.cluster.shard.ShardLost`, the
router removes it from the ring, and the job is *re-dispatched* to the
key's new owner — which is exactly the ring successor, so failover and
cache-peer locality are the same mechanism.

Because job results are pure functions of their payloads and sweeps
gather results in submission order, report bytes are identical at any
shard count, with any shard killed mid-sweep, on every run — the
cluster's equivalent of the scheduler's determinism rule.

The dispatch seam honors :data:`~repro.service.faults.CLUSTER_FAULTS`:
a ``shard-crash`` rule kills the owner before dispatch (exercising the
failover path on demand); a ``partition`` rule makes the owner
unreachable for one request, routing it to the ring successor instead.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Sequence

from ..service.faults import CLUSTER_FAULTS, FaultKind, FaultPlan, fault_plan_from
from ..service.jobs import Job
from ..service.metrics import MetricsRegistry, render_prometheus
from .cache import TieredCache
from .ring import HashRing
from .shard import DRAINING, InProcessShard, ShardLost, SubprocessShard


class ClusterError(RuntimeError):
    """The cluster cannot serve the request (no live shards)."""


class ClusterRouter:
    """Routes jobs over the ring; owns shard lifecycle and accounting."""

    def __init__(
        self,
        shards: Sequence = (),
        vnodes: int = 64,
        fault_plan: "FaultPlan | str | None" = None,
        max_redispatch: int = 8,
    ):
        self.metrics = MetricsRegistry()
        self.ring = HashRing(vnodes=vnodes)
        self.shards: Dict[str, object] = {}
        self.fault_plan = fault_plan_from(fault_plan)
        self.cache = TieredCache(self.metrics)
        self.max_redispatch = max_redispatch
        self._lock = asyncio.Lock()  # guards ring/shard-map mutation
        for shard in shards:
            self.shards[shard.shard_id] = shard
            self.ring.add(shard.shard_id)
        self._update_live_gauge()

    def _update_live_gauge(self) -> None:
        self.metrics.gauge("cluster.shards_live").set(len(self.ring))

    # -- topology ----------------------------------------------------------

    def add_shard(self, shard) -> None:
        """Join a shard; ~K/N keys remap onto it, the rest stay put."""
        if shard.shard_id in self.shards:
            raise ValueError(f"shard '{shard.shard_id}' already present")
        self.shards[shard.shard_id] = shard
        self.ring.add(shard.shard_id)
        self._update_live_gauge()

    def kill_shard(self, shard_id: str) -> None:
        """Crash a shard: its in-flight work is lost and re-dispatched."""
        shard = self.shards.get(shard_id)
        if shard is None:
            raise KeyError(f"no shard '{shard_id}'")
        shard.kill()
        self._detach(shard_id)
        self.metrics.counter("cluster.shards_killed").inc()

    def _detach(self, shard_id: str) -> None:
        if shard_id in self.ring:
            self.ring.remove(shard_id)
            self.metrics.counter("cluster.shards_lost").inc()
            self._update_live_gauge()

    async def drain_shard(self, shard_id: str, poll: float = 0.01) -> dict:
        """Gracefully remove a shard: new keys remap, its queue finishes.

        The shard leaves the ring immediately (so nothing new routes to
        it) but keeps running everything it already accepted; this
        coroutine resolves once its in-flight count hits zero.
        """
        shard = self.shards.get(shard_id)
        if shard is None:
            raise KeyError(f"no shard '{shard_id}'")
        shard.start_drain()
        if shard_id in self.ring:
            self.ring.remove(shard_id)
            self._update_live_gauge()
        while shard.inflight > 0:
            await asyncio.sleep(poll)
        self.metrics.counter("cluster.shards_drained").inc()
        return shard.describe()

    # -- dispatch ----------------------------------------------------------

    def _live_shard(self, shard_id: Optional[str]):
        if shard_id is None:
            return None
        shard = self.shards.get(shard_id)
        if shard is None or shard.state == "dead":
            return None
        return shard

    async def submit_job(self, job: Job) -> dict:
        """Run one job to a result, surviving shard loss and partitions."""
        key = job.key()
        self.metrics.counter("cluster.jobs_routed").inc()
        for _ in range(self.max_redispatch + 1):
            async with self._lock:
                if not len(self.ring):
                    raise ClusterError("no live shards on the ring")
                owner_id = self.ring.assign(key)
                peer_id = self.ring.successor(key, exclude=owner_id)
                rule = (
                    self.fault_plan.activate(
                        CLUSTER_FAULTS, job_kind=job.KIND, key=key
                    )
                    if self.fault_plan is not None
                    else None
                )
                if rule is not None and rule.kind is FaultKind.SHARD_CRASH:
                    shard = self.shards[owner_id]
                    shard.kill()
                    self._detach(owner_id)
                    self.metrics.counter("cluster.shards_killed").inc()
                    continue  # re-assign under the new topology
            owner = self._live_shard(owner_id)
            if owner is None:
                async with self._lock:
                    self._detach(owner_id)
                continue
            target = owner
            if rule is not None and rule.kind is FaultKind.PARTITION:
                self.metrics.counter("cluster.partitions").inc()
                fallback = self._live_shard(peer_id)
                if fallback is not None:
                    target = fallback
            if job.CACHEABLE and target is owner:
                peer = self._live_shard(peer_id)
                cached = await self.cache.lookup(key, owner, peer)
                if cached is not None:
                    self.metrics.counter("cluster.jobs_completed").inc()
                    return cached
            try:
                result = await target.run_job(job)
            except ShardLost:
                async with self._lock:
                    self._detach(target.shard_id)
                if target.state != DRAINING:
                    # a drain refusal is a routing race, not a loss
                    self.metrics.counter("cluster.redispatches").inc()
                continue
            if job.CACHEABLE and target is not owner and owner.state != "dead":
                # a rerouted compute still warms the key's true owner
                await self.cache.store(key, result, owner)
            self.metrics.counter("cluster.jobs_completed").inc()
            return result
        raise ClusterError(
            f"job {key} could not be placed after "
            f"{self.max_redispatch + 1} dispatch attempts"
        )

    async def sweep(self, jobs: Iterable[Job]) -> List[dict]:
        """Run many jobs concurrently, results in submission order.

        ``asyncio.gather`` preserves argument order regardless of
        completion order, so sweep reports are byte-identical at any
        shard count — including runs where a shard dies mid-sweep and
        its jobs re-dispatch.
        """
        return list(await asyncio.gather(*(self.submit_job(job) for job in jobs)))

    # -- introspection -----------------------------------------------------

    def topology(self) -> dict:
        """Ring + shard state for ``GET /cluster``."""
        return {
            "ring": self.ring.describe(),
            "shards": {
                shard_id: shard.describe()
                for shard_id, shard in sorted(self.shards.items())
            },
        }

    async def metrics_document(self) -> dict:
        """Cluster counters plus every live shard's own snapshot."""
        document = self.metrics.snapshot()
        document["tiers"] = self.cache.stats()
        document["shards"] = {}
        for shard_id, shard in sorted(self.shards.items()):
            if shard.state == "dead":
                document["shards"][shard_id] = {"state": "dead"}
                continue
            try:
                document["shards"][shard_id] = await shard.metrics_snapshot()
            except (ShardLost, OSError, asyncio.IncompleteReadError):
                document["shards"][shard_id] = {"state": "unreachable"}
        return document

    async def metrics_prometheus(self) -> str:
        """One scrape covering the router and every live shard.

        The router's own samples carry ``shard_id="router"``; shard
        samples carry their own ids.  ``# TYPE`` lines are emitted once
        (by the router render and the first shard render) so the
        concatenation stays a valid exposition document.
        """
        snapshot = self.metrics.snapshot()
        # counter names already carry the cluster. prefix; the shared
        # "repro" namespace keeps them as repro_cluster_*
        parts = [
            render_prometheus(snapshot, labels={"shard_id": "router"})
        ]
        first = True
        for shard_id, shard in sorted(self.shards.items()):
            if shard.state == "dead":
                continue
            try:
                parts.append(await shard.metrics_prometheus(emit_types=first))
                first = False
            except (ShardLost, OSError, asyncio.IncompleteReadError):
                continue
        return "".join(parts)

    async def close(self) -> None:
        for shard in self.shards.values():
            await shard.close()


async def build_shards(
    count: int,
    mode: str = "inprocess",
    workers: int = 2,
    backend: str = "thread",
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    fault_plan=None,
    prefix: str = "s",
) -> List:
    """``count`` started shards named ``<prefix>0..<prefix>N-1``.

    ``mode`` picks the implementation: ``"inprocess"`` engines for
    tests and the default CLI, ``"subprocess"`` child ``repro-serve``
    processes for deployment-shaped runs.  Subprocess shards cannot
    honor an in-memory fault plan; pass fault specs to the child
    processes instead if needed.
    """
    shards: List = []
    if mode == "inprocess":
        for index in range(count):
            shards.append(
                InProcessShard(
                    f"{prefix}{index}",
                    workers=workers,
                    backend=backend,
                    cache_dir=cache_dir,
                    use_cache=use_cache,
                    fault_plan=fault_plan,
                )
            )
        return shards
    if mode != "subprocess":
        raise ValueError(f"unknown shard mode '{mode}'")
    shards = [
        SubprocessShard(
            f"{prefix}{index}",
            workers=workers,
            backend=backend,
            cache_dir=cache_dir,
            use_cache=use_cache,
        )
        for index in range(count)
    ]
    started: List = []
    try:
        for shard in shards:
            await shard.start()
            started.append(shard)
    except Exception:
        for shard in started:
            await shard.close()
        raise
    return shards

"""Tests for the MiniC++ lexer and parser."""

import pytest

from repro.analysis import TokenKind, parse, tokenize
from repro.analysis import ast_nodes as ast
from repro.errors import ParseError
from repro.workloads.corpus import FULL_CORPUS


class TestLexer:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("class Student int x")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds[0] == (TokenKind.KEYWORD, "class")
        assert kinds[1] == (TokenKind.IDENT, "Student")
        assert kinds[2] == (TokenKind.IDENT, "int")

    def test_numbers(self):
        tokens = tokenize("42 3.14 0x1F")
        assert tokens[0].kind is TokenKind.NUMBER and tokens[0].text == "42"
        assert tokens[1].kind is TokenKind.FLOAT
        assert int(tokens[2].text, 0) == 31

    def test_multichar_operators(self):
        tokens = tokenize("a->b >> c :: ++d")
        ops = [t.text for t in tokens if t.kind is TokenKind.OP]
        assert "->" in ops and ">>" in ops and "::" in ops and "++" in ops

    def test_comments_skipped(self):
        tokens = tokenize("a // line comment\n/* block */ b")
        idents = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert idents == ["a", "b"]

    def test_string_and_char_literals(self):
        tokens = tokenize('"hello" \'x\'')
        assert tokens[0].kind is TokenKind.STRING and tokens[0].text == "hello"
        assert tokens[1].kind is TokenKind.CHARLIT

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_unterminated_string_rejected(self):
        with pytest.raises(ParseError):
            tokenize('"never closed')

    def test_preprocessor_skipped(self):
        tokens = tokenize("#include <iostream>\nint x;")
        assert tokens[0].text == "int"


class TestParserClasses:
    def test_class_with_inheritance(self):
        program = parse(
            "class A { public: int x; };"
            "class B : public A { public: int y[3]; };"
        )
        b = program.class_decl("B")
        assert b.bases == ("A",)
        assert b.fields[0].type.is_array

    def test_virtual_method(self):
        program = parse(
            "class A { public: virtual char* info(); double d; };"
        )
        a = program.class_decl("A")
        assert a.has_virtual
        assert a.methods[0].name == "info"

    def test_constructor_with_initializer_list(self):
        program = parse(
            "class S { public: S():gpa(0.0), year(0) { } double gpa; int year; };"
        )
        s = program.class_decl("S")
        assert s.methods[0].name == "S"

    def test_multi_declarator_fields(self):
        program = parse("class S { public: int year, semester; };")
        assert [f.name for f in program.class_decl("S").fields] == [
            "year",
            "semester",
        ]

    def test_method_with_body(self):
        program = parse(
            "class M { public: int s; void f(int *p) { s = 1; } };"
        )
        method = program.class_decl("M").methods[0]
        assert method.body is not None
        assert isinstance(method.body.statements[0], ast.Assign)


class TestParserStatements:
    def _body(self, code: str) -> ast.Block:
        program = parse(f"void f(int a, char *p) {{ {code} }}")
        return program.function("f").body

    def test_placement_new_object(self):
        body = self._body("int x; int *q = new (&x) int(5);")
        decl = body.statements[1]
        assert isinstance(decl.init, ast.NewExpr)
        assert decl.init.is_placement
        assert not decl.init.is_array

    def test_placement_new_array(self):
        body = self._body("char buf[8]; char *q = new (buf) char[20];")
        new_expr = body.statements[1].init
        assert new_expr.is_placement and new_expr.is_array

    def test_plain_new(self):
        body = self._body("int *q = new int[4];")
        new_expr = body.statements[0].init
        assert not new_expr.is_placement and new_expr.is_array

    def test_cin_chain(self):
        body = self._body("int x; int y; cin >> x >> y;")
        cin = body.statements[2]
        assert isinstance(cin, ast.CinRead)
        assert len(cin.targets) == 2

    def test_cout_chain(self):
        body = self._body('cout << "hi" << a << endl;')
        cout = body.statements[0]
        assert isinstance(cout, ast.CoutWrite)
        assert len(cout.values) == 2

    def test_if_else(self):
        body = self._body("if (a > 0) { a = 1; } else { a = 2; }")
        stmt = body.statements[0]
        assert isinstance(stmt, ast.If)
        assert stmt.else_body is not None

    def test_while_with_prefix_increment(self):
        body = self._body("int i = -1; while (++i < 3) { a = i; }")
        loop = body.statements[1]
        assert isinstance(loop, ast.While)
        assert isinstance(loop.cond, ast.Binary)
        assert isinstance(loop.cond.left, ast.Unary)

    def test_for_loop(self):
        body = self._body("for (int i = 0; i < 5; ++i) { a = i; }")
        loop = body.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)

    def test_delete_array(self):
        body = self._body("delete [] p;")
        stmt = body.statements[0]
        assert isinstance(stmt, ast.DeleteStmt) and stmt.is_array

    def test_member_arrow_index(self):
        body = self._body("a = q->ssn[2];")
        value = body.statements[0].value
        assert isinstance(value, ast.Index)
        assert isinstance(value.base, ast.Member)
        assert value.base.arrow

    def test_sizeof_type_and_expr(self):
        body = self._body("a = sizeof(int); a = sizeof(a);")
        first = body.statements[0].value
        second = body.statements[1].value
        assert first.type_name == "int"
        assert second.expr is not None

    def test_address_of(self):
        body = self._body("int x; int *q = new (&x) int;")
        placement = body.statements[1].init.placement
        assert isinstance(placement, ast.Unary) and placement.op == "&"

    def test_compound_assign_desugars(self):
        body = self._body("a += 2;")
        stmt = body.statements[0]
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.value, ast.Binary) and stmt.value.op == "+"

    def test_parse_error_reports_location(self):
        with pytest.raises(ParseError):
            parse("void f( {")


class TestCorpusParses:
    @pytest.mark.parametrize("program", FULL_CORPUS, ids=lambda p: p.key)
    def test_parses(self, program):
        parsed = parse(program.source)
        assert parsed.functions or parsed.classes

    def test_walk_expressions_finds_placements(self):
        from repro.workloads.corpus import LISTING_11

        program = parse(LISTING_11.source)
        fn = program.function("addStudent")
        news = [
            e
            for e in ast.walk_expressions(fn.body)
            if isinstance(e, ast.NewExpr) and e.is_placement
        ]
        assert len(news) == 2

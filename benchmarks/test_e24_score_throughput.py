"""E24 — risk-scoring throughput: packages scored per second.

Scoring a package runs the full detector plus the legacy scanner and
maps every finding through the threat registry, then propagation walks
the dependency closure of each package, so corpus scoring throughput
tracks the analysis front end and the graph layer together.  This
experiment records ``packages_scored_per_s`` as ``extra_info`` on the
benchmark record so the BENCH trajectory can follow scoring economics
over time, and checks the service fan-out agrees with the sequential
path byte-for-byte.
"""

from conftest import print_table

from repro.score import generated_package_graph, score_graph
from repro.service import ServiceEngine

SEED = 2026
PACKAGES = 48
WORKERS = 4


def test_e24_sequential_scoring_rate(benchmark):
    """Throughput of the in-process analyze→map→propagate pipeline."""
    graph = generated_package_graph(SEED, PACKAGES)

    score = benchmark.pedantic(score_graph, args=(graph,), rounds=1)

    elapsed = benchmark.stats.stats.mean
    packages_per_s = PACKAGES / elapsed if elapsed else 0.0
    totals = score.totals
    benchmark.extra_info["packages"] = totals["packages"]
    benchmark.extra_info["packages_scored_per_s"] = round(packages_per_s, 2)
    benchmark.extra_info["flawed_packages"] = totals["flawed_packages"]
    benchmark.extra_info["max_blast_radius"] = totals["max_blast_radius"]
    print_table(
        f"E24 sequential corpus scoring (seed {SEED}, {PACKAGES} packages)",
        ["metric", "value"],
        [
            ["packages", str(totals["packages"])],
            ["packages/sec", f"{packages_per_s:.1f}"],
            ["flawed", str(totals["flawed_packages"])],
            ["risks", str(totals["risks"])],
            ["max blast radius", f"{totals['max_blast_radius']:.2f}"],
        ],
    )
    assert totals["packages"] == PACKAGES
    assert totals["flawed_packages"] > 0


def test_e24_service_scoring_matches_sequential(benchmark):
    """The worker-pool fan-out changes wall-clock, never bytes."""
    graph = generated_package_graph(SEED, PACKAGES)
    sequential = score_graph(graph).to_json()

    def scored_over_pool():
        with ServiceEngine(workers=WORKERS, use_cache=False) as engine:
            return engine.score_corpus(graph)

    score = benchmark.pedantic(scored_over_pool, rounds=1)

    elapsed = benchmark.stats.stats.mean
    packages_per_s = PACKAGES / elapsed if elapsed else 0.0
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["packages_scored_per_s"] = round(packages_per_s, 2)
    print_table(
        f"E24 service corpus scoring ({WORKERS} workers)",
        ["metric", "value"],
        [
            ["packages", str(len(score.packages))],
            ["packages/sec", f"{packages_per_s:.1f}"],
        ],
    )
    assert score.to_json() == sequential

"""Simulated I/O: the attacker's keyboard and the victim's files.

Every interactive attack in the paper reads member values from ``cin``
(``cin >> st->ssn[0]`` …); :class:`SimulatedStdin` replays a scripted
attacker input stream deterministically.  :class:`SimulatedFile` stands
in for the password file of Listing 21 and friends.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Union

from ..errors import ApiMisuseError

Token = Union[int, float, str]


class SimulatedStdin:
    """A scripted ``cin``: a queue of tokens the program extracts."""

    def __init__(self, tokens: Iterable[Token] = ()) -> None:
        self._tokens: deque[Token] = deque(tokens)
        self._consumed: list[Token] = []

    def feed(self, *tokens: Token) -> None:
        """Append attacker-chosen tokens to the stream."""
        self._tokens.extend(tokens)

    def _next(self) -> Token:
        if not self._tokens:
            raise ApiMisuseError("simulated stdin exhausted")
        token = self._tokens.popleft()
        self._consumed.append(token)
        return token

    def read_int(self) -> int:
        """``cin >> some_int``."""
        token = self._next()
        try:
            return int(token)
        except (TypeError, ValueError):
            raise ApiMisuseError(f"stdin token {token!r} is not an int") from None

    def read_double(self) -> float:
        """``cin >> some_double``."""
        token = self._next()
        try:
            return float(token)
        except (TypeError, ValueError):
            raise ApiMisuseError(f"stdin token {token!r} is not a double") from None

    def read_string(self) -> str:
        """``cin >> some_string`` (whitespace-free token)."""
        return str(self._next())

    @property
    def remaining(self) -> int:
        """Tokens not yet consumed."""
        return len(self._tokens)

    @property
    def consumed(self) -> tuple[Token, ...]:
        """Tokens the program has read so far."""
        return tuple(self._consumed)


class SimulatedFile:
    """An in-memory file the simulated program can read or mmap."""

    def __init__(self, name: str, content: bytes) -> None:
        self.name = name
        self._content = bytes(content)

    @property
    def content(self) -> bytes:
        """The full file contents."""
        return self._content

    def read(self, count: int | None = None) -> bytes:
        """Read up to ``count`` bytes from the start (stateless)."""
        if count is None:
            return self._content
        return self._content[:count]

    def __len__(self) -> int:
        return len(self._content)


def password_file(entries: int = 8) -> SimulatedFile:
    """A plausible ``/etc/passwd``-style secret for the E10 leak demo."""
    lines = []
    for index in range(entries):
        lines.append(
            f"user{index:02d}:$6$salt{index:02d}$h4shh4shh4sh{index:02d}:10{index:02d}:"
            f"100:User {index}:/home/user{index:02d}:/bin/bash"
        )
    return SimulatedFile("/etc/passwd", "\n".join(lines).encode("latin-1"))


class FileSystem:
    """A tiny name → file mapping for scenarios that open files."""

    def __init__(self) -> None:
        self._files: dict[str, SimulatedFile] = {}

    def add(self, file: SimulatedFile) -> None:
        """Register a file."""
        self._files[file.name] = file

    def open(self, name: str) -> SimulatedFile:
        """Fetch a registered file or fail like ENOENT."""
        try:
            return self._files[name]
        except KeyError:
            raise ApiMisuseError(f"no such simulated file: {name}") from None

    def exists(self, name: str) -> bool:
        """True if ``name`` is registered."""
        return name in self._files

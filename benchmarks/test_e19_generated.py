"""E19 (extension) — detector quality and throughput at scale.

The hand corpus (E13) shows the detector handles the paper's 15
listings; E19 measures it against *generated* program families with
known ground truth — precision/recall over 120 programs across four
structural shapes — and times the analyzer to characterize throughput.
"""

from repro.analysis import analyze_source
from repro.workloads.generators import generate_corpus, score_detector

from conftest import print_table

CORPUS_SIZE = 120


def run_experiment():
    programs = generate_corpus(seed=20110613, count=CORPUS_SIZE)
    score = score_detector(programs, lambda src: analyze_source(src).flagged)
    by_shape: dict = {}
    for program in programs:
        stats = by_shape.setdefault(program.shape, [0, 0])
        stats[0] += 1
        if analyze_source(program.source).flagged == program.vulnerable:
            stats[1] += 1
    rows = [
        (shape, total, correct, f"{correct / total:.0%}")
        for shape, (total, correct) in sorted(by_shape.items())
    ]
    rows.append(("TOTAL", CORPUS_SIZE, score.true_positives + score.true_negatives, ""))
    print_table(
        "E19: detector vs generated ground truth",
        ["shape", "programs", "correct", "accuracy"],
        rows,
    )
    print_table(
        "E19 totals",
        ["metric", "value"],
        [
            ("precision", f"{score.precision:.3f}"),
            ("recall", f"{score.recall:.3f}"),
            ("false positives", score.false_positives),
            ("false negatives", score.false_negatives),
        ],
    )
    return score


def test_e19_shape(benchmark):
    score = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert score.precision == 1.0
    assert score.recall == 1.0


def test_e19_analyzer_throughput(benchmark):
    programs = generate_corpus(seed=42, count=20)

    def analyze_batch():
        for program in programs:
            analyze_source(program.source)

    benchmark(analyze_batch)

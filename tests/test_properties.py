"""Property-based tests for the core overflow invariants.

These pin down the *mechanism* of the paper as laws: what an overflow
can and cannot touch, that placement never moves data it was not asked
to move, and that the checked primitive is exactly the unchecked one
minus the overflows.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import checked_placement_new, construct, placement_new
from repro.cxx import CHAR, DOUBLE, INT, make_class
from repro.errors import BoundsCheckViolation
from repro.memory import SegmentKind
from repro.runtime import Machine
from repro.workloads import make_student_classes, set_ssn

SCALARS = st.sampled_from([CHAR, INT, DOUBLE])


def _class_of(name, field_types):
    return make_class(
        name, fields=[(f"f{i}", t) for i, t in enumerate(field_types)]
    )


@settings(max_examples=30, deadline=None)
@given(
    arena_fields=st.lists(SCALARS, min_size=1, max_size=6),
    placed_fields=st.lists(SCALARS, min_size=1, max_size=6),
)
def test_placement_writes_stay_within_sizeof(arena_fields, placed_fields):
    """Constructing at an arena touches at most sizeof(placed) bytes —
    never more, never fewer than the constructor writes."""
    machine = Machine()
    arena_cls = _class_of("ArenaP", arena_fields)
    placed_cls = _class_of("PlacedP", placed_fields)
    arena = machine.static_object(arena_cls, "arena")
    guard_offset = machine.sizeof(placed_cls)
    # Paint a sentinel pattern around the placement.
    base = arena.address
    machine.space.write(base, b"\xa5" * (guard_offset + 64))
    placed = placement_new(machine, base, placed_cls)
    after = machine.space.read(base + guard_offset, 64)
    assert after == b"\xa5" * 64, "bytes beyond sizeof(placed) must be untouched"
    assert placed.size == guard_offset


@settings(max_examples=30, deadline=None)
@given(
    arena_fields=st.lists(SCALARS, min_size=1, max_size=5),
    placed_fields=st.lists(SCALARS, min_size=1, max_size=8),
)
def test_checked_equals_unchecked_when_it_fits(arena_fields, placed_fields):
    """checked_placement_new admits exactly the size-respecting subset."""
    from repro.memory import is_aligned

    machine_a = Machine()
    machine_b = Machine()
    arena_cls = _class_of("ArenaC", arena_fields)
    placed_cls = _class_of("PlacedC", placed_fields)
    arena_a = machine_a.static_object(arena_cls, "arena")
    arena_b = machine_b.static_object(arena_cls, "arena")
    # The checked primitive verifies the *address* alignment (what C++
    # actually requires), not the arena type's alignment.
    fits = machine_a.layouts.sizeof(placed_cls) <= machine_a.layouts.sizeof(
        arena_cls
    ) and is_aligned(arena_b.address, machine_a.layouts.alignof(placed_cls))
    unchecked = placement_new(machine_a, arena_a, placed_cls)
    if fits:
        checked = checked_placement_new(machine_b, arena_b, placed_cls)
        assert checked.raw_bytes() == unchecked.raw_bytes()
    else:
        with pytest.raises(BoundsCheckViolation):
            checked_placement_new(machine_b, arena_b, placed_cls)


@settings(max_examples=25, deadline=None)
@given(
    ssn=st.tuples(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
    )
)
def test_listing11_overflow_is_deterministic_reinterpretation(ssn):
    """Whatever the attacker's words, stud2's fields afterwards are
    exactly those words reinterpreted — byte-for-byte determinism."""
    from repro.memory.encoding import decode_double, encode_int

    machine = Machine()
    student_cls, grad_cls = make_student_classes()
    stud1 = machine.static_object(student_cls, "stud1")
    stud2 = machine.static_object(student_cls, "stud2")
    construct(machine, student_cls, stud2.address, 3.5, 2009, 1)
    gs = placement_new(machine, stud1, grad_cls)
    set_ssn(gs, *ssn)
    expected_gpa = decode_double(encode_int(ssn[0], 4) + encode_int(ssn[1], 4))
    got = stud2.get("gpa")
    assert got == expected_gpa or (got != got and expected_gpa != expected_gpa)
    assert stud2.get("year") == ssn[2]
    assert stud2.get("semester") == 1  # one word past the overflow: untouched


@settings(max_examples=25, deadline=None)
@given(
    pool_size=st.integers(min_value=8, max_value=128),
    reserve=st.integers(min_value=1, max_value=512),
)
def test_pool_oversize_accounting(pool_size, reserve):
    """A pool reports an oversize placement iff the bump ran past its
    capacity — the exact condition the two-step attack abuses."""
    from repro.memory import MemoryPool

    machine = Machine()
    base = machine.space.segment(SegmentKind.BSS).base
    pool = MemoryPool(machine.space, base, pool_size)
    pool.reserve(reserve)
    assert pool.stats.oversize_placements == (1 if reserve > pool_size else 0)


@settings(max_examples=20, deadline=None)
@given(iterations=st.integers(min_value=1, max_value=40))
def test_leak_law(iterations):
    """Listing 23's law: leaked bytes == iterations × (size delta)."""
    from repro.core import new_object

    machine = Machine()
    student_cls, grad_cls = make_student_classes()
    delta = machine.sizeof(grad_cls) - machine.sizeof(student_cls)
    for _ in range(iterations):
        arena = new_object(machine, grad_cls)
        placement_new(machine, arena.address, student_cls)
        machine.tracker.mark_freed(arena.address)
        machine.heap.free(arena.address)
    assert machine.tracker.leaked_bytes == iterations * delta


@settings(max_examples=20, deadline=None)
@given(
    secret=st.binary(min_size=16, max_size=64),
    user_len=st.integers(min_value=1, max_value=63),
)
def test_info_leak_residue_law(secret, user_len):
    """Residue after a shorter write == the secret's untouched suffix."""
    assume(user_len < len(secret))
    machine = Machine()
    base = machine.space.segment(SegmentKind.BSS).base
    machine.space.write(base, secret)
    machine.space.write(base, b"u" * user_len)
    residue = machine.space.read(base + user_len, len(secret) - user_len)
    assert residue == secret[user_len:]

"""Tests for the boundary-tag heap allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ApiMisuseError, DoubleFree, InvalidFree, OutOfMemory
from repro.memory import HEADER_SIZE, AddressSpace, HeapAllocator, SegmentKind


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def heap(space):
    return HeapAllocator(space)


class TestAllocate:
    def test_returns_payload_inside_heap(self, space, heap):
        address = heap.allocate(32)
        segment = space.segment(SegmentKind.HEAP)
        assert segment.contains(address, 32)

    def test_payloads_are_8_aligned(self, heap):
        for size in (1, 7, 13, 100):
            assert heap.allocate(size) % 8 == 0

    def test_sequential_allocations_do_not_overlap(self, heap):
        a = heap.allocate(16)
        b = heap.allocate(16)
        assert abs(a - b) >= 16 + HEADER_SIZE

    def test_adjacent_layout_header_between_payloads(self, heap):
        # Listing 12 relies on a heap object's neighbour being reachable
        # by a small overflow: payloads are separated by one header.
        a = heap.allocate(16)
        b = heap.allocate(16)
        assert b == a + 16 + HEADER_SIZE

    def test_zero_size_rejected(self, heap):
        with pytest.raises(ApiMisuseError):
            heap.allocate(0)

    def test_exhaustion_raises_oom(self, heap):
        with pytest.raises(OutOfMemory):
            heap.allocate(10**9)

    def test_many_small_until_oom(self, heap):
        count = 0
        with pytest.raises(OutOfMemory):
            while True:
                heap.allocate(4096)
                count += 1
        assert count > 10


class TestFree:
    def test_free_then_reuse(self, heap):
        a = heap.allocate(64)
        heap.free(a)
        b = heap.allocate(64)
        assert b == a  # first-fit reuses the freed block

    def test_double_free_detected(self, heap):
        a = heap.allocate(32)
        heap.free(a)
        with pytest.raises(DoubleFree):
            heap.free(a)

    def test_wild_free_detected(self, heap, space):
        with pytest.raises(InvalidFree):
            heap.free(space.segment(SegmentKind.HEAP).base + 1024)

    def test_unmapped_free_detected(self, heap):
        with pytest.raises(InvalidFree):
            heap.free(0x1000)

    def test_coalescing_restores_large_block(self, heap):
        before = heap.largest_free_block()
        blocks = [heap.allocate(1000) for _ in range(8)]
        for block in blocks:
            heap.free(block)
        assert heap.largest_free_block() == before

    def test_bytes_in_use_accounting(self, heap):
        assert heap.bytes_in_use == 0
        a = heap.allocate(100)
        used = heap.bytes_in_use
        assert used >= 100
        heap.free(a)
        assert heap.bytes_in_use == 0


class TestCorruption:
    def test_overflow_tramples_next_header(self, space, heap):
        # Writing past one payload corrupts the next block's header,
        # exactly what a placement-new heap overflow does.
        a = heap.allocate(16)
        heap.allocate(16)
        assert not heap.is_corrupted()
        space.write(a + 16, b"\xde\xad\xbe\xef" * 2)
        assert heap.is_corrupted()

    def test_free_of_corrupted_block_is_invalid(self, space, heap):
        a = heap.allocate(16)
        b = heap.allocate(16)
        space.write(a + 16, b"\x00" * HEADER_SIZE)
        with pytest.raises(InvalidFree):
            heap.free(b)

    def test_block_walk_stops_at_corruption(self, space, heap):
        a = heap.allocate(16)
        heap.allocate(16)
        space.write(a + 16, b"\xff" * HEADER_SIZE)
        infos = list(heap.blocks())
        assert infos[-1].corrupted


class TestCounters:
    def test_allocation_and_free_counts(self, heap):
        a = heap.allocate(8)
        b = heap.allocate(8)
        heap.free(a)
        assert heap.allocation_count == 2
        assert heap.free_count == 1
        assert len(heap.live_blocks()) == 1
        assert heap.live_blocks()[0].payload_address == b


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=40)
)
def test_property_allocate_free_all_restores_heap(sizes):
    """Allocating any mix then freeing everything restores one block."""
    space = AddressSpace()
    heap = HeapAllocator(space)
    initial = heap.largest_free_block()
    addresses = [heap.allocate(size) for size in sizes]
    assert len(set(addresses)) == len(addresses)
    for address in addresses:
        heap.free(address)
    assert heap.largest_free_block() == initial
    assert heap.bytes_in_use == 0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=512), min_size=2, max_size=30),
    st.randoms(),
)
def test_property_interleaved_blocks_never_overlap(sizes, rng):
    """Live payload ranges stay pairwise disjoint under any free order."""
    space = AddressSpace()
    heap = HeapAllocator(space)
    live: dict[int, int] = {}
    for index, size in enumerate(sizes):
        address = heap.allocate(size)
        live[address] = size
        if index % 3 == 2 and live:
            victim = rng.choice(sorted(live))
            heap.free(victim)
            del live[victim]
        ranges = sorted((addr, addr + sz) for addr, sz in live.items())
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 <= s2

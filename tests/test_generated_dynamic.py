"""Fuzz bridge: generated programs' ground truth vs dynamic execution.

E19 shows the *static* detector matches the generator's ground truth;
here the generated programs are *executed* and the simulator's own
placement audit log is checked against the same ground truth — three
independent artifacts (generator, detector, simulator) agreeing.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution import run_source
from repro.workloads.generators import generate_program


def _observed_overflow(program) -> bool:
    """Execute a generated program; did any placement overflow?"""
    stdin = ()
    if program.shape == "tainted-array" and program.vulnerable:
        # The attacker supplies a length past the pool.
        stdin = (program.arena_size + 16,)
    interp, _ = run_source(
        program.source, entry="run", args=(), stdin=stdin
    )
    overflows = [
        record
        for record in interp.machine.placement_log.records
        if record.overflows_arena
    ]
    return bool(overflows)


class TestGeneratedDynamicAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_direct_shape(self, seed):
        rng = random.Random(seed)
        vulnerable = seed % 2 == 0
        program = generate_program(rng, vulnerable, shape="direct")
        assert _observed_overflow(program) == vulnerable

    @pytest.mark.parametrize("seed", range(8))
    def test_helper_shape(self, seed):
        rng = random.Random(100 + seed)
        vulnerable = seed % 2 == 0
        program = generate_program(rng, vulnerable, shape="helper")
        assert _observed_overflow(program) == vulnerable

    @pytest.mark.parametrize("seed", range(8))
    def test_guarded_shape(self, seed):
        # Wrong-way guards execute the placement; right-way guards make
        # it unreachable — execution shows exactly that.
        rng = random.Random(200 + seed)
        vulnerable = seed % 2 == 0
        program = generate_program(rng, vulnerable, shape="guarded")
        assert _observed_overflow(program) == vulnerable

    @pytest.mark.parametrize("seed", range(8))
    def test_tainted_array_shape(self, seed):
        rng = random.Random(300 + seed)
        vulnerable = seed % 2 == 0
        program = generate_program(rng, vulnerable, shape="tainted-array")
        assert _observed_overflow(program) == vulnerable


class TestNewFamiliesDynamic:
    """The fuzzer's seed families whose ground truth is not an
    overflow: verified through the dynamic oracle's event vocabulary."""

    @pytest.mark.parametrize("seed", range(4))
    def test_leak_shape(self, seed):
        from repro.fuzz.oracles import dynamic_verdict

        rng = random.Random(400 + seed)
        vulnerable = seed % 2 == 0
        program = generate_program(rng, vulnerable, shape="leak")
        _, verdict = dynamic_verdict(program.source, stdin=program.stdin)
        assert verdict.valid
        assert ("leak-detected" in verdict.events) == vulnerable

    @pytest.mark.parametrize("seed", range(4))
    def test_dos_loop_shape(self, seed):
        from repro.fuzz.oracles import dynamic_verdict

        rng = random.Random(500 + seed)
        vulnerable = seed % 2 == 0
        program = generate_program(rng, vulnerable, shape="dos-loop")
        _, verdict = dynamic_verdict(program.source, stdin=program.stdin)
        assert verdict.valid
        assert ("dos-timeout" in verdict.events) == vulnerable


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    vulnerable=st.booleans(),
)
def test_property_three_way_agreement(seed, vulnerable):
    """Generator ground truth == static verdict == dynamic observation,
    for arbitrary generated programs."""
    from repro.analysis import analyze_source

    program = generate_program(random.Random(seed), vulnerable)
    static_flag = analyze_source(program.source).flagged
    dynamic_flag = _observed_overflow(program)
    assert static_flag == program.vulnerable
    assert dynamic_flag == program.vulnerable

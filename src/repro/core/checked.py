"""Checked placement new — the Section 5.1 "correct coding" discipline.

The paper's prescription for modifiable software: *"At each point where
placement new is used, it has to be enforced that the size of the new
object or array B being placed in a memory arena of another object/array
A should never be larger than the object or array A.  If the size
checking fails, then the memory allocated to A should be freed, and the
non-placement new expression should be used to create B."*

Both behaviours are implemented here: the hard check
(:func:`checked_placement_new`) and the free-and-fall-back variant
(:func:`place_or_heap_allocate`).  ``sizeof()`` is always taken from the
layout engine, never estimated by hand — the paper warns that compilers
add hidden members (the vptr) that manual estimates miss.
"""

from __future__ import annotations

from typing import Any, Optional

from ..cxx.classdef import ClassDef
from ..cxx.object_model import CArrayView, Instance
from ..cxx.types import CType
from ..errors import ApiMisuseError, BoundsCheckViolation
from ..memory.alignment import is_aligned
from .new_expr import NewContext, new_object
from .placement import PlacementTarget, placement_new, placement_new_array, resolve_target


def _known_arena_size(
    target: PlacementTarget, arena_size: Optional[int]
) -> tuple[int, int]:
    """Resolve the target and insist the arena's extent is known.

    Checked placement requires knowing what you are placing into; a bare
    address with no declared size cannot be checked (the paper's core
    argument for why retrofitting bounds checks is hard).
    """
    address, inferred = resolve_target(target)
    size = arena_size if arena_size is not None else inferred
    if size is None:
        raise ApiMisuseError(
            "checked placement requires the arena size; pass arena_size= "
            "for raw addresses"
        )
    return address, size


def checked_placement_new(
    ctx: NewContext,
    target: PlacementTarget,
    class_def: ClassDef,
    *args: Any,
    arena_size: Optional[int] = None,
    enforce_alignment: bool = True,
) -> Instance:
    """``new (target) T(args...)`` with the Section 5.1 size check.

    Raises :class:`BoundsCheckViolation` instead of overflowing; raises
    it likewise for misaligned placement when ``enforce_alignment``.
    """
    address, size = _known_arena_size(target, arena_size)
    layout = ctx.layouts.layout_of(class_def)
    if layout.size > size:
        raise BoundsCheckViolation(
            arena_size=size,
            object_size=layout.size,
            detail=f"refusing to place {class_def.name} into smaller arena",
        )
    if enforce_alignment and not is_aligned(address, layout.alignment):
        raise BoundsCheckViolation(
            arena_size=size,
            object_size=layout.size,
            detail=(
                f"address {address:#010x} violates alignment "
                f"{layout.alignment} of {class_def.name}"
            ),
        )
    return placement_new(ctx, address, class_def, *args)


def checked_placement_new_array(
    ctx: NewContext,
    target: PlacementTarget,
    element: CType,
    count: int,
    arena_size: Optional[int] = None,
) -> CArrayView:
    """``new (target) T[count]`` with the size check."""
    if count <= 0:
        raise ApiMisuseError(f"array length must be positive, got {count}")
    address, size = _known_arena_size(target, arena_size)
    needed = element.size * count
    if needed > size:
        raise BoundsCheckViolation(
            arena_size=size,
            object_size=needed,
            detail=f"refusing to place {element.name}[{count}] into smaller arena",
        )
    return placement_new_array(ctx, address, element, count)


def place_or_heap_allocate(
    ctx: NewContext,
    target: PlacementTarget,
    class_def: ClassDef,
    *args: Any,
    arena_size: Optional[int] = None,
    release_arena: bool = False,
) -> Instance:
    """The paper's full fallback protocol: place if it fits, otherwise
    free the arena (when it was heap-allocated and ``release_arena``) and
    construct with ordinary ``new``."""
    try:
        return checked_placement_new(
            ctx, target, class_def, *args, arena_size=arena_size
        )
    except BoundsCheckViolation:
        address, _ = resolve_target(target)
        if release_arena and ctx.tracker.lookup(address) is not None:
            ctx.tracker.mark_freed(address)
            ctx.heap.free(address)
        return new_object(ctx, class_def, *args)

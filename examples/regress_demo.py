"""A tour of repro.regress: the replayable regression corpus.

Records a fuzz campaign's divergences as content-addressed bundles,
replays them sequentially and over the service worker pool (same
bytes), then walks the three failure modes the CI gate exists for:
verdict drift, a version bump without a rebaseline, and the explicit
rebaseline that re-asserts the corpus afterwards.

    PYTHONPATH=src python examples/regress_demo.py
"""

import tempfile
from pathlib import Path

from repro.fuzz import FuzzConfig, run_campaign, run_oracles, OracleConfig
from repro.regress import (
    RegressionStore,
    bundle_from_observation,
    current_versions,
    rebaseline_store,
    replay_store,
)
from repro.service import ServiceEngine

SEED = 7
ITERATIONS = 200


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-regress-demo-"))
    store = RegressionStore(workdir / "store")

    # -- record: a campaign persists its divergences -----------------------
    report = run_campaign(
        FuzzConfig(seed=SEED, iterations=ITERATIONS, minimize=False),
        store=store,
    )
    print(
        f"campaign seed={SEED}: {len(report.divergences)} divergence(s) "
        f"recorded as {len(store)} bundle(s) in {store.directory}"
    )
    for bundle in store.bundles():
        print(
            f"  {bundle.bundle_id}  [{bundle.status}] "
            f"{bundle.expected_kind}  rules="
            f"{','.join(bundle.expected_rules) or '-'}"
        )

    # -- a manual pin: agreements are worth keeping too --------------------
    config = OracleConfig()
    source = "void run() { int x = 1; }\n"
    observation = run_oracles(source, (), config)
    pinned_id, disposition = store.record(
        bundle_from_observation(source, (), config, observation)
    )
    print(f"\npinned agreement {pinned_id} ({disposition})")

    # -- replay: sequential and fanned-out are byte-identical --------------
    sequential = replay_store(store)
    with ServiceEngine(workers=4, use_cache=False) as engine:
        fanned = engine.regress_replay(store, chunk_size=4)
    print(f"\n{sequential.render()}")
    identical = sequential.to_json() == fanned.to_json()
    print(f"4-worker fan-out byte-identical to sequential: {identical}")

    # -- failure mode 1: verdict drift -------------------------------------
    drifted_id = store.ids()[0]
    bundle = store.load(drifted_id)
    bundle.expected_kind = "agree"
    bundle.expected_fingerprint = ""
    store.record(bundle, overwrite=True)
    drift = replay_store(store)
    print(f"\nafter tampering with {drifted_id}:")
    for result in drift.drifted:
        print(f"  [{result.status}] {result.bundle_id}: {result.detail}")

    # -- failure mode 2: a version bump without a rebaseline ---------------
    bundle = store.load(drifted_id)
    bundle.versions = dict(bundle.versions, detector="0")
    store.record(bundle, overwrite=True)
    stale = replay_store(store)
    counts = stale.counts()
    print(f"\nwith a stale detector version pinned: {counts}")
    print(f"(live versions: {current_versions()})")

    # -- the explicit way out: rebaseline ----------------------------------
    outcome = rebaseline_store(store)
    final = replay_store(store)
    print(
        f"\nrebaseline: {len(outcome['updated'])} updated, "
        f"{len(outcome['unchanged'])} unchanged, "
        f"{len(outcome['failed'])} failed — replay clean = {final.clean}"
    )


if __name__ == "__main__":
    main()

"""Virtual-table pointer subterfuge — Section 3.8.2.

With ``virtual char* getInfo()`` added, the vptr is the *first entry* of
every instance, so the same adjacent-object overflows now hit the
neighbour's vptr before anything else.  The attacker has two payoffs,
both reproduced here:

* point the vptr at a **fake vtable** whose slot holds the address of an
  arbitrary function → "invoke arbitrary methods as implementations of
  getInfo()";
* write garbage → the next virtual call crashes the program.
"""

from __future__ import annotations

from ..core.new_expr import construct
from ..cxx.types import UINT
from ..errors import SegmentationFault
from ..workloads.classes import make_student_classes
from .base import AttackResult, AttackScenario, Environment


class VtableSubterfugeDataAttack(AttackScenario):
    """Via data/bss overflow (the Listing 11 shape, virtual classes)."""

    name = "vtable-subterfuge-bss"
    paper_ref = "§3.8.2 (via data/bss)"
    description = "overflow rewrites neighbour's vptr; next vcall is attacker's"

    def __init__(self, fake_vtable: bool = True, target_symbol: str = "system") -> None:
        self.fake_vtable = fake_vtable
        self.target_symbol = target_symbol

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes(virtual=True)

        stud1 = machine.static_object(student_cls, "stud1")
        stud2 = machine.static_object(student_cls, "stud2")
        env.protect(machine, stud1.address, stud1.size)
        construct(machine, student_cls, stud2.address)
        vptr_before = stud2.read_vptr()

        # The attacker's vptr value: either a fake vtable they stored in
        # an input buffer, or garbage.
        if self.fake_vtable:
            fake_table = machine.static_array(UINT, 2, "attacker_buffer")
            target = machine.text.function_named(self.target_symbol).address
            machine.space.write_pointer(fake_table.address, target)
            injected_vptr = fake_table.address
        else:
            injected_vptr = 0x41414141

        # virtual Student is 24B, virtual GradStudent 40B; ssn sits at
        # +24..+36, so ssn[0] lands exactly on stud2's vptr.
        st = env.place(machine, stud1, grad_cls)
        st.set_element("ssn", 0, injected_vptr)

        vptr_after = stud2.read_vptr()
        try:
            execution = machine.virtual_call(stud2, "getInfo")
        except SegmentationFault as exc:
            # The garbage-vptr payoff: a controlled crash.
            return self.result(
                env,
                succeeded=(not self.fake_vtable and vptr_after != vptr_before),
                machine=machine,
                vptr_before=hex(vptr_before),
                vptr_after=hex(vptr_after),
                outcome=f"crash: {exc}",
            )
        hijacked_call = (
            execution.function_name == self.target_symbol
            if self.fake_vtable
            else False
        )
        return self.result(
            env,
            succeeded=hijacked_call,
            machine=machine,
            vptr_before=hex(vptr_before),
            vptr_after=hex(vptr_after),
            outcome=f"dispatched to {execution.function_name}",
        )


class VtableSubterfugeStackAttack(AttackScenario):
    """Via stack overflow (the Listing 16 shape, virtual classes):
    the neighbouring local ``first``'s vptr is the victim."""

    name = "vtable-subterfuge-stack"
    paper_ref = "§3.8.2 (via stack)"
    description = "stack object overflow rewrites first.__vptr"

    def __init__(self, target_symbol: str = "grantAdminAccess") -> None:
        self.target_symbol = target_symbol

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes(virtual=True)

        fake_table = machine.static_array(UINT, 2, "attacker_buffer")
        target = machine.text.function_named(self.target_symbol).address
        machine.space.write_pointer(fake_table.address, target)

        frame = machine.push_frame("addStudent")
        first = frame.local_object(student_cls, "first")
        env.place(machine, first, student_cls, 3.9, 2008, 2)
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        gs = env.place(machine, stud, grad_cls)
        gs.set_element("ssn", 0, fake_table.address)  # first.__vptr

        execution = machine.virtual_call(first, "getInfo")
        machine.pop_frame(frame)
        return self.result(
            env,
            succeeded=(execution.function_name == self.target_symbol),
            machine=machine,
            dispatched_to=execution.function_name,
            privileged=execution.privileged,
        )

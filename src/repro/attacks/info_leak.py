"""Information leakage — Section 4.3, Listings 21 and 22.

Placement new re-uses arenas *without sanitizing them*.  Listing 21: a
password file is read into a pool, a smaller user buffer is then placed
there, and storing the buffer ships the residue.  Listing 22: a
``Student`` is placed over a retired ``GradStudent`` and serializing the
arena ships the SSNs that survive past ``sizeof(Student)``.
"""

from __future__ import annotations

from ..core.new_expr import new_object
from ..cxx.types import CHAR
from ..runtime.io import password_file
from ..workloads.classes import make_student_classes, set_ssn
from .base import AttackResult, AttackScenario, Environment


class ArrayInfoLeakAttack(AttackScenario):
    """Listing 21: password-file residue behind a short user string."""

    name = "info-leak-array"
    paper_ref = "§4.3, Listing 21"
    description = "store(userdata) ships password-file bytes left in the pool"

    def __init__(
        self, pool_size: int = 256, max_userdata: int = 256, userdata: str = "bob"
    ) -> None:
        self.pool_size = pool_size
        self.max_userdata = max_userdata
        self.userdata = userdata

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        machine.files.add(password_file())

        mem_pool = machine.static_array(CHAR, self.pool_size, "mem_pool")
        secret = machine.files.open("/etc/passwd").read(self.pool_size)
        machine.space.write(mem_pool.address, secret.ljust(self.pool_size, b"\x00")[: self.pool_size])

        # userdata = new (mem_pool) char[MAX_USERDATA];
        userdata = env.place_array(
            machine, mem_pool, CHAR, self.max_userdata, arena_size=self.pool_size
        )
        # user input, sizeof(userdata) <= MAX_USERDATA
        machine.space.strncpy(
            userdata.address, self.userdata, len(self.userdata) + 1
        )

        # store(userdata): serializes MAX_USERDATA bytes starting there.
        stored = machine.space.read(userdata.address, self.max_userdata)
        residue = stored[len(self.userdata) + 1 :]
        secret_tail = secret[len(self.userdata) + 1 : self.max_userdata]
        leaked = sum(
            1 for got, want in zip(residue, secret_tail) if got == want and want
        )
        return self.result(
            env,
            succeeded=(leaked > 0),
            machine=machine,
            leaked_bytes=leaked,
            stored_preview=stored[:48].decode("latin-1", errors="replace"),
            contains_password_hash=(b"$6$" in stored),
        )


class ObjectInfoLeakAttack(AttackScenario):
    """Listing 22: SSNs survive the placement of a smaller Student."""

    name = "info-leak-object"
    paper_ref = "§4.3, Listing 22"
    description = "store(st) ships the retired GradStudent's ssn[]"

    def __init__(self, ssn: tuple[int, int, int] = (123, 45, 6789)) -> None:
        self.ssn = ssn

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()

        gst = new_object(machine, grad_cls, 3.8, 2007, 1)
        set_ssn(gst, *self.ssn)

        # Student *st = new (gst) Student();  — no cleaning of the SSN.
        st = env.place(machine, gst.address, student_cls, arena_size=gst.size)

        # store(st): the paper says it "stores memory contents starting
        # at st" — the arena's true extent, not sizeof(Student).
        stored = machine.space.read(st.address, machine.sizeof(grad_cls))
        residual = gst.as_type(grad_cls)
        leaked_ssn = [residual.get_element("ssn", i) for i in range(3)]
        return self.result(
            env,
            succeeded=(tuple(leaked_ssn) == self.ssn),
            machine=machine,
            leaked_ssn=leaked_ssn,
            stored_bytes=len(stored),
        )

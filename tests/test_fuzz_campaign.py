"""Tests for campaign orchestration, the service wiring, and the CLI."""

import json

from repro.cli import fuzz_main
from repro.fuzz import (
    CampaignReport,
    Divergence,
    DifferentialFuzzer,
    FuzzConfig,
    FuzzInput,
    auto_triage,
    batch_rng,
    run_batch,
    run_campaign,
)
from repro.service import ServiceEngine
from repro.service.jobs import FuzzCampaignJob
from repro.service.workers import WORKER_REGISTRY


class TestSequentialCampaign:
    def test_small_campaign_deterministic(self):
        config = FuzzConfig(seed=11, iterations=30, minimize=False)
        a = run_campaign(config)
        b = run_campaign(config)
        assert a.to_json() == b.to_json()

    def test_seeds_reach_both_oracles(self):
        report = run_campaign(FuzzConfig(seed=3, iterations=0, minimize=False))
        assert set(report.families) == {
            "direct",
            "helper",
            "guarded",
            "tainted-array",
            "leak",
            "dos-loop",
            "taint-source",
        }
        for family, reach in report.families.items():
            assert reach["static"], f"{family} never tripped the detector"
            assert reach["dynamic"], f"{family} never tripped the simulator"

    def test_all_divergences_triaged(self):
        report = run_campaign(FuzzConfig(seed=3, iterations=60, minimize=False))
        assert report.untriaged == []

    def test_counts_add_up(self):
        report = run_campaign(FuzzConfig(seed=5, iterations=40, minimize=False))
        assert report.execs >= report.seeds
        assert report.execs + report.mutants_discarded >= 40
        assert report.corpus_size >= report.seeds - report.invalid
        assert 0.0 <= report.divergence_rate <= 1.0


class TestBatchWorker:
    def test_fuzz_campaign_job_registered(self):
        assert FuzzCampaignJob.KIND in WORKER_REGISTRY
        assert not FuzzCampaignJob.CACHEABLE

    def test_job_payload_is_canonical_jsonable(self):
        job = FuzzCampaignJob(
            seed=1,
            round=0,
            batch=2,
            iterations=10,
            corpus=(("void run() { }", (), "corpus", ""),),
            coverage=("rule:PN-LEAK",),
        )
        # key() canonical-JSON-encodes the payload; must not raise and
        # must be stable.
        assert job.key() == FuzzCampaignJob(**job.payload()).key()

    def test_run_batch_reports_only_deltas(self):
        fuzzer = DifferentialFuzzer(FuzzConfig(seed=2, iterations=0))
        fuzzer.run_seeds()
        payload = {
            "seed": 2,
            "round": 0,
            "batch": 0,
            "iterations": 20,
            "corpus": [
                (inp.source, inp.stdin, inp.family, inp.label)
                for inp in fuzzer.corpus
            ],
            "coverage": list(fuzzer.coverage.sorted_keys()),
        }
        result = run_batch(payload)
        assert result["execs"] + result["discarded"] == 20
        baseline = set(payload["coverage"])
        for key in result["new_coverage"]:
            assert key not in baseline

    def test_batch_rng_distinct_per_coordinates(self):
        a = batch_rng(1, 0, 0).random()
        b = batch_rng(1, 0, 1).random()
        c = batch_rng(1, 1, 0).random()
        assert len({a, b, c}) == 3


class TestServiceCampaign:
    def test_acceptance_500_execs_byte_identical(self, tmp_path):
        """The PR's acceptance gate: a fixed-seed campaign pushing 500+
        generated programs through the service worker pool produces a
        byte-identical report across two runs, every labeled-vulnerable
        family reaches both oracles, nothing is left un-triaged, every
        divergence is auto-recorded as a regression bundle, and an
        immediate replay of that corpus is green and deterministic for
        any worker count."""
        from repro.regress import RegressionStore, replay_store

        def one_run(workers, store=None):
            with ServiceEngine(workers=workers, use_cache=False) as engine:
                return run_campaign(
                    FuzzConfig(seed=7, iterations=650, minimize=False),
                    engine=engine,
                    batch_size=60,
                    store=store,
                )

        store = RegressionStore(tmp_path / "store")
        first = one_run(4, store=store)
        # The batch partition is fixed (BATCHES_PER_ROUND), never derived
        # from the pool — so even a different worker count must reproduce
        # the report byte for byte.
        second = one_run(2)
        assert first.execs >= 500
        assert first.to_json() == second.to_json()
        assert first.untriaged == []
        for family, reach in first.families.items():
            assert reach["static"] and reach["dynamic"], family
        # Auto-record: one bundle per divergence; immediate replay green
        # and byte-identical whether sequential or fanned out.
        assert len(store) == len(first.divergences)
        sequential = replay_store(store)
        assert sequential.clean, sequential.render()
        for workers in (1, 2, 4):
            with ServiceEngine(workers=workers, use_cache=False) as engine:
                fanned = engine.regress_replay(store)
            assert fanned.to_json() == sequential.to_json(), workers

    def test_metrics_updated(self):
        with ServiceEngine(workers=2, use_cache=False) as engine:
            engine.fuzz_campaign(seed=4, iterations=30, minimize=False)
            snapshot = engine.metrics.snapshot()
        assert snapshot["counters"]["fuzz.execs_total"] > 0
        assert snapshot["gauges"]["fuzz.coverage_size"] > 0
        assert snapshot["gauges"]["fuzz.corpus_size"] > 0

    def test_batch_failure_is_counted_not_fatal(self):
        with ServiceEngine(
            workers=2, use_cache=False, fault_plan="crash:fuzz-campaign:99"
        ) as engine:
            report = engine.fuzz_campaign(seed=4, iterations=40, minimize=False)
        assert report.batches_failed > 0
        # Seeds still ran locally; the report stays coherent.
        assert report.execs >= report.seeds

    def test_failed_batches_account_lost_iterations(self):
        """Every iteration a crashed batch would have run is reported as
        lost — an "N iterations" claim must stay honest."""
        with ServiceEngine(
            workers=2, use_cache=False, fault_plan="crash:fuzz-campaign:99"
        ) as engine:
            report = engine.fuzz_campaign(seed=4, iterations=40, minimize=False)
            snapshot = engine.metrics.snapshot()
        assert report.batches_failed > 0
        assert report.iterations_lost == 40  # every batch crashed
        assert snapshot["counters"]["fuzz.iterations_lost"] == 40
        assert "never executed" in report.render()
        restored = CampaignReport.from_dict(json.loads(report.to_json()))
        assert restored.iterations_lost == 40
        assert restored.batches_failed == report.batches_failed

    def test_healthy_campaign_loses_nothing(self):
        with ServiceEngine(workers=2, use_cache=False) as engine:
            report = engine.fuzz_campaign(seed=4, iterations=40, minimize=False)
        assert report.iterations_lost == 0
        assert "never executed" not in report.render()


class TestCorpusSaturation:
    def seeded(self, max_corpus, protected=2):
        fuzzer = DifferentialFuzzer(FuzzConfig(seed=1, max_corpus=max_corpus))
        for index in range(protected):
            assert fuzzer.add_corpus(
                FuzzInput(f"void run() {{ int s{index} = 0; }}", (), "f"),
                protected=True,
            )
        return fuzzer

    def test_saturation_evicts_oldest_unprotected(self):
        fuzzer = self.seeded(max_corpus=3)
        first = FuzzInput("void run() { int a = 0; }", ())
        second = FuzzInput("void run() { int b = 0; }", ())
        assert fuzzer.add_corpus(first)
        # Full now: the next coverage-growing input must still enter,
        # displacing the oldest non-seed entry.
        assert fuzzer.add_corpus(second)
        assert fuzzer.saturations == 1
        assert [inp.key() for inp in fuzzer.corpus][-1] == second.key()
        assert first.key() not in {inp.key() for inp in fuzzer.corpus}
        assert len(fuzzer.corpus) == 3

    def test_current_members_are_deduplicated(self):
        fuzzer = self.seeded(max_corpus=3)
        entry = FuzzInput("void run() { int a = 0; }", ())
        assert fuzzer.add_corpus(entry)
        assert not fuzzer.add_corpus(entry)

    def test_all_seed_cap_is_not_evictable(self):
        fuzzer = self.seeded(max_corpus=2)
        assert not fuzzer.add_corpus(FuzzInput("void run() { int a = 0; }", ()))
        assert fuzzer.saturations == 1
        assert len(fuzzer.corpus) == 2

    def test_saturation_is_metered(self):
        from repro.service import MetricsRegistry

        metrics = MetricsRegistry()
        fuzzer = DifferentialFuzzer(
            FuzzConfig(seed=1, max_corpus=1), metrics=metrics
        )
        fuzzer.add_corpus(FuzzInput("void run() { int s = 0; }", ()))
        fuzzer.add_corpus(FuzzInput("void run() { int a = 0; }", ()))
        assert metrics.snapshot()["counters"]["fuzz.corpus_saturated"] == 1

    def test_saturated_campaign_still_promotes_and_stays_deterministic(self):
        """The bugfix's acceptance: with a tight corpus cap the campaign
        keeps promoting (evicting deterministically) and the report is
        still byte-identical across worker counts."""

        def one_run(workers):
            with ServiceEngine(workers=workers, use_cache=False) as engine:
                return engine.fuzz_campaign(
                    seed=7,
                    iterations=300,
                    minimize=False,
                    max_corpus=28,
                    batch_size=60,
                )

        first = one_run(4)
        second = one_run(2)
        assert first.corpus_saturated > 0
        assert first.corpus_size == 28
        assert first.to_json() == second.to_json()


class TestReportAndTriage:
    def test_report_json_roundtrip(self):
        report = run_campaign(FuzzConfig(seed=9, iterations=30, minimize=False))
        restored = CampaignReport.from_dict(json.loads(report.to_json()))
        assert restored.to_json() == report.to_json()

    def test_render_mentions_every_divergence(self):
        report = run_campaign(FuzzConfig(seed=9, iterations=30, minimize=False))
        text = report.render()
        for div in report.divergences:
            assert div.fingerprint in text

    def test_manual_triage_wins_over_auto(self):
        div = Divergence(
            fingerprint="abc",
            kind="static-only",
            static_rules=("PN-TAINTED-COUNT",),
            dynamic_events=(),
            family="f",
            entry="run",
            source="void run() { }",
            stdin=(),
            triage="manual: reviewed",
        )
        assert auto_triage(div).triage == "manual: reviewed"

    def test_occurrences_merge_on_duplicate_fingerprint(self):
        config = FuzzConfig(seed=13, iterations=0)
        fuzzer = DifferentialFuzzer(config)
        fuzzer.run_seeds()
        total = sum(d.occurrences for d in fuzzer.divergences.values())
        assert total >= len(fuzzer.divergences)


class TestFuzzCli:
    def test_run_writes_report_and_gates(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = fuzz_main(
            [
                "run",
                "--seed",
                "3",
                "--iterations",
                "40",
                "--jobs",
                "0",
                "--no-minimize",
                "--out",
                str(out),
                "--fail-on-untriaged",
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == 2
        assert data["untriaged"] == 0
        rendered = capsys.readouterr().out
        assert "family reach" in rendered

    def test_report_rerenders_saved_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        fuzz_main(
            ["run", "--seed", "3", "--iterations", "20", "--jobs", "0",
             "--no-minimize", "--out", str(out)]
        )
        capsys.readouterr()
        assert fuzz_main(["report", str(out)]) == 0
        assert "campaign seed=3" in capsys.readouterr().out

    def test_triage_marks_fingerprint(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        fuzz_main(
            ["run", "--seed", "3", "--iterations", "40", "--jobs", "0",
             "--no-minimize", "--out", str(out)]
        )
        data = json.loads(out.read_text())
        assert data["divergences"], "campaign found no divergences to triage"
        fingerprint = data["divergences"][0]["fingerprint"]
        capsys.readouterr()
        code = fuzz_main(
            ["triage", str(out), "--fingerprint", fingerprint,
             "--note", "reviewed by hand"]
        )
        assert code == 0
        updated = json.loads(out.read_text())
        entry = next(
            d for d in updated["divergences"]
            if d["fingerprint"] == fingerprint
        )
        assert entry["status"] == "known-benign"
        assert "reviewed by hand" in entry["triage"]

    def test_triage_unknown_fingerprint_is_usage_error(self, tmp_path):
        out = tmp_path / "report.json"
        fuzz_main(
            ["run", "--seed", "3", "--iterations", "10", "--jobs", "0",
             "--no-minimize", "--out", str(out)]
        )
        code = fuzz_main(
            ["triage", str(out), "--fingerprint", "ffffffffffffffff",
             "--note", "x"]
        )
        assert code == 2

    def test_minimize_subcommand(self, tmp_path, capsys):
        source = tmp_path / "diverge.mc"
        source.write_text(
            "char pool[64];\n"
            "void run() {\n"
            "  int n = 0;\n"
            "  int waste = 9;\n"
            "  cin >> n;\n"
            "  char* p = new (pool) char[n];\n"
            "}\n"
        )
        code = fuzz_main(["minimize", str(source), "--stdin", "8,9"])
        assert code == 0
        output = capsys.readouterr().out
        assert "static-only" in output
        assert "waste" not in output.split("minimized source:")[1]

    def test_minimize_on_agreeing_input_reports_none(self, tmp_path, capsys):
        source = tmp_path / "agree.mc"
        source.write_text("void run() { int x = 1; }\n")
        assert fuzz_main(["minimize", str(source)]) == 1
        assert "no divergence" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, tmp_path):
        assert fuzz_main(["report", str(tmp_path / "absent.json")]) == 2
        assert fuzz_main(["minimize", str(tmp_path / "absent.mc")]) == 2

"""Tests for the machine: frames, canaries, control transfers, shellcode."""

import pytest

from repro.core import placement_new
from repro.cxx import INT
from repro.errors import (
    IllegalInstruction,
    NonExecutableMemory,
    SegmentationFault,
    StackSmashingDetected,
)
from repro.memory import SegmentKind
from repro.runtime import (
    CanaryPolicy,
    ExecutionKind,
    Machine,
    MachineConfig,
    assemble,
    interpret,
    password_file,
    spawn_shell_payload,
)
from repro.workloads import set_ssn


class TestGlobals:
    def test_initialized_scalar_goes_to_data(self, machine):
        var = machine.static_scalar(INT, "count", init=5)
        assert var.segment is SegmentKind.DATA
        assert machine.read_global("count") == 5

    def test_uninitialized_scalar_goes_to_bss(self, machine):
        var = machine.static_scalar(INT, "n")
        assert var.segment is SegmentKind.BSS
        assert machine.read_global("n") == 0  # bss is zeroed

    def test_write_global(self, machine):
        machine.static_scalar(INT, "n")
        machine.write_global("n", 42)
        assert machine.read_global("n") == 42

    def test_globals_allocated_in_order(self, machine, student_classes):
        student, _ = student_classes
        a = machine.static_object(student, "a")
        b = machine.static_object(student, "b")
        assert b.address == a.address + 16

    def test_unknown_global_rejected(self, machine):
        from repro.errors import ApiMisuseError

        with pytest.raises(ApiMisuseError):
            machine.global_var("ghost")


class TestFrames:
    def test_normal_return(self, machine, student_classes):
        student, _ = student_classes
        frame = machine.push_frame("f")
        frame.local_object(student, "stud")
        exit_ = machine.pop_frame(frame)
        assert exit_.normal
        assert not exit_.hijacked

    def test_frame_restores_stack_pointer(self, machine):
        sp = machine.stack.stack_pointer
        frame = machine.push_frame("f")
        frame.local_scalar(INT, "x")
        machine.pop_frame(frame)
        assert machine.stack.stack_pointer == sp

    def test_locals_first_declared_higher(self, machine):
        frame = machine.push_frame("f")
        a = frame.local_scalar(INT, "a")
        b = frame.local_scalar(INT, "b")
        machine.pop_frame(frame)
        assert a > b

    def test_duplicate_local_rejected(self, machine):
        from repro.errors import ApiMisuseError

        frame = machine.push_frame("f")
        frame.local_scalar(INT, "x")
        with pytest.raises(ApiMisuseError):
            frame.local_scalar(INT, "x")
        machine.pop_frame(frame)

    def test_double_pop_rejected(self, machine):
        from repro.errors import ApiMisuseError

        frame = machine.push_frame("f")
        machine.pop_frame(frame)
        with pytest.raises(ApiMisuseError):
            machine.pop_frame(frame)

    def test_frame_context_manager(self, machine):
        with machine.frame("f") as frame:
            frame.local_scalar(INT, "x", init=7)
        assert frame.exit.normal

    def test_fixed_slot_order(self, guarded_machine):
        frame = guarded_machine.push_frame("f")
        assert frame.slots.canary_slot < frame.slots.fp_slot < frame.slots.return_slot
        assert frame.slots.canary_slot % 8 == 0
        guarded_machine.pop_frame(frame)

    def test_paper_index_mapping(self, student_classes):
        """Listing 13's table: which ssn[i] hits the return slot."""
        student, grad = student_classes
        cases = [
            (False, CanaryPolicy.NONE, 0),
            (True, CanaryPolicy.NONE, 1),
            (True, CanaryPolicy.RANDOM, 2),
        ]
        for save_fp, policy, ret_index in cases:
            machine = Machine(
                MachineConfig(canary_policy=policy, save_frame_pointer=save_fp)
            )
            frame = machine.push_frame("addStudent")
            stud = frame.local_object(student, "stud")
            gs = placement_new(machine, stud, grad)
            assert (
                gs.element_address("ssn", ret_index) == frame.slots.return_slot
            ), (save_fp, policy)


class TestCanary:
    def test_smash_detected_on_return(self, guarded_machine, student_classes):
        student, grad = student_classes
        frame = guarded_machine.push_frame("addStudent")
        stud = frame.local_object(student, "stud")
        gs = placement_new(guarded_machine, stud, grad)
        set_ssn(gs, 1, 2, 3)  # tramples canary, FP, ret
        with pytest.raises(StackSmashingDetected):
            guarded_machine.pop_frame(frame)

    def test_intact_canary_returns_normally(self, guarded_machine, student_classes):
        student, grad = student_classes
        frame = guarded_machine.push_frame("addStudent")
        stud = frame.local_object(student, "stud")
        placement_new(guarded_machine, stud, grad)
        exit_ = guarded_machine.pop_frame(frame)
        assert exit_.normal and exit_.canary_intact

    def test_selective_overwrite_evades_canary(
        self, guarded_machine, student_classes
    ):
        """Section 5.2's experiment: skip the canary, rewrite only ret."""
        student, grad = student_classes
        target = guarded_machine.text.function_named("system").address
        frame = guarded_machine.push_frame("addStudent")
        stud = frame.local_object(student, "stud")
        gs = placement_new(guarded_machine, stud, grad)
        gs.set_element("ssn", 2, target)  # only the return slot
        exit_ = guarded_machine.pop_frame(frame)
        assert exit_.hijacked
        assert exit_.canary_intact
        assert exit_.execution.function_name == "system"

    def test_terminator_canary_value(self):
        machine = Machine(MachineConfig(canary_policy=CanaryPolicy.TERMINATOR))
        assert machine.canaries.value == 0x000AFF0D

    def test_random_canary_differs_across_seeds(self):
        a = Machine(MachineConfig(canary_policy=CanaryPolicy.RANDOM, canary_seed=1))
        b = Machine(MachineConfig(canary_policy=CanaryPolicy.RANDOM, canary_seed=2))
        assert a.canaries.value != b.canaries.value


class TestControlTransfers:
    def test_execute_registered_function(self, machine):
        entry = machine.text.function_named("system")
        result = machine.execute_at(entry.address)
        assert result.kind is ExecutionKind.NATIVE
        assert result.function_name == "system"
        assert machine.shell_spawned

    def test_jump_into_text_middle_faults(self, machine):
        entry = machine.text.function_named("system")
        with pytest.raises(SegmentationFault):
            machine.execute_at(entry.address + 2)

    def test_jump_to_unmapped_faults(self, machine):
        with pytest.raises(SegmentationFault):
            machine.execute_at(0x41414141)

    def test_shellcode_on_stack_executes(self, machine):
        payload = spawn_shell_payload()
        address = machine.stack.push_region(len(payload))
        machine.space.write(address, payload)
        result = machine.execute_at(address)
        assert result.kind is ExecutionKind.SHELLCODE
        assert result.spawned_shell
        assert machine.shell_spawned

    def test_nx_stack_blocks_shellcode(self, nx_machine):
        payload = spawn_shell_payload()
        address = nx_machine.stack.push_region(len(payload))
        nx_machine.space.write(address, payload)
        with pytest.raises(NonExecutableMemory):
            nx_machine.execute_at(address)

    def test_garbage_bytes_illegal_instruction(self, machine):
        address = machine.stack.push_region(16)
        machine.space.write(address, b"\x13\x37" * 8)
        with pytest.raises(IllegalInstruction):
            machine.execute_at(address)

    def test_function_pointer_call(self, machine):
        entry = machine.text.function_named("grantAdminAccess")
        result = machine.call_function_pointer(entry.address)
        assert result.privileged
        assert "admin access granted" in machine.events


class TestShellcodeInterpreter:
    def test_nop_sled_then_syscall(self, machine):
        payload = spawn_shell_payload(sled=8)
        address = machine.stack.push_region(len(payload))
        machine.space.write(address, payload)
        # Landing mid-sled still reaches the syscall.
        result = interpret(machine.space, address + 3)
        assert result.spawned_shell

    def test_push_records_values(self, machine):
        payload = assemble(("push", 0xCAFEBABE), "ret")
        address = machine.stack.push_region(len(payload))
        machine.space.write(address, payload)
        result = interpret(machine.space, address)
        assert result.pushed == [0xCAFEBABE]
        assert result.exited

    def test_exit_syscall_stops(self, machine):
        payload = assemble(("syscall", 1), "nop")
        address = machine.stack.push_region(len(payload))
        machine.space.write(address, payload)
        result = interpret(machine.space, address)
        assert result.exited and result.syscalls == ["exit"]

    def test_unknown_syscall_is_illegal(self, machine):
        payload = assemble(("syscall", 99))
        address = machine.stack.push_region(len(payload))
        machine.space.write(address, payload)
        with pytest.raises(IllegalInstruction):
            interpret(machine.space, address)

    def test_assemble_rejects_unknown(self):
        with pytest.raises(ValueError):
            assemble("frobnicate")


class TestIO:
    def test_stdin_script(self, machine):
        machine.stdin.feed(1, 2.5, "abc")
        assert machine.stdin.read_int() == 1
        assert machine.stdin.read_double() == 2.5
        assert machine.stdin.read_string() == "abc"
        assert machine.stdin.remaining == 0

    def test_stdin_exhaustion(self, machine):
        from repro.errors import ApiMisuseError

        with pytest.raises(ApiMisuseError):
            machine.stdin.read_int()

    def test_password_file_contents(self):
        secret = password_file(entries=3)
        assert secret.content.count(b"\n") == 2
        assert b"user00" in secret.content

    def test_filesystem(self, machine):
        from repro.errors import ApiMisuseError

        machine.files.add(password_file())
        assert machine.files.exists("/etc/passwd")
        assert len(machine.files.open("/etc/passwd").read(10)) == 10
        with pytest.raises(ApiMisuseError):
            machine.files.open("/etc/shadow")

"""ServiceClient transport hardening: timeouts, bounded deterministic retry."""

import socket
import threading

import pytest

from repro.service import (
    ServiceClient,
    ServiceEngine,
    ServiceError,
    ServiceUnavailable,
    backoff_delay,
    create_server,
)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestBackoffDelay:
    def test_deterministic_across_calls(self):
        first = [backoff_delay("GET /healthz", n, 0.05, 2.0) for n in (1, 2, 3)]
        second = [backoff_delay("GET /healthz", n, 0.05, 2.0) for n in (1, 2, 3)]
        assert first == second

    def test_jitter_spreads_distinct_keys(self):
        delays = {backoff_delay(f"GET /{i}", 1, 0.05, 2.0) for i in range(32)}
        assert len(delays) == 32  # every request key lands differently

    def test_bounded_by_half_base_and_cap(self):
        for attempt in (1, 2, 3, 10):
            delay = backoff_delay("k", attempt, 0.05, 2.0)
            assert 0.025 <= delay <= 2.0


class TestTransientRetry:
    def test_connection_refused_retries_then_raises_unavailable(self):
        sleeps = []
        client = ServiceClient(
            f"http://127.0.0.1:{free_port()}",
            retries=3,
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.healthz()
        assert excinfo.value.attempts == 4  # 1 try + 3 retries
        assert excinfo.value.status == 0
        assert len(sleeps) == 3
        # the recorded delays are exactly the deterministic schedule
        assert sleeps == [
            backoff_delay("GET /healthz", n, client.backoff_base, client.backoff_cap)
            for n in (1, 2, 3)
        ]

    def test_unavailable_is_a_service_error(self):
        # callers catching the old exception type keep working
        client = ServiceClient(
            f"http://127.0.0.1:{free_port()}", retries=0, sleep=lambda _: None
        )
        with pytest.raises(ServiceError):
            client.healthz()

    def test_retries_zero_disables_retry(self):
        sleeps = []
        client = ServiceClient(
            f"http://127.0.0.1:{free_port()}", retries=0, sleep=sleeps.append
        )
        with pytest.raises(ServiceUnavailable):
            client.healthz()
        assert sleeps == []

    def test_recovery_mid_retry_schedule(self):
        # the first attempt hits a closed port; the server comes up
        # during the backoff and the retry must succeed transparently
        port = free_port()
        with ServiceEngine(workers=1) as engine:
            server = None
            started = threading.Event()

            def bring_up(_delay: float) -> None:
                nonlocal server
                if not started.is_set():
                    server = create_server(engine, host="127.0.0.1", port=port)
                    threading.Thread(
                        target=server.serve_forever, daemon=True
                    ).start()
                    started.set()

            client = ServiceClient(
                f"http://127.0.0.1:{port}", retries=2, sleep=bring_up
            )
            try:
                health = client.healthz()
                assert health["status"] == "ok"
                assert started.is_set(), "succeeded without any retry"
            finally:
                if server is not None:
                    server.shutdown()
                    server.server_close()


class TestStatusErrorsAreNotRetried:
    @pytest.fixture(scope="class")
    def service(self):
        with ServiceEngine(workers=1) as engine:
            server = create_server(engine, host="127.0.0.1", port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                yield f"http://127.0.0.1:{server.server_address[1]}"
            finally:
                server.shutdown()
                server.server_close()

    def test_404_raises_without_retry(self, service):
        sleeps = []
        client = ServiceClient(service, retries=3, sleep=sleeps.append)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert sleeps == []

    def test_400_carries_server_message(self, service):
        client = ServiceClient(service, retries=1, sleep=lambda _: None)
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/analyze", {})
        assert excinfo.value.status == 400
        assert "source" in excinfo.value.message

    def test_separate_connect_and_read_timeouts(self, service):
        client = ServiceClient(
            service, connect_timeout=0.5, read_timeout=30.0, retries=0
        )
        assert client.connect_timeout == 0.5
        assert client.read_timeout == 30.0
        assert client.healthz()["status"] == "ok"

    def test_cache_routes_round_trip(self, service):
        client = ServiceClient(service)
        assert client.cache_get("analyze-00000000000000000000") is None
        key = "analyze-feedfacefeedfacefeed"
        assert client.cache_put(key, {"label": "seeded"}) is True
        fetched = client.cache_get(key)
        assert fetched["result"] == {"label": "seeded"}
        assert fetched["tier"] == "mem"

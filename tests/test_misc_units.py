"""Unit tests for small modules: errors, control flow, text image, CLI
extensions."""

import json


from repro.cli import analyze_main, exec_main
from repro.cxx import NATIVE_STUB_MAGIC, TextImage
from repro.errors import (
    BoundsCheckViolation,
    BusError,
    DoubleFree,
    IllegalInstruction,
    NonExecutableMemory,
    SegmentationFault,
    StackSmashingDetected,
)
from repro.memory import AddressSpace
from repro.runtime.control_flow import ExecutionKind, ExecutionResult, FrameExit


class TestErrorRendering:
    def test_segfault_message(self):
        error = SegmentationFault(0x41414141, "write", "unmapped")
        assert "0x41414141" in str(error)
        assert error.access == "write"

    def test_stack_smash_message_matches_gcc(self):
        error = StackSmashingDetected("addStudent", expected=1, found=2)
        assert "*** stack smashing detected ***" in str(error)

    def test_bounds_check_sizes(self):
        error = BoundsCheckViolation(arena_size=16, object_size=32)
        assert "32" in str(error) and "16" in str(error)

    def test_bus_error(self):
        error = BusError(0x1003, 4, "read")
        assert "bus error" in str(error)
        assert error.alignment == 4

    def test_double_free(self):
        assert "double free" in str(DoubleFree(0x2000))

    def test_illegal_instruction(self):
        error = IllegalInstruction(0x3000, 0x13)
        assert "0x13" in str(error)

    def test_nx(self):
        assert "non-executable" in str(NonExecutableMemory(0x4000))


class TestControlFlowTypes:
    def test_native_shell_detection(self):
        result = ExecutionResult(
            address=1, kind=ExecutionKind.NATIVE, function_name="system"
        )
        assert result.spawned_shell

    def test_non_shell_native(self):
        result = ExecutionResult(
            address=1, kind=ExecutionKind.NATIVE, function_name="exit"
        )
        assert not result.spawned_shell

    def test_frame_exit_hijack_flag(self):
        exit_ = FrameExit(
            function="f", normal=False, returned_to=2, original_return=1
        )
        assert exit_.hijacked
        normal = FrameExit(
            function="f", normal=True, returned_to=1, original_return=1
        )
        assert not normal.hijacked


class TestTextImage:
    def test_function_stub_written(self):
        space = AddressSpace()
        text = TextImage(space)
        entry = text.register_function("probe", lambda m: None)
        assert space.read(entry.address, 4) == NATIVE_STUB_MAGIC

    def test_registration_idempotent(self):
        space = AddressSpace()
        text = TextImage(space)
        a = text.register_function("f", lambda m: 1)
        b = text.register_function("f", lambda m: 2)
        assert a is b

    def test_function_lookup_exact_only(self):
        space = AddressSpace()
        text = TextImage(space)
        entry = text.register_function("f", lambda m: None)
        assert text.function_at(entry.address) is entry
        assert text.function_at(entry.address + 1) is None

    def test_vtable_emission_readable(self):
        space = AddressSpace()
        text = TextImage(space)
        f = text.register_function("C::m", lambda m: None)
        table = text.emit_vtable("C", [("m", f.address)])
        assert space.read_pointer(table.slot_address(0)) == f.address
        assert table.entry_for("m") == f.address
        assert text.vtable_at(table.address) is table

    def test_rodata(self):
        space = AddressSpace()
        text = TextImage(space)
        address = text.emit_rodata(b"/bin/sh\x00")
        assert space.read(address, 8) == b"/bin/sh\x00"


class TestCliExtensions:
    def test_analyze_json_output(self, capsys, tmp_path):
        source = tmp_path / "v.cpp"
        source.write_text(
            "class A { public: double d; };\n"
            "class B : public A { public: int x[4]; };\n"
            "A arena;\n"
            "void f() { B *b = new (&arena) B(); }\n"
        )
        analyze_main([str(source), "--json"])
        out = capsys.readouterr().out
        boundary = out.index("}\n{") + 1
        header = json.loads(out[:boundary])
        payload = json.loads(out[boundary:])
        assert header["tool"] == "repro-analyze"
        assert header["fingerprint"]["detector"]
        assert payload["tool"] == "placement-analyzer"
        rules = {finding["rule"] for finding in payload["findings"]}
        assert "PN-OVERSIZE" in rules

    def test_exec_runs_file(self, capsys, tmp_path):
        source = tmp_path / "p.cpp"
        source.write_text("int f() { return 41 + 1; }")
        assert exec_main([str(source), "--entry", "f", "--args", ""]) == 0
        out = capsys.readouterr().out
        assert "returned 42" in out

    def test_exec_reports_overflowing_placement(self, capsys, tmp_path):
        from repro.workloads.corpus import LISTING_11

        source = tmp_path / "l11.cpp"
        source.write_text(LISTING_11.source)
        exec_main(
            [str(source), "--entry", "addStudent", "--args", "1", "--stdin", "1,2,3"]
        )
        out = capsys.readouterr().out
        assert "OVERFLOW" in out

    def test_exec_simulated_death_is_reported(self, capsys, tmp_path):
        from repro.workloads.corpus import LISTING_13

        source = tmp_path / "l13.cpp"
        source.write_text(LISTING_13.source)
        code = exec_main(
            [
                str(source),
                "--entry",
                "addStudent",
                "--args",
                "1",
                "--stdin",
                "1111,2222,3333",
                "--canary",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "stack smashing" in out

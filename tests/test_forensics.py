"""Tests for watchpoints and the forensics toolkit."""

import pytest

from repro.core import construct, new_object, placement_new
from repro.errors import ApiMisuseError
from repro.forensics import (
    AttackForensics,
    MemorySnapshot,
    annotate_address,
)
from repro.memory import SegmentKind, WatchpointManager
from repro.workloads import set_ssn


class TestWatchpoints:
    def test_write_hit_recorded(self, machine):
        base = machine.space.segment(SegmentKind.BSS).base
        watches = WatchpointManager(machine.space)
        watches.watch("victim", base + 8, 4)
        machine.space.write(base + 8, b"\xde\xad\xbe\xef")
        assert len(watches.hits) == 1
        assert watches.hits[0].is_write

    def test_overlap_detection(self, machine):
        base = machine.space.segment(SegmentKind.BSS).base
        watches = WatchpointManager(machine.space)
        watches.watch("victim", base + 8, 4)
        machine.space.write(base + 6, b"\x00" * 4)  # straddles the start
        assert watches.hits_for("victim")

    def test_non_overlapping_writes_ignored(self, machine):
        base = machine.space.segment(SegmentKind.BSS).base
        watches = WatchpointManager(machine.space)
        watches.watch("victim", base + 8, 4)
        machine.space.write(base, b"\x01" * 8)
        machine.space.write(base + 12, b"\x01")
        assert not watches.hits

    def test_reads_opt_in(self, machine):
        base = machine.space.segment(SegmentKind.BSS).base
        watches = WatchpointManager(machine.space)
        watches.watch("w", base, 4, on_read=True)
        machine.space.read(base, 4)
        kinds = [hit.is_write for hit in watches.hits]
        assert False in kinds

    def test_first_writer_identifies_overflow(self, machine, student_classes):
        # Which write clobbered stud2? The placement-new overflow's
        # set_ssn — observable via the watchpoint.
        student, grad = student_classes
        stud1 = machine.static_object(student, "stud1")
        stud2 = machine.static_object(student, "stud2")
        watches = WatchpointManager(machine.space)
        watches.watch("stud2.gpa", stud2.field_address("gpa"), 8)
        gs = placement_new(machine, stud1, grad)
        set_ssn(gs, 1, 2, 3)
        first = watches.first_writer("stud2.gpa")
        assert first is not None
        assert first.address == stud2.address

    def test_unwatch_and_clear(self, machine):
        base = machine.space.segment(SegmentKind.BSS).base
        watches = WatchpointManager(machine.space)
        watches.watch("w", base, 4)
        machine.space.write(base, b"\x01")
        watches.clear()
        watches.unwatch("w")
        machine.space.write(base, b"\x02")
        assert not watches.hits

    def test_bad_length_rejected(self, machine):
        watches = WatchpointManager(machine.space)
        with pytest.raises(ApiMisuseError):
            watches.watch("w", 0x1000, 0)


class TestSnapshots:
    def test_identical_snapshots_diff_empty(self, machine):
        a = MemorySnapshot(machine)
        b = MemorySnapshot(machine)
        assert a.diff(b) == []

    def test_diff_finds_changed_range(self, machine):
        base = machine.space.segment(SegmentKind.BSS).base
        before = MemorySnapshot(machine)
        machine.space.write(base + 10, b"\x01\x02\x03")
        after = MemorySnapshot(machine)
        changes = before.diff(after)
        assert len(changes) == 1
        assert changes[0].address == base + 10
        assert changes[0].after == b"\x01\x02\x03"
        assert changes[0].segment is SegmentKind.BSS

    def test_diff_separates_disjoint_ranges(self, machine):
        base = machine.space.segment(SegmentKind.BSS).base
        before = MemorySnapshot(machine)
        machine.space.write(base, b"\xff")
        machine.space.write(base + 100, b"\xff")
        changes = before.diff(MemorySnapshot(machine))
        assert len(changes) == 2


class TestAnnotation:
    def test_global_annotation(self, machine, student_classes):
        student, _ = student_classes
        stud = machine.static_object(student, "stud")
        assert annotate_address(machine, stud.address) == "global 'stud'+0"
        assert annotate_address(machine, stud.address + 8) == "global 'stud'+8"

    def test_heap_annotation(self, machine, student_classes):
        student, _ = student_classes
        inst = new_object(machine, student)
        note = annotate_address(machine, inst.address)
        assert note.startswith("heap payload 'Student'")
        header_note = annotate_address(machine, inst.address - 4)
        assert "header" in header_note

    def test_frame_annotation(self, machine, student_classes):
        student, _ = student_classes
        frame = machine.push_frame("f")
        stud = frame.local_object(student, "stud")
        assert (
            annotate_address(machine, frame.slots.return_slot, frame)
            == "return address of f()"
        )
        assert "local 'stud'" in annotate_address(machine, stud.address, frame)
        machine.pop_frame(frame)

    def test_text_annotation(self, machine):
        entry = machine.text.function_named("system")
        assert annotate_address(machine, entry.address) == "function entry system()"

    def test_unmapped_annotation(self, machine):
        assert annotate_address(machine, 0x10) == "unmapped"


class TestAttackForensics:
    def test_overflow_diff_names_the_victims(self, machine, student_classes):
        student, grad = student_classes
        stud1 = machine.static_object(student, "stud1")
        stud2 = machine.static_object(student, "stud2")
        construct(machine, student, stud2.address, 3.5, 2009, 1)

        forensics = AttackForensics(machine)
        forensics.begin()
        gs = placement_new(machine, stud1, grad, 4.0, 2009, 1)
        set_ssn(gs, 0x11111111, 0x22222222, 777)
        changes = forensics.end()

        annotations = " | ".join(change.annotation for change in changes)
        assert "stud1" in annotations
        assert "stud2" in annotations  # the collateral damage, by name
        assert "stud2" in forensics.report()

    def test_begin_required(self, machine):
        forensics = AttackForensics(machine)
        with pytest.raises(RuntimeError):
            forensics.end()

"""Benchmark-harness helpers.

Every ``benchmarks/test_e*.py`` file regenerates one experiment from
EXPERIMENTS.md: it prints the table the paper's prose corresponds to
(captured with ``pytest -s`` or via the CLI) and asserts the *shape* of
the result — who wins, who detects, where the crossover is — while
pytest-benchmark records the timing dimension.
"""

from __future__ import annotations


def print_table(title: str, headers: list, rows: list) -> None:
    """Render one experiment table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))

"""E18 (extension) — the address-knowledge assumption, quantified.

Every control-flow attack in the paper supplies a concrete address
(libc ``system``, a fake vtable, shellcode on the stack).  This
experiment randomizes the victim's image layout per process and replays
the Listing 13 hijack with a stale recon address: the vulnerability
still corrupts memory, but the payoff becomes a (256-slot) lottery —
almost always a crash instead of a shell.
"""

from repro.defenses.aslr import run_aslr_comparison

from conftest import print_table

TRIALS = 40


def run_experiment():
    results = run_aslr_comparison(trials=TRIALS)
    print_table(
        "E18: stale-address hijack success, deterministic vs ASLR image",
        ["layout", "success rate", "crashes"],
        [
            ("deterministic (paper's assumption)", f"{results['deterministic_success_rate']:.0%}", 0),
            ("ASLR (256 slots)", f"{results['aslr_success_rate']:.0%}", results["aslr_crash_count"]),
        ],
    )
    return results


def test_e18_shape(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Deterministic layout: the paper's attacks always land.
    assert results["deterministic_success_rate"] == 1.0
    # ASLR: success collapses toward 1/256; with 40 trials virtually all
    # attempts crash the victim instead.
    assert results["aslr_success_rate"] <= 0.1
    assert results["aslr_crash_count"] >= TRIALS * 0.8

"""Modern mitigations: shadow call stack, VRT bounds, memory tagging.

Each defense is tested at two levels: the mechanism itself (unit pokes
at the table/tag map/shadow stack) and its bypass edges — the paper
attacks that *still* win under it.  The bypass edges are the load-
bearing claims of the sweep baseline: a mitigation that suddenly stops
internal-overflow is a simulation bug, not an improvement.
"""

import pytest

from repro.attacks import all_attacks, attack_by_name
from repro.attacks.base import (
    ALL_DETECTION_LABELS,
    MEMORY_TAGGING,
    VRT_BOUNDS,
    classify_failure,
)
from repro.core.placement import placement_new
from repro.defenses import (
    ShadowCallStack,
    TagMismatchFault,
    VrtBoundsViolation,
)
from repro.workloads import make_student_classes


class TestShadowCallStackUnwind:
    """Non-LIFO teardown must not desynchronize the protected copies."""

    def _frames(self, names):
        machine = VRT_BOUNDS.make_machine()  # any machine; stack is standalone
        return machine, [machine.push_frame(name) for name in names]

    def test_longjmp_teardown_unwinds_abandoned_entries(self):
        machine, (outer, in1, in2) = self._frames(["outer", "in1", "in2"])
        shadow = ShadowCallStack()
        for frame in (outer, in1, in2):
            shadow.record_call(frame)
        assert shadow.depth == 3
        # longjmp back to `outer`: the inner epilogues never run.
        shadow.check_return(outer, outer.original_return)
        assert shadow.unwound_frames == 2
        assert shadow.tamper_events == 0
        assert shadow.depth == 0

    def test_tamper_after_unwind_still_caught(self):
        machine, (outer, inner) = self._frames(["outer", "inner"])
        shadow = ShadowCallStack()
        shadow.record_call(outer)
        shadow.record_call(inner)
        shadow.check_return(outer, outer.original_return)  # abandons `inner`
        fresh = machine.push_frame("fresh")
        shadow.record_call(fresh)
        with pytest.raises(Exception) as excinfo:
            shadow.check_return(fresh, 0xDEAD)
        assert "mismatch" in str(excinfo.value)
        assert shadow.tamper_events == 1

    def test_checks_are_counted(self):
        machine, (frame,) = self._frames(["f"])
        shadow = ShadowCallStack()
        shadow.record_call(frame)
        shadow.check_return(frame, frame.original_return)
        assert shadow.checks == 1


class TestVariableRecordTable:
    def test_static_objects_enter_the_table(self):
        machine = VRT_BOUNDS.make_machine()
        student, _ = make_student_classes()
        arena = machine.static_object(student, "arena")
        entry = machine.vrt.lookup(arena.address)
        assert entry is not None
        assert entry.base == arena.address
        assert entry.true_size == entry.believed_size

    def test_oversized_placement_faults_before_construction(self):
        machine = VRT_BOUNDS.make_machine()
        student, grad = make_student_classes()
        arena = machine.static_object(student, "arena")
        with pytest.raises(VrtBoundsViolation) as excinfo:
            placement_new(machine, arena.address, grad)
        assert excinfo.value.operation == "placement"
        assert machine.vrt.violations

    def test_fitting_placement_shrinks_believed_size(self):
        machine = VRT_BOUNDS.make_machine()
        student, grad = make_student_classes()
        arena = machine.static_object(grad, "arena")
        placement_new(machine, arena.address, student)
        entry = machine.vrt.lookup(arena.address)
        assert entry.believed_size < entry.true_size

    def test_raw_write_past_believed_bounds_faults(self):
        machine = VRT_BOUNDS.make_machine()
        student, _ = make_student_classes()
        arena = machine.static_object(student, "arena")
        entry = machine.vrt.lookup(arena.address)
        with pytest.raises(VrtBoundsViolation):
            machine.space.write(arena.address + entry.believed_size - 2, b"ABCD")

    def test_interior_lookup_resolves_to_containing_variable(self):
        # The arXiv 1909.07821 point: an *interior* address resolves
        # back to its variable — exactly what lexical tools cannot do.
        machine = VRT_BOUNDS.make_machine()
        student, _ = make_student_classes()
        arena = machine.static_object(student, "arena")
        entry = machine.vrt.lookup(arena.address + 4)
        assert entry is not None and entry.base == arena.address

    def test_disarm_stops_enforcement(self):
        machine = VRT_BOUNDS.make_machine()
        student, _ = make_student_classes()
        arena = machine.static_object(student, "arena")
        entry = machine.vrt.lookup(arena.address)
        machine.vrt.disarm()
        machine.space.write(arena.address + entry.believed_size - 2, b"ABCD")

    def test_freed_arenas_leave_the_table(self):
        machine = VRT_BOUNDS.make_machine()
        student, _ = make_student_classes()
        machine.static_object(student, "arena")
        before = machine.vrt.live_entries
        for record in list(machine.tracker.live_records):
            machine.tracker.forget(record.address)
        assert machine.vrt.live_entries < before


class TestMemoryTagging:
    def test_colours_cycle_through_the_4bit_space(self):
        machine = MEMORY_TAGGING.make_machine()
        student, _ = make_student_classes()
        objs = [machine.static_object(student, f"o{i}") for i in range(16)]
        tags = [machine.memory_tags.tag_at(obj.address) for obj in objs]
        assert tags[:15] == list(range(1, 16))
        # The honest MTE limit: the 16th live allocation recycles the
        # first colour, so an overflow between them is invisible.
        assert tags[15] == tags[0]

    def test_cross_allocation_store_faults_at_the_boundary(self):
        machine = MEMORY_TAGGING.make_machine()
        student, _ = make_student_classes()
        a = machine.static_object(student, "a")
        b = machine.static_object(student, "b")
        span = b.address - a.address
        with pytest.raises(TagMismatchFault) as excinfo:
            machine.space.write(a.address + span - 2, b"XXXX")
        fault = excinfo.value
        assert fault.expected_tag != fault.found_tag

    def test_placement_keeps_the_allocation_colour(self):
        # MTE retags on malloc/free, not on casts: placement-new reuses
        # the arena's memory, so its colour must not change.
        machine = MEMORY_TAGGING.make_machine()
        student, grad = make_student_classes()
        arena = machine.static_object(grad, "arena")
        before = machine.memory_tags.tag_at(arena.address)
        placement_new(machine, arena.address, student)
        assert machine.memory_tags.tag_at(arena.address) == before

    def test_untagged_memory_reads_as_zero(self):
        machine = MEMORY_TAGGING.make_machine()
        assert machine.memory_tags.tag_at(0x1000) == 0

    def test_disarm_stops_enforcement(self):
        machine = MEMORY_TAGGING.make_machine()
        student, _ = make_student_classes()
        a = machine.static_object(student, "a")
        b = machine.static_object(student, "b")
        machine.memory_tags.disarm()
        machine.space.write(a.address + (b.address - a.address) - 2, b"XXXX")


class TestClassification:
    def test_modern_faults_classify_to_their_defense(self):
        vrt = VrtBoundsViolation(0x1000, 8, 0x1000, 4, "write")
        assert classify_failure(vrt) == ("vrt", False)
        tag = TagMismatchFault(0x1000, 8, 1, 2, "write")
        assert classify_failure(tag) == ("memory-tagging", False)

    def test_all_detection_labels_include_the_modern_defenses(self):
        assert {"vrt", "memory-tagging", "shadow-return-stack"} <= set(
            ALL_DETECTION_LABELS
        )


def _outcome(attack_name, env):
    return attack_by_name(attack_name).run(env)


class TestBypassEdges:
    """The sweep baseline's edge cells, asserted directly.

    Each modern mitigation stops attack classes the StackGuard-era
    defenses miss — and is still bypassed by the attacks its granularity
    cannot see.  Both directions are pinned here so a simulator change
    that silently flips an edge fails locally, not just in the CI diff.
    """

    # -- VRT ---------------------------------------------------------------

    @pytest.mark.parametrize(
        "attack_name",
        ["internal-overflow", "info-leak-array", "memory-leak", "memory-leak-tracked"],
    )
    def test_vrt_bypasses(self, attack_name):
        # Intra-variable overflows and leaks stay inside recorded
        # bounds; a variable-granular table cannot see them.
        result = _outcome(attack_name, VRT_BOUNDS)
        assert result.succeeded, f"{attack_name} should still win under vrt"

    @pytest.mark.parametrize(
        "attack_name", ["overflow-via-remote-object", "info-leak-object"]
    )
    def test_vrt_detects_what_checked_placement_misses(self, attack_name):
        result = _outcome(attack_name, VRT_BOUNDS)
        assert result.detected_by == "vrt"

    def test_vrt_detects_construction_overflow(self):
        result = _outcome("overflow-via-construction", VRT_BOUNDS)
        assert not result.succeeded
        assert result.detected_by == "vrt"

    # -- memory tagging ----------------------------------------------------

    @pytest.mark.parametrize(
        "attack_name",
        [
            "internal-overflow",
            "info-leak-array",
            "info-leak-object",
            "memory-leak",
            "memory-leak-tracked",
        ],
    )
    def test_tagging_bypasses(self, attack_name):
        result = _outcome(attack_name, MEMORY_TAGGING)
        assert result.succeeded, f"{attack_name} should still win under tagging"

    def test_tagging_detects_remote_object_overflow(self):
        result = _outcome("overflow-via-remote-object", MEMORY_TAGGING)
        assert result.detected_by == "memory-tagging"

    # -- shadow call stack -------------------------------------------------

    def test_shadow_stack_stops_control_flow_only(self):
        from repro.attacks import SHADOW_RETURN_STACK

        caught = _outcome("stack-return-address", SHADOW_RETURN_STACK)
        assert caught.detected_by == "shadow-return-stack"
        data_only = _outcome("data-variable-overwrite", SHADOW_RETURN_STACK)
        assert data_only.succeeded

    # -- cross-defense sanity ---------------------------------------------

    def test_no_defense_stops_everything(self):
        # The paper's thesis survives the modern roster: every column
        # has at least one winning attack.
        for env in (VRT_BOUNDS, MEMORY_TAGGING):
            wins = [s.name for s in all_attacks() if s.run(env).succeeded]
            assert wins, f"{env.label} unexpectedly stops the whole gallery"

"""Symbol/type information for the analyzer.

Builds real record layouts for MiniC++ classes by lowering them onto the
:mod:`repro.cxx` layout engine — so the analyzer's ``sizeof`` is the
*same* sizeof the simulator executes with, including the vptr the paper
warns manual estimates miss (Section 5.1: "Compilers often add member
variables such as the virtual table pointer").
"""

from __future__ import annotations

from typing import Optional

from ..cxx import classdef as cxx_classdef
from ..cxx import layout as cxx_layout
from ..cxx import types as cxx_types
from . import ast_nodes as ast

#: Scalar sizes on the ILP32 target.
SCALAR_SIZES = {
    "int": 4,
    "unsigned int": 4,
    "unsigned": 4,
    "long": 4,
    "unsigned long": 4,
    "short": 2,
    "unsigned short": 2,
    "char": 1,
    "unsigned char": 1,
    "bool": 1,
    "float": 4,
    "double": 8,
    "void": 1,
    "size_t": 4,
    "string": 8,  # a small-string handle on the simulated target
}

_SCALAR_CTYPES = {
    "int": cxx_types.INT,
    "unsigned int": cxx_types.UINT,
    "unsigned": cxx_types.UINT,
    "short": cxx_types.SHORT,
    "char": cxx_types.CHAR,
    "bool": cxx_types.BOOL,
    "float": cxx_types.FLOAT,
    "double": cxx_types.DOUBLE,
}


class SymbolTable:
    """Type sizes and class metadata for one parsed program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self._engine = cxx_layout.LayoutEngine()
        self._class_defs: dict[str, cxx_classdef.ClassDef] = {}
        self._decls: dict[str, ast.ClassDecl] = {
            cls.name: cls for cls in program.classes
        }
        for cls in program.classes:
            self._lower_class(cls.name)

    # -- class lowering ---------------------------------------------------

    def _lower_class(self, name: str) -> Optional[cxx_classdef.ClassDef]:
        if name in self._class_defs:
            return self._class_defs[name]
        decl = self._decls.get(name)
        if decl is None:
            return None
        bases = []
        for base_name in decl.bases:
            lowered = self._lower_class(base_name)
            if lowered is not None:
                bases.append(lowered)
        fields = []
        for field in decl.fields:
            ctype = self._lower_type(field.type)
            if ctype is None:
                ctype = cxx_types.VOID_PTR  # opaque member; pointer-sized
            fields.append((field.name, ctype))
        virtuals = [
            cxx_classdef.VirtualMethod(
                method.name, _virtual_stub(name, method.name)
            )
            for method in decl.methods
            if method.virtual
        ]
        lowered = cxx_classdef.make_class(
            name, fields=fields, bases=bases, virtuals=virtuals
        )
        self._class_defs[name] = lowered
        return lowered

    def _lower_type(self, type_ref: ast.TypeRef) -> Optional[cxx_types.CType]:
        if type_ref.is_pointer:
            return cxx_types.VOID_PTR
        if type_ref.is_array:
            element = self._lower_type(
                ast.TypeRef(name=type_ref.name, pointer_depth=0)
            )
            length = constant_int(type_ref.array_size)
            if element is None or length is None or length <= 0:
                return None
            return cxx_types.array_of(element, length)
        if type_ref.name in _SCALAR_CTYPES:
            return _SCALAR_CTYPES[type_ref.name]
        if type_ref.name in self._decls:
            lowered = self._lower_class(type_ref.name)
            if lowered is None:
                return None
            return cxx_layout.class_type(lowered, self._engine)
        return None

    # -- queries ------------------------------------------------------------

    def cxx_class(self, name: str) -> Optional[cxx_classdef.ClassDef]:
        """The lowered :class:`~repro.cxx.classdef.ClassDef` for a MiniC++
        class — shared by the analyzer (sizeof) and the dynamic executor
        (real placement on the simulator)."""
        return self._class_defs.get(name)

    def layout_engine(self) -> cxx_layout.LayoutEngine:
        """The engine the sizes were computed with."""
        return self._engine

    def is_class(self, name: str) -> bool:
        """True for user-declared classes."""
        return name in self._decls

    def is_polymorphic(self, name: str) -> bool:
        """True when the class (or a base) declares a virtual method."""
        lowered = self._class_defs.get(name)
        return lowered is not None and lowered.is_polymorphic()

    def sizeof_name(self, type_name: str) -> Optional[int]:
        """``sizeof(type_name)`` — None when unknown."""
        if type_name.endswith("*"):
            return 4
        if type_name in self._class_defs:
            return self._engine.sizeof(self._class_defs[type_name])
        return SCALAR_SIZES.get(type_name)

    def sizeof_type_ref(self, type_ref: ast.TypeRef) -> Optional[int]:
        """Size of a declared variable of this type."""
        if type_ref.is_pointer:
            return 4
        base = self.sizeof_name(type_ref.name)
        if base is None:
            return None
        if type_ref.is_array:
            length = constant_int(type_ref.array_size)
            if length is None:
                return None
            return base * length
        return base

    def element_size(self, type_name: str) -> Optional[int]:
        """Per-element size for ``new type[ n ]``."""
        return self.sizeof_name(type_name)

    def class_decl(self, name: str) -> Optional[ast.ClassDecl]:
        """The AST declaration of a class."""
        return self._decls.get(name)


def _virtual_stub(class_name: str, method_name: str):
    """Runtime body for a declaration-only virtual method: record the
    dispatch (so executed programs can observe *which* implementation a
    corrupted vptr selected) and return its qualified name."""
    qualified = f"{class_name}::{method_name}"

    def stub(machine, instance=None, *args):
        machine.record_event(f"dispatched {qualified}")
        return qualified

    return stub


def constant_int(expr: Optional[ast.Expr]) -> Optional[int]:
    """Fold an expression to an int constant where trivially possible
    (literals and +,-,* over constants); None otherwise."""
    if expr is None:
        return None
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = constant_int(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, ast.Binary):
        left = constant_int(expr.left)
        right = constant_int(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/" and right != 0:
            return left // right
    return None

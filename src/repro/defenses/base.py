"""Defense descriptors and the attack × defense evaluation harness.

Section 5 of the paper surveys protections for modifiable and legacy
software.  Each :class:`Defense` names an :class:`Environment` (the
mechanical hardening) plus the paper's claims about it; the harness runs
the full attack gallery against every defense and renders the E14
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from ..attacks.base import (
    CHECKED_PLACEMENT,
    MEMORY_TAGGING,
    NX_STACK,
    SANITIZE,
    SHADOW_MEMORY,
    SHADOW_RETURN_STACK,
    STACKGUARD,
    UNPROTECTED,
    VRT_BOUNDS,
    VTABLE_INTEGRITY,
    AttackResult,
    AttackScenario,
    Environment,
)


@dataclass(frozen=True)
class Defense:
    """One protection technique under evaluation."""

    name: str
    environment: Environment
    paper_ref: str = ""
    deployment: str = "modifiable"  # "modifiable" | "legacy" | "none"
    notes: str = ""

    def fresh_environment(self) -> Environment:
        """A per-run copy of the environment (fresh ``machine_config``
        too), so no state can bleed between matrix cells."""
        return replace(
            self.environment, machine_config=replace(self.environment.machine_config)
        )


BASELINE = Defense(
    name="none",
    environment=UNPROTECTED,
    paper_ref="§1 (the paper's testbed)",
    deployment="none",
    notes="unprotected gcc 4.4.3-style build",
)

STACKGUARD_DEFENSE = Defense(
    name="stackguard",
    environment=STACKGUARD,
    paper_ref="§5.2 [8]",
    deployment="legacy",
    notes="random canary checked in the epilogue; selective overwrites evade it",
)

CORRECT_CODING = Defense(
    name="checked-placement",
    environment=CHECKED_PLACEMENT,
    paper_ref="§5.1",
    deployment="modifiable",
    notes="sizeof()-based bounds check at every placement site",
)

SHADOW_DEFENSE = Defense(
    name="shadow-memory",
    environment=SHADOW_MEMORY,
    paper_ref="§5.2 (runtime prevention schemes)",
    deployment="legacy",
    notes="red zones around victim arenas; catches stray writes",
)

NX_DEFENSE = Defense(
    name="nx-stack",
    environment=NX_STACK,
    paper_ref="§5.2 (non-executable stacks)",
    deployment="legacy",
    notes="stops code injection only; arc injection unaffected",
)

SANITIZE_DEFENSE = Defense(
    name="sanitize-on-reuse",
    environment=SANITIZE,
    paper_ref="§5.1 (information leaks)",
    deployment="modifiable",
    notes="memset before arena reuse; stops information leakage",
)

SHADOW_STACK_DEFENSE = Defense(
    name="shadow-ret-stack",
    environment=SHADOW_RETURN_STACK,
    paper_ref="§5.2 [27][20] (return address stack)",
    deployment="legacy",
    notes="machine-integrated shadow call stack; survives longjmp teardown",
)

VTABLE_INTEGRITY_DEFENSE = Defense(
    name="vtable-integrity",
    environment=VTABLE_INTEGRITY,
    paper_ref="§3.8.2 countermeasure (forward-edge CFI)",
    deployment="legacy",
    notes="every virtual dispatch validates the vptr against emitted vtables",
)

VRT_DEFENSE = Defense(
    name="vrt",
    environment=VRT_BOUNDS,
    paper_ref="§5.2 rebuttal (arXiv 1909.07821 variable record table)",
    deployment="legacy",
    notes="runtime per-variable bounds table consulted at placements and accesses",
)

TAGGING_DEFENSE = Defense(
    name="memory-tagging",
    environment=MEMORY_TAGGING,
    paper_ref="§5.2 rebuttal (GANDALF/MTE tag-checked segments)",
    deployment="legacy",
    notes="4-bit allocation colours; cross-colour stores and typed accesses fault",
)

ALL_DEFENSES: tuple[Defense, ...] = (
    BASELINE,
    STACKGUARD_DEFENSE,
    CORRECT_CODING,
    SHADOW_DEFENSE,
    NX_DEFENSE,
    SANITIZE_DEFENSE,
    SHADOW_STACK_DEFENSE,
    VTABLE_INTEGRITY_DEFENSE,
    VRT_DEFENSE,
    TAGGING_DEFENSE,
)


def defense_by_name(name: str) -> Defense:
    """Look a defense up by its ``name`` attribute."""
    for defense in ALL_DEFENSES:
        if defense.name == name:
            return defense
    choices = ", ".join(defense.name for defense in ALL_DEFENSES)
    raise KeyError(f"no defense named '{name}' (choose from: {choices})")


@dataclass
class MatrixCell:
    """One (attack, defense) outcome."""

    attack: str
    defense: str
    result: AttackResult

    @property
    def summary(self) -> str:
        """Compact cell text for the rendered table."""
        if self.result.succeeded:
            return "ATTACK-WINS"
        if self.result.detected_by:
            return f"detected({self.result.detected_by})"
        if self.result.crashed:
            return "crashed"
        return "prevented"


@dataclass
class EvaluationMatrix:
    """The E14 attack × defense matrix.

    Cells are indexed by ``(attack, defense)`` as they are added, so
    :meth:`cell` is O(1) and :meth:`render` is O(cells) — the previous
    linear-scan lookup made rendering quadratic in the cell count, which
    the full gallery × defense sweep turned into real seconds.
    """

    defenses: Sequence[Defense]
    cells: list[MatrixCell] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: dict[tuple[str, str], MatrixCell] = {
            (cell.attack, cell.defense): cell for cell in self.cells
        }

    def add(self, cell: MatrixCell) -> None:
        """Append a cell and index it."""
        self.cells.append(cell)
        self._index[(cell.attack, cell.defense)] = cell

    def _reindex(self) -> None:
        # Tolerate callers that appended to ``cells`` directly (the old
        # public surface) by rebuilding lazily when the index is stale.
        self._index = {(cell.attack, cell.defense): cell for cell in self.cells}

    def cell(self, attack_name: str, defense_name: str) -> Optional[MatrixCell]:
        """Look one outcome up (O(1))."""
        if len(self._index) != len(self.cells):
            self._reindex()
        return self._index.get((attack_name, defense_name))

    def attack_names(self) -> list[str]:
        """Row labels, in insertion order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.attack)
        return list(seen)

    def wins_for_defense(self, defense_name: str) -> int:
        """How many attacks still succeed under a defense."""
        return sum(
            1
            for cell in self.cells
            if cell.defense == defense_name and cell.result.succeeded
        )

    def render(self, column_width: int = 22) -> str:
        """A fixed-width table suitable for harness output."""
        if len(self._index) != len(self.cells):
            self._reindex()
        header = f"{'attack':40s}" + "".join(
            f"{d.name:>{column_width}s}" for d in self.defenses
        )
        lines = [header, "-" * len(header)]
        wins = {d.name: 0 for d in self.defenses}
        for cell in self.cells:
            if cell.result.succeeded and cell.defense in wins:
                wins[cell.defense] += 1
        for attack_name in self.attack_names():
            row = f"{attack_name:40s}"
            for defense in self.defenses:
                cell = self._index.get((attack_name, defense.name))
                row += f"{cell.summary if cell else '?':>{column_width}s}"
            lines.append(row)
        totals = f"{'attacks succeeding':40s}" + "".join(
            f"{wins[d.name]:>{column_width}d}" for d in self.defenses
        )
        lines.append("-" * len(header))
        lines.append(totals)
        return "\n".join(lines)


def evaluate_matrix(
    scenarios: Iterable[AttackScenario],
    defenses: Sequence[Defense] = ALL_DEFENSES,
) -> EvaluationMatrix:
    """Run every scenario under every defense.

    Each cell gets a *fresh* environment (``Defense.fresh_environment``)
    rather than the defense's shared instance: reusing one environment
    object across scenarios let machine-config state bleed between
    cells, making outcomes depend on scenario order.
    """
    matrix = EvaluationMatrix(defenses=tuple(defenses))
    for scenario in scenarios:
        for defense in defenses:
            result = scenario.run(defense.fresh_environment())
            matrix.add(
                MatrixCell(attack=scenario.name, defense=defense.name, result=result)
            )
    return matrix

"""AST for MiniC++ — the C++ subset the paper's listings are written in.

The analyzer (Section 5's future-work tool) parses real source text into
these nodes.  The subset covers everything Listings 1–23 use: classes
with inheritance and virtual methods, globals, functions, placement and
ordinary ``new``/``delete``, ``cin >>`` input, pointer/array expressions
and the usual statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union


@dataclass(frozen=True)
class Node:
    """Base AST node; ``line`` points back into the source."""

    line: int = field(default=0, compare=False)


# --------------------------------------------------------------------------
# expressions


@dataclass(frozen=True)
class Expr(Node):
    """Base expression."""


@dataclass(frozen=True)
class IntLit(Expr):
    value: int = 0


@dataclass(frozen=True)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(frozen=True)
class StrLit(Expr):
    value: str = ""


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool = False


@dataclass(frozen=True)
class NullLit(Expr):
    """``NULL`` / ``nullptr``."""


@dataclass(frozen=True)
class Name(Expr):
    ident: str = ""


@dataclass(frozen=True)
class Unary(Expr):
    """``&x``, ``*p``, ``-x``, ``!x``, ``++x`` (prefix)."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Member(Expr):
    """``obj.name`` or ``ptr->name``."""

    obj: Expr = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False


@dataclass(frozen=True)
class Index(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Call(Expr):
    """``f(args)`` or ``recv.f(args)`` / ``recv->f(args)``."""

    func: str = ""
    args: tuple = ()
    receiver: Optional[Expr] = None


@dataclass(frozen=True)
class SizeOf(Expr):
    """``sizeof(TypeName)`` or ``sizeof(expr)``."""

    type_name: Optional[str] = None
    expr: Optional[Expr] = None


@dataclass(frozen=True)
class NewExpr(Expr):
    """Every flavour of ``new``.

    ``placement`` is the address expression of ``new (addr) ...``;
    ``array_count`` distinguishes ``new T[n]``; ``args`` are constructor
    arguments.
    """

    type_name: str = ""
    placement: Optional[Expr] = None
    array_count: Optional[Expr] = None
    args: tuple = ()

    @property
    def is_placement(self) -> bool:
        return self.placement is not None

    @property
    def is_array(self) -> bool:
        return self.array_count is not None


# --------------------------------------------------------------------------
# statements


@dataclass(frozen=True)
class Stmt(Node):
    """Base statement."""


@dataclass(frozen=True)
class TypeRef:
    """A declared type: base name, pointer depth, optional array length."""

    name: str = ""
    pointer_depth: int = 0
    array_size: Optional[Expr] = None

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    @property
    def is_array(self) -> bool:
        return self.array_size is not None

    def describe(self) -> str:
        suffix = "*" * self.pointer_depth + ("[]" if self.is_array else "")
        return f"{self.name}{suffix}"


@dataclass(frozen=True)
class VarDecl(Stmt):
    """``Type name = init;`` / ``Type name[size];`` / ``Type a, b;``
    (multi-declarators are split by the parser into several VarDecls)."""

    type: TypeRef = None  # type: ignore[assignment]
    name: str = ""
    init: Optional[Expr] = None


@dataclass(frozen=True)
class Assign(Stmt):
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class CinRead(Stmt):
    """``cin >> target [>> target2 ...]`` — the attacker's entry point."""

    targets: tuple = ()


@dataclass(frozen=True)
class CoutWrite(Stmt):
    """``cout << expr << ...`` — kept for completeness; sink for leaks."""

    values: tuple = ()


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class DeleteStmt(Stmt):
    target: Expr = None  # type: ignore[assignment]
    is_array: bool = False


@dataclass(frozen=True)
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass(frozen=True)
class Block(Stmt):
    statements: tuple = ()


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: Block = None  # type: ignore[assignment]
    else_body: Optional[Block] = None


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass(frozen=True)
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Block = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# declarations


@dataclass(frozen=True)
class FieldDecl:
    """A class data member."""

    type: TypeRef
    name: str
    line: int = 0


@dataclass(frozen=True)
class MethodDecl:
    """A class method (bodies are parsed but not analyzed inline)."""

    name: str
    return_type: TypeRef
    params: tuple
    virtual: bool = False
    body: Optional[Block] = None
    line: int = 0


@dataclass(frozen=True)
class ClassDecl(Node):
    name: str = ""
    bases: tuple = ()
    fields: tuple = ()
    methods: tuple = ()

    @property
    def has_virtual(self) -> bool:
        return any(method.virtual for method in self.methods)


@dataclass(frozen=True)
class Param:
    """A function parameter."""

    type: TypeRef
    name: str


@dataclass(frozen=True)
class FunctionDecl(Node):
    name: str = ""
    return_type: TypeRef = None  # type: ignore[assignment]
    params: tuple = ()
    body: Block = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Program(Node):
    """A translation unit: classes, globals, functions, in order."""

    classes: tuple = ()
    globals: tuple = ()
    functions: tuple = ()

    def _index(self, attr: str, decls: tuple) -> dict:
        # Lazily built name->decl maps; the interprocedural inliner looks
        # functions up per call site, so linear scans add up.  setdefault
        # keeps the first declaration, matching the old linear scan.
        # object.__setattr__ because Node is frozen; the map is derived
        # state, invisible to eq/hash (which use fields only).
        index = self.__dict__.get(attr)
        if index is None:
            index = {}
            for decl in decls:
                index.setdefault(decl.name, decl)
            object.__setattr__(self, attr, index)
        return index

    def function(self, name: str) -> FunctionDecl:
        """Look a function up by name."""
        try:
            return self._index("_function_index", self.functions)[name]
        except KeyError:
            raise KeyError(f"no function '{name}'") from None

    def class_decl(self, name: str) -> ClassDecl:
        """Look a class up by name."""
        try:
            return self._index("_class_index", self.classes)[name]
        except KeyError:
            raise KeyError(f"no class '{name}'") from None


def walk_expressions(node: Union[Expr, Stmt, None]):
    """Yield every expression nested under ``node`` (pre-order)."""
    if node is None:
        return
    if isinstance(node, Expr):
        yield node
        children: Sequence = ()
        if isinstance(node, Unary):
            children = (node.operand,)
        elif isinstance(node, Binary):
            children = (node.left, node.right)
        elif isinstance(node, Member):
            children = (node.obj,)
        elif isinstance(node, Index):
            children = (node.base, node.index)
        elif isinstance(node, Call):
            children = tuple(node.args) + (
                (node.receiver,) if node.receiver else ()
            )
        elif isinstance(node, NewExpr):
            children = tuple(node.args)
            if node.placement is not None:
                children += (node.placement,)
            if node.array_count is not None:
                children += (node.array_count,)
        elif isinstance(node, SizeOf) and node.expr is not None:
            children = (node.expr,)
        for child in children:
            yield from walk_expressions(child)
    elif isinstance(node, Stmt):
        for child_expr in _statement_expressions(node):
            yield from walk_expressions(child_expr)
        for child_stmt in _statement_children(node):
            yield from walk_expressions(child_stmt)


def _statement_expressions(stmt: Stmt) -> tuple:
    if isinstance(stmt, VarDecl):
        parts = tuple(p for p in (stmt.init, stmt.type.array_size) if p is not None)
        return parts
    if isinstance(stmt, Assign):
        return (stmt.target, stmt.value)
    if isinstance(stmt, CinRead):
        return tuple(stmt.targets)
    if isinstance(stmt, CoutWrite):
        return tuple(stmt.values)
    if isinstance(stmt, ExprStmt):
        return (stmt.expr,)
    if isinstance(stmt, DeleteStmt):
        return (stmt.target,)
    if isinstance(stmt, ReturnStmt):
        return (stmt.value,) if stmt.value is not None else ()
    if isinstance(stmt, If):
        return (stmt.cond,)
    if isinstance(stmt, While):
        return (stmt.cond,)
    if isinstance(stmt, For):
        return (stmt.cond,) if stmt.cond is not None else ()
    return ()


def _statement_children(stmt: Stmt) -> tuple:
    if isinstance(stmt, Block):
        return tuple(stmt.statements)
    if isinstance(stmt, If):
        children: tuple = (stmt.then_body,)
        if stmt.else_body is not None:
            children += (stmt.else_body,)
        return children
    if isinstance(stmt, While):
        return (stmt.body,)
    if isinstance(stmt, For):
        parts: tuple = ()
        if stmt.init is not None:
            parts += (stmt.init,)
        if stmt.step is not None:
            parts += (stmt.step,)
        return parts + (stmt.body,)
    return ()


def walk_statements(stmt: Optional[Stmt]):
    """Yield every statement nested under ``stmt`` (pre-order)."""
    if stmt is None:
        return
    yield stmt
    for child in _statement_children(stmt):
        yield from walk_statements(child)


def iter_expressions(root: Optional[Stmt]):
    """Yield every expression under ``root`` exactly once.

    ``walk_statements`` × ``walk_expressions`` re-visits an expression
    once per enclosing statement (``walk_expressions`` on a statement
    recurses into its child statements too), which is quadratic in
    nesting depth.  Pairing each statement with only its *own* top-level
    expressions keeps the walk linear.
    """
    for stmt in walk_statements(root):
        for top in _statement_expressions(stmt):
            yield from walk_expressions(top)

"""Tests for the regression store (repro.regress.store)."""

import json

import pytest

from repro.fuzz import Divergence, OracleConfig, run_oracles
from repro.regress import (
    BUNDLE_KINDS,
    BUNDLE_SCHEMA,
    RegressionBundle,
    RegressionStore,
    bundle_from_divergence,
    bundle_from_observation,
    current_versions,
    triage_label,
)

#: A source that diverges static-only under stdin (8,): the detector
#: flags the tainted count, but this concrete run stays in bounds.
DIVERGING = (
    "char pool[64];\n"
    "void run() {\n"
    "  int n = 0;\n"
    "  cin >> n;\n"
    "  char* p = new (pool) char[n];\n"
    "}\n"
)

AGREEING = "void run() { int x = 1; }\n"


def make_bundle(source=DIVERGING, stdin=(8,), triage="", **kwargs):
    config = OracleConfig()
    observation = run_oracles(source, stdin, config)
    bundle = bundle_from_observation(
        source, stdin, config, observation, triage=triage
    )
    for name, value in kwargs.items():
        setattr(bundle, name, value)
    return bundle


class TestVersionsAndLabels:
    def test_current_versions_keys(self):
        versions = current_versions()
        assert set(versions) == {
            "detector",
            "legacy_rules",
            "event_vocabulary",
            "triage_rules",
        }
        assert all(isinstance(v, str) and v for v in versions.values())

    def test_current_versions_stable(self):
        assert current_versions() == current_versions()

    def test_triage_label(self):
        assert triage_label("taint-quantifier: concrete run in bounds") == (
            "taint-quantifier"
        )
        assert triage_label("manual: reviewed") == "manual"
        assert triage_label("") == ""


class TestBundle:
    def test_roundtrip(self):
        bundle = make_bundle(family="f", meta={"seed": 3})
        restored = RegressionBundle.from_json(bundle.to_json())
        assert restored.to_json() == bundle.to_json()
        assert restored.bundle_id == bundle.bundle_id

    def test_id_covers_replay_inputs_only(self):
        bundle = make_bundle()
        base = bundle.bundle_id
        # Expectations and triage never move the address...
        bundle.triage = "manual: looked fine"
        bundle.expected_kind = "agree"
        bundle.family = "renamed"
        assert bundle.bundle_id == base
        # ...but every replay input does.
        for change in (
            {"stdin": (9,)},
            {"step_budget": 123},
            {"canary": False},
            {"source": bundle.source + "\n"},
        ):
            other = make_bundle()
            for name, value in change.items():
                setattr(other, name, value)
            assert other.bundle_id != base, change

    def test_expected_kind_captures_oracle_outcome(self):
        assert make_bundle().expected_kind == "static-only"
        assert make_bundle(source=AGREEING, stdin=()).expected_kind == "agree"
        invalid = make_bundle(source="@@ not a program", stdin=())
        assert invalid.expected_kind == "invalid"

    def test_status(self):
        assert make_bundle(source=AGREEING, stdin=()).status == "agree"
        # A fresh divergence pins its auto-triage class at record time —
        # otherwise it would drift on its very first replay.
        auto = make_bundle()
        assert auto.status == "known-benign"
        assert triage_label(auto.triage) == "taint-quantifier"
        assert make_bundle(triage="").status == "known-benign"
        assert make_bundle(triage="manual: ok").status == "known-benign"
        untriaged = make_bundle()
        untriaged.triage = ""
        assert untriaged.status == "open"

    def test_from_dict_rejects_bad_schema_and_kind(self):
        data = json.loads(make_bundle().to_json())
        bad_schema = dict(data, schema=BUNDLE_SCHEMA + 1)
        with pytest.raises(ValueError, match="schema"):
            RegressionBundle.from_dict(bad_schema)
        bad_kind = json.loads(make_bundle().to_json())
        bad_kind["expected"]["kind"] = "sideways"
        with pytest.raises(ValueError, match="kind"):
            RegressionBundle.from_dict(bad_kind)
        assert "sideways" not in BUNDLE_KINDS

    def test_bundle_from_divergence_prefers_minimized(self):
        div = Divergence(
            fingerprint="abc",
            kind="static-only",
            static_rules=("PN-TAINTED-COUNT",),
            dynamic_events=(),
            family="f",
            entry="run",
            source=DIVERGING + "// big original\n",
            stdin=(8, 9),
            minimized_source=DIVERGING,
            minimized_stdin=(8,),
        )
        bundle = bundle_from_divergence(div, OracleConfig())
        assert bundle.source == DIVERGING
        assert bundle.stdin == (8,)


class TestStore:
    def test_record_dispositions(self, tmp_path):
        store = RegressionStore(tmp_path / "store")
        bundle = make_bundle()
        bundle_id, disposition = store.record(bundle)
        assert disposition == "created"
        assert store.record(bundle) == (bundle_id, "unchanged")
        # Same input, different expectations: the recorded baseline wins
        # over an auto-recorder...
        moved = make_bundle(triage="manual: reviewed")
        assert store.record(moved) == (bundle_id, "kept")
        assert store.load(bundle_id).triage == bundle.triage
        # ...unless the writer explicitly overwrites (rebaseline).
        assert store.record(moved, overwrite=True) == (bundle_id, "updated")
        assert store.load(bundle_id).triage == "manual: reviewed"

    def test_listing_is_sorted_and_deduplicated(self, tmp_path):
        store = RegressionStore(tmp_path / "store")
        for stdin in ((8,), (9,), (8,)):  # (8,) recorded twice
            store.record(make_bundle(stdin=stdin))
        assert len(store) == 2
        assert store.ids() == sorted(store.ids())
        assert [b.bundle_id for b in store.bundles()] == store.ids()

    def test_remove(self, tmp_path):
        store = RegressionStore(tmp_path / "store")
        bundle_id, _ = store.record(make_bundle())
        assert store.remove(bundle_id)
        assert not store.remove(bundle_id)
        assert len(store) == 0

    def test_record_is_atomic_and_leaves_no_tmp(self, tmp_path):
        store = RegressionStore(tmp_path / "store")
        bundle_id, _ = store.record(make_bundle())
        store.record(make_bundle(triage="manual: reviewed"), overwrite=True)
        assert list(store.directory.glob("*.tmp")) == []
        assert store.load(bundle_id).triage == "manual: reviewed"

    def test_interrupted_write_cannot_truncate_a_bundle(
        self, tmp_path, monkeypatch
    ):
        from pathlib import Path

        store = RegressionStore(tmp_path / "store")
        bundle_id, _ = store.record(make_bundle())
        original = store.load(bundle_id)

        real_write_text = Path.write_text

        def crashing_write_text(self, text, *args, **kwargs):
            # A crash mid-write: half the document lands, then the
            # process dies before the atomic rename.
            real_write_text(self, text[: len(text) // 2], *args, **kwargs)
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(Path, "write_text", crashing_write_text)
        moved = make_bundle(triage="manual: reviewed")
        with pytest.raises(OSError, match="simulated crash"):
            store.record(moved, overwrite=True)
        monkeypatch.undo()
        # The published bundle is byte-for-byte untouched...
        assert store.load(bundle_id).to_json() == original.to_json()
        # ...and gc reaps the orphaned partial write, not the bundle.
        swept = store.gc()
        assert store.ids() == [bundle_id]
        assert all(
            reason == "orphaned partial write"
            for reason in swept["removed"].values()
        )

    def test_gc_sweeps_orphaned_tmp_files(self, tmp_path):
        store = RegressionStore(tmp_path / "store")
        keep_id, _ = store.record(make_bundle())
        (store.directory / "rb-feed.json.1a2b.3c4d.tmp").write_text("{par")
        dry = store.gc(dry_run=True)
        assert dry["removed"] == {
            "rb-feed.json.1a2b.3c4d.tmp": "orphaned partial write"
        }
        assert (store.directory / "rb-feed.json.1a2b.3c4d.tmp").is_file()
        store.gc()
        assert not (store.directory / "rb-feed.json.1a2b.3c4d.tmp").exists()
        assert store.ids() == [keep_id]

    def test_gc_sweeps_corrupt_and_renamed(self, tmp_path):
        store = RegressionStore(tmp_path / "store")
        keep_id, _ = store.record(make_bundle())
        corrupt_id, _ = store.record(make_bundle(stdin=(9,)))
        rename_id, _ = store.record(make_bundle(stdin=(10,)))
        with open(store.path_for(corrupt_id), "a") as handle:
            handle.write("garbage")
        store.path_for(rename_id).rename(
            store.directory / "rb-deadbeefdeadbeefdead.json"
        )
        dry = store.gc(dry_run=True)
        assert dry["scanned"] == 3 and dry["kept"] == 1
        assert len(dry["removed"]) == 2
        assert len(store) == 3  # dry run touches nothing

        swept = store.gc()
        assert set(swept["removed"]) == set(dry["removed"])
        assert store.ids() == [keep_id]

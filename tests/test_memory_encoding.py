"""Tests for the little-endian scalar codec (the ILP32 target model)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ApiMisuseError
from repro.memory import (
    decode_c_string,
    decode_double,
    decode_float,
    decode_int,
    decode_pointer,
    encode_c_string,
    encode_double,
    encode_float,
    encode_int,
    encode_pointer,
)


class TestIntCodec:
    def test_little_endian_order(self):
        assert encode_int(0x12345678, 4) == b"\x78\x56\x34\x12"

    def test_widths(self):
        assert len(encode_int(1, 1)) == 1
        assert len(encode_int(1, 2)) == 2
        assert len(encode_int(1, 4)) == 4
        assert len(encode_int(1, 8)) == 8

    def test_negative_two_complement(self):
        assert encode_int(-1, 4) == b"\xff\xff\xff\xff"

    def test_wrapping_like_c_narrowing(self):
        # Storing an address-sized value into an int wraps, not raises —
        # attacks depend on this (e.g. writing a pointer via ssn[i]).
        assert decode_int(encode_int(2**32 + 5, 4), signed=False) == 5

    def test_signed_reinterpretation(self):
        data = encode_int(0xFFFFFFFF, 4, signed=False)
        assert decode_int(data, signed=True) == -1

    def test_bad_width_rejected(self):
        with pytest.raises(ApiMisuseError):
            encode_int(1, 3)
        with pytest.raises(ApiMisuseError):
            decode_int(b"\x00\x00\x00")

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_roundtrip_signed32(self, value):
        assert decode_int(encode_int(value, 4), signed=True) == value

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_unsigned32(self, value):
        assert decode_int(encode_int(value, 4, signed=False), signed=False) == value

    @given(st.integers(), st.sampled_from([1, 2, 4, 8]))
    def test_wrapping_is_modular(self, value, width):
        decoded = decode_int(encode_int(value, width, signed=False), signed=False)
        assert decoded == value % (2**(8 * width))


class TestFloatCodec:
    def test_double_roundtrip(self):
        assert decode_double(encode_double(3.9)) == 3.9

    def test_double_is_8_bytes(self):
        assert len(encode_double(0.0)) == 8

    def test_float_roundtrip_lossy(self):
        assert decode_float(encode_float(0.5)) == 0.5

    def test_garbage_bytes_decode_to_some_double(self):
        # Overflow writes arbitrary ints over a double; decoding must not
        # raise (Listing 11's corrupted gpa is a tiny denormal).
        value = decode_double(b"\x11\x11\x11\x11\x22\x22\x22\x22")
        assert isinstance(value, float)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_roundtrip_property(self, value):
        assert decode_double(encode_double(value)) == value

    def test_nan_roundtrip(self):
        assert math.isnan(decode_double(encode_double(float("nan"))))

    def test_size_validation(self):
        with pytest.raises(ApiMisuseError):
            decode_double(b"\x00" * 4)
        with pytest.raises(ApiMisuseError):
            decode_float(b"\x00" * 8)


class TestPointerCodec:
    def test_roundtrip(self):
        assert decode_pointer(encode_pointer(0xBFFFF000)) == 0xBFFFF000

    def test_is_4_bytes(self):
        assert len(encode_pointer(0)) == 4

    def test_size_validation(self):
        with pytest.raises(ApiMisuseError):
            decode_pointer(b"\x00" * 8)


class TestCStringCodec:
    def test_nul_terminated(self):
        assert encode_c_string("ab") == b"ab\x00"

    def test_strncpy_truncation_drops_terminator(self):
        # strncpy semantics: exactly n bytes, no terminator if src >= n.
        assert encode_c_string("abcdef", buffer_size=4) == b"abcd"

    def test_strncpy_zero_padding(self):
        assert encode_c_string("ab", buffer_size=6) == b"ab\x00\x00\x00\x00"

    def test_decode_stops_at_nul(self):
        assert decode_c_string(b"hi\x00there") == "hi"

    def test_decode_without_nul_reads_all(self):
        assert decode_c_string(b"abc") == "abc"

    def test_negative_buffer_rejected(self):
        with pytest.raises(ApiMisuseError):
            encode_c_string("x", buffer_size=-1)

    @given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=255), max_size=64))
    def test_roundtrip(self, text):
        assert decode_c_string(encode_c_string(text)) == text

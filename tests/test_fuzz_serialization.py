"""Serialization round-trips over fuzz-generated programs.

The fuzzer's seed families produce MiniC++ classes nobody hand-wrote;
lowering them through :class:`~repro.analysis.symbols.SymbolTable` and
pushing instances through the json_codec / remote wire path checks that
the serialization layer holds for arbitrary generated layouts, not just
the paper's Student classes.
"""

import random

from repro.analysis import SymbolTable, parse
from repro.core import new_object
from repro.fuzz import seed_inputs
from repro.runtime import Machine
from repro.serialization import (
    RemoteObject,
    construct_from_remote,
    serialize,
    wire_size_estimate,
)
from repro.taint import TaintEngine, TaintLabel


def _generated_classes():
    """Every class any seed program declares, lowered and ready to
    instantiate (paired with a fresh Machine per program)."""
    pairs = []
    seen = set()
    for fuzz_input in seed_inputs(5):
        try:
            program = parse(fuzz_input.source)
        except Exception:
            continue
        if not program.classes:
            continue
        symbols = SymbolTable(program)
        for decl in program.classes:
            if decl.name in seen:
                continue
            lowered = symbols.cxx_class(decl.name)
            if lowered is not None and lowered.fields:
                seen.add(decl.name)
                pairs.append(lowered)
    return pairs


def _fill(instance, salt: int) -> None:
    """Deterministic, type-respecting values into every field slot."""
    for index, slot in enumerate(instance.layout.field_slots):
        current = instance.get(slot.name)
        if isinstance(current, list):
            instance.set(
                slot.name,
                [(salt + index + k) % 100 for k in range(len(current))],
            )
        elif isinstance(current, float):
            instance.set(slot.name, float(salt + index) + 0.5)
        elif isinstance(current, int):
            instance.set(slot.name, (salt * 7 + index) % 120)


class TestJsonCodecOverGeneratedClasses:
    def test_seed_programs_produce_classes(self):
        assert len(_generated_classes()) >= 4

    def test_serialize_to_json_from_json_reconstruct(self):
        """instance → wire → JSON text → wire → fresh instance: the
        final serialize must reproduce the original field map exactly."""
        for salt, class_def in enumerate(_generated_classes(), start=3):
            machine = Machine()
            original = new_object(machine, class_def)
            _fill(original, salt)
            wire = serialize(original)

            parsed = RemoteObject.from_json(wire.to_json())
            assert parsed.class_name == class_def.name

            target = Machine()
            arena = target.static_object(class_def, "arena")
            rebuilt = construct_from_remote(
                target, class_def, arena.address, parsed
            )
            assert dict(serialize(rebuilt).fields) == dict(wire.fields), (
                class_def.name
            )

    def test_wire_object_is_tainted_after_json_parse(self):
        for class_def in _generated_classes()[:2]:
            machine = Machine()
            wire = serialize(new_object(machine, class_def))
            assert not wire.tainted  # locally read memory is clean
            assert RemoteObject.from_json(wire.to_json()).tainted

    def test_deserializer_marks_taint_on_generated_layouts(self):
        class_def = _generated_classes()[0]
        machine = Machine()
        wire = serialize(new_object(machine, class_def))
        remote = RemoteObject.from_json(wire.to_json())

        target = Machine()
        taint = TaintEngine(target.space)
        arena = target.static_object(class_def, "arena")
        construct_from_remote(
            target, class_def, arena.address, remote, taint=taint
        )
        first = arena.layout.field_slots[0]
        assert TaintLabel.REMOTE_OBJECT in taint.labels_at(
            arena.address + first.offset, first.ctype.size
        )

    def test_surplus_wire_fields_are_ignored(self):
        """A malicious wire object padded with fields the class never
        declared: the deserializer writes only declared slots."""
        class_def = _generated_classes()[0]
        machine = Machine()
        original = new_object(machine, class_def)
        _fill(original, 11)
        wire = serialize(original)

        hostile = RemoteObject(
            class_name=wire.class_name,
            fields={**dict(wire.fields), "evil_extra": list(range(64))},
        )
        target = Machine()
        arena = target.static_object(class_def, "arena")
        rebuilt = construct_from_remote(
            target, class_def, arena.address, hostile
        )
        assert dict(serialize(rebuilt).fields) == dict(wire.fields)

    def test_wire_size_uncorrelated_with_memory_size(self):
        """The paper's misjudgment mechanism: JSON byte counts say
        nothing about sizeof — check both orderings occur across the
        generated layouts."""
        rng = random.Random(2)
        sizes = []
        for class_def in _generated_classes():
            machine = Machine()
            instance = new_object(machine, class_def)
            _fill(instance, rng.randrange(50))
            sizes.append(
                (wire_size_estimate(serialize(instance)), instance.size)
            )
        assert any(wire > mem for wire, mem in sizes)


class TestRemoteServiceRoundTrip:
    def test_malicious_student_into_generated_arena(self):
        """Listing 6's shape with fuzz-generated victims: a malicious
        service's oversized wire object deserializes into whatever class
        the generator produced without writing undeclared fields."""
        from repro.serialization import malicious_service

        remote = malicious_service().get_student()
        for class_def in _generated_classes()[:3]:
            target = Machine()
            arena = target.static_object(class_def, "arena")
            rebuilt = construct_from_remote(
                target, class_def, arena.address, remote
            )
            declared = {slot.name for slot in rebuilt.layout.field_slots}
            for name in remote.fields:
                if name not in declared:
                    continue  # silently dropped, never written
            assert set(serialize(rebuilt).fields) == declared

    def test_honest_json_roundtrip_via_codec(self):
        from repro.serialization import honest_service

        remote = honest_service().get_student()
        parsed = RemoteObject.from_json(remote.to_json(), trusted=True)
        assert parsed.fields == dict(remote.fields)
        assert not parsed.tainted

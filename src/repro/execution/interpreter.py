"""A MiniC++ interpreter executing parsed programs on the simulator.

This is the dynamic half of the reproduction: the same source the static
detector analyzes (the paper's listings, see
:mod:`repro.workloads.corpus`) *runs* here, against real simulated
memory — placements place, overflows overflow, canaries abort, hijacked
returns transfer control.  Tests cross-validate the two: wherever the
detector reports a placement-new vulnerability, execution exhibits the
corresponding corruption.

Supported subset: everything the corpus uses — globals (objects, arrays,
scalars, pointers), free functions and arguments, every ``new`` flavour,
member/array/pointer lvalues, ``cin``/``cout``, ``if``/``while``/``for``
(with a step budget so DoS loops terminate the simulation, not the test
run), ``delete``, and a small builtin library (``strncpy``, ``strcpy``,
``memset``, ``readFile``, ``store``...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..analysis import ast_nodes as ast
from ..analysis.parser import parse
from ..analysis.symbols import SymbolTable
from ..cxx.classdef import ClassDef
from ..cxx.object_model import Instance
from ..cxx.types import (
    BOOL,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    SHORT,
    UINT,
    VOID_PTR,
    ArrayType,
    CType,
    array_of,
)
from ..errors import ApiMisuseError, SimulatedProcessError, SimulatedTimeout
from ..memory.tracker import ArenaOrigin
from ..runtime.control_flow import FrameExit
from ..runtime.machine import Machine
from .values import LValue, Scope, Variable, truthy

_SCALAR_CTYPES: dict[str, CType] = {
    "int": INT,
    "unsigned int": UINT,
    "unsigned": UINT,
    "short": SHORT,
    "long": INT,
    "char": CHAR,
    "bool": BOOL,
    "float": FLOAT,
    "double": DOUBLE,
    "size_t": UINT,
}

#: Builtins that exist purely for their side effects on the simulation.
_NOOP_BUILTINS = {"processOne", "log", "send", "validate", "audit"}

DEFAULT_STEP_BUDGET = 100_000


def _atoi(text: str) -> int:
    """C ``atoi``: skip leading whitespace, accept an optional sign and
    leading digits, and return 0 when no digits are found."""
    index, length = 0, len(text)
    while index < length and text[index].isspace():
        index += 1
    start = index
    if index < length and text[index] in "+-":
        index += 1
    digits_from = index
    while index < length and text[index].isdigit():
        index += 1
    if index == digits_from:
        return 0
    return int(text[start:index])


class _ReturnSignal(Exception):
    """Internal: unwinds the interpreter on ``return``."""

    def __init__(self, value: Any) -> None:
        self.value = value


@dataclass
class FunctionOutcome:
    """Everything observable from one interpreted function call."""

    return_value: Any
    frame_exit: Optional[FrameExit]
    outputs: list
    stored: list  # (address, bytes) captured by store()
    steps: int


@dataclass
class ExecutionError:
    """A simulated-process failure during interpretation."""

    error: SimulatedProcessError

    @property
    def kind(self) -> str:
        return type(self.error).__name__


class Interpreter:
    """Executes one parsed program on one machine."""

    def __init__(
        self,
        program: ast.Program,
        machine: Optional[Machine] = None,
        step_budget: int = DEFAULT_STEP_BUDGET,
    ) -> None:
        self.program = program
        self.machine = machine or Machine()
        self.symbols = SymbolTable(program)
        # Share the symbol table's layout engine so sizeof agrees
        # between the analyzer and the running program.
        self.machine.layouts = self.symbols.layout_engine()
        self.step_budget = step_budget
        self.steps = 0
        self.outputs: list = []
        self.stored: list = []
        self.globals = Scope()
        self._global_counter = 0
        self._install_globals()

    # -- setup ---------------------------------------------------------------

    def _ctype_for(self, type_ref: ast.TypeRef) -> Optional[CType]:
        if type_ref.is_pointer:
            return VOID_PTR
        return _SCALAR_CTYPES.get(type_ref.name)

    def _class_for(self, name: str) -> Optional[ClassDef]:
        return self.symbols.cxx_class(name)

    def _install_globals(self) -> None:
        for decl in self.program.globals:
            self._declare_global(decl)

    def _unique(self, name: str) -> str:
        self._global_counter += 1
        return f"{name}#{self._global_counter}"

    def _declare_global(self, decl: ast.VarDecl) -> None:
        type_ref = decl.type
        class_def = None if type_ref.is_pointer else self._class_for(type_ref.name)
        if class_def is not None and not type_ref.is_array:
            instance = self.machine.static_object(class_def, decl.name)
            variable = Variable(
                name=decl.name,
                address=instance.address,
                type_ref=type_ref,
                class_def=class_def,
                size=instance.size,
            )
        elif type_ref.is_array:
            element = self._ctype_for(
                ast.TypeRef(name=type_ref.name, pointer_depth=0)
            )
            if element is None:
                raise ApiMisuseError(
                    f"unsupported global array element '{type_ref.name}'"
                )
            count = self._expect_int(self.eval(decl.type.array_size, self.globals))
            view = self.machine.static_array(element, count, decl.name)
            variable = Variable(
                name=decl.name,
                address=view.address,
                type_ref=type_ref,
                ctype=array_of(element, count),
                size=element.size * count,
            )
        else:
            ctype = self._ctype_for(type_ref) or VOID_PTR
            init_value = None
            if decl.init is not None:
                init_value = self.eval(decl.init, self.globals)
            var_info = self.machine.static_scalar(
                ctype, decl.name, init=init_value
            )
            variable = Variable(
                name=decl.name,
                address=var_info.address,
                type_ref=type_ref,
                ctype=ctype,
                pointee_class=(
                    self._class_for(type_ref.name) if type_ref.is_pointer else None
                ),
                size=ctype.size,
            )
        self.globals.declare(variable)

    # -- public API ----------------------------------------------------------

    def run(self, function_name: str, *args: Any) -> FunctionOutcome:
        """Interpret ``function_name(*args)``.

        String arguments are materialized on the simulated heap (argv
        style) and passed as ``char*`` addresses.
        """
        function = self.program.function(function_name)
        prepared: list[Any] = []
        for value in args:
            if isinstance(value, str):
                address = self.machine.heap.allocate(len(value) + 1)
                self.machine.space.write_c_string(address, value)
                prepared.append(address)
            else:
                prepared.append(value)
        return self._call_function(function, prepared)

    def run_source_main(self) -> FunctionOutcome:
        """Convenience: interpret ``main(0, 0)``."""
        return self.run("main", 0, 0)

    # -- function machinery ------------------------------------------------

    def _call_function(
        self, function: ast.FunctionDecl, args: list
    ) -> FunctionOutcome:
        scope = self.globals.child()
        steps_before = self.steps
        caller_sp = self.machine.stack.stack_pointer
        # cdecl: the caller pushes arguments *before* the call, so they
        # live above the return address — keeping the callee's first
        # local flush against the frame's fixed slots (the adjacency the
        # paper's index arithmetic depends on).
        for param, value in zip(function.params, args):
            ctype = self._ctype_for(param.type) or VOID_PTR
            address = self.machine.stack.push_region(
                max(ctype.size, 4), alignment=4
            )
            self.machine.space.write(address, ctype.encode(value))
            scope.declare(
                Variable(
                    name=param.name,
                    address=address,
                    type_ref=param.type,
                    ctype=ctype,
                    pointee_class=(
                        self._class_for(param.type.name)
                        if param.type.is_pointer
                        else None
                    ),
                    size=ctype.size,
                )
            )
        frame = self.machine.push_frame(function.name)
        return_value: Any = None
        try:
            self._exec_block(function.body, scope, frame)
        except _ReturnSignal as signal:
            return_value = signal.value
        frame_exit = self.machine.pop_frame(frame)
        # The caller cleans its pushed arguments (cdecl).
        self.machine.stack.pop_to(caller_sp)
        return FunctionOutcome(
            return_value=return_value,
            frame_exit=frame_exit,
            outputs=self.outputs,
            stored=self.stored,
            steps=self.steps - steps_before,
        )

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_budget:
            raise SimulatedTimeout(self.step_budget)

    # -- statements -----------------------------------------------------------

    def _exec_block(self, block: ast.Block, scope: Scope, frame) -> None:
        for stmt in block.statements:
            self._exec(stmt, scope, frame)

    def _exec(self, stmt: ast.Stmt, scope: Scope, frame) -> None:
        self._tick()
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, scope.child(), frame)
        elif isinstance(stmt, ast.VarDecl):
            self._exec_vardecl(stmt, scope, frame)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, scope)
            lvalue = self.resolve_lvalue(stmt.target, scope)
            self._store(lvalue, value)
        elif isinstance(stmt, ast.CinRead):
            for target in stmt.targets:
                lvalue = self.resolve_lvalue(target, scope)
                ctype = lvalue.require_scalar()
                if isinstance(ctype, (type(DOUBLE), type(FLOAT))) and ctype in (
                    DOUBLE,
                    FLOAT,
                ):
                    token: Any = self.machine.stdin.read_double()
                else:
                    token = self.machine.stdin.read_int()
                self._store(lvalue, token)
        elif isinstance(stmt, ast.CoutWrite):
            for value_expr in stmt.values:
                self.outputs.append(self.eval(value_expr, scope))
        elif isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr, scope)
        elif isinstance(stmt, ast.DeleteStmt):
            address = self._expect_int(self.eval(stmt.target, scope))
            if address:
                self.machine.tracker.mark_freed(address)
                self.machine.heap.free(address)
        elif isinstance(stmt, ast.ReturnStmt):
            value = self.eval(stmt.value, scope) if stmt.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.If):
            if truthy(self.eval(stmt.cond, scope)):
                self._exec_block(stmt.then_body, scope.child(), frame)
            elif stmt.else_body is not None:
                self._exec_block(stmt.else_body, scope.child(), frame)
        elif isinstance(stmt, ast.While):
            while truthy(self.eval(stmt.cond, scope)):
                self._tick()
                self._exec_block(stmt.body, scope.child(), frame)
        elif isinstance(stmt, ast.For):
            loop_scope = scope.child()
            if stmt.init is not None:
                self._exec(stmt.init, loop_scope, frame)
            while stmt.cond is None or truthy(self.eval(stmt.cond, loop_scope)):
                self._tick()
                self._exec_block(stmt.body, loop_scope.child(), frame)
                if stmt.step is not None:
                    self._exec(stmt.step, loop_scope, frame)
        else:  # pragma: no cover - parser produces no other nodes
            raise ApiMisuseError(f"unsupported statement {type(stmt).__name__}")

    def _exec_vardecl(self, decl: ast.VarDecl, scope: Scope, frame) -> None:
        type_ref = decl.type
        class_def = None if type_ref.is_pointer else self._class_for(type_ref.name)
        if class_def is not None and not type_ref.is_array:
            instance = frame.local_object(class_def, self._unique(decl.name))
            variable = Variable(
                name=decl.name,
                address=instance.address,
                type_ref=type_ref,
                class_def=class_def,
                size=instance.size,
            )
            scope.declare(variable)
            if isinstance(decl.init, ast.Call) and decl.init.func == type_ref.name:
                ctor_args = [self.eval(arg, scope) for arg in decl.init.args]
                self._construct(class_def, instance.address, ctor_args)
            elif decl.init is not None:
                source = self.eval(decl.init, scope)
                if isinstance(source, int):
                    # Copy from another object's address.
                    data = self.machine.space.read(source, instance.size)
                    self.machine.space.write(instance.address, data)
            return
        if type_ref.is_array:
            element = self._ctype_for(
                ast.TypeRef(name=type_ref.name, pointer_depth=0)
            )
            if element is None:
                raise ApiMisuseError(
                    f"unsupported local array element '{type_ref.name}'"
                )
            count = self._expect_int(self.eval(type_ref.array_size, scope))
            view = frame.local_array(element, count, self._unique(decl.name))
            scope.declare(
                Variable(
                    name=decl.name,
                    address=view.address,
                    type_ref=type_ref,
                    ctype=array_of(element, count),
                    size=element.size * count,
                )
            )
            return
        ctype = self._ctype_for(type_ref) or VOID_PTR
        init_value = self.eval(decl.init, scope) if decl.init is not None else None
        if init_value is not None:
            init_value = self._coerce(ctype, init_value)
        address = frame.local_scalar(
            ctype, self._unique(decl.name), init=init_value
        )
        scope.declare(
            Variable(
                name=decl.name,
                address=address,
                type_ref=type_ref,
                ctype=ctype,
                pointee_class=(
                    self._class_for(type_ref.name) if type_ref.is_pointer else None
                ),
                size=ctype.size,
            )
        )

    # -- lvalues -------------------------------------------------------------

    def resolve_lvalue(self, expr: ast.Expr, scope: Scope) -> LValue:
        """Resolve an assignable expression to a storage location."""
        if isinstance(expr, ast.Name):
            variable = scope.lookup(expr.ident)
            if variable is None:
                raise ApiMisuseError(f"undefined variable '{expr.ident}'")
            return LValue(
                address=variable.address,
                ctype=variable.ctype,
                class_def=variable.class_def,
                declared=variable.type_ref,
            )
        if isinstance(expr, ast.Member):
            return self._resolve_member(expr, scope)
        if isinstance(expr, ast.Index):
            base = self.resolve_lvalue(expr.base, scope)
            index = self._expect_int(self.eval(expr.index, scope))
            if base.ctype is not None and isinstance(base.ctype, ArrayType):
                element = base.ctype.element
                return LValue(
                    address=base.address + index * element.size, ctype=element
                )
            if base.declared is not None and base.declared.is_pointer:
                element = (
                    self._ctype_for(
                        ast.TypeRef(name=base.declared.name, pointer_depth=0)
                    )
                    or CHAR
                )
                pointer = self.machine.space.read_pointer(base.address)
                return LValue(
                    address=pointer + index * element.size, ctype=element
                )
            raise ApiMisuseError("cannot index a non-array location")
        if isinstance(expr, ast.Unary) and expr.op == "*":
            target = self._expect_int(self.eval(expr.operand, scope))
            return LValue(address=target, ctype=INT)
        raise ApiMisuseError(
            f"expression {type(expr).__name__} is not an lvalue"
        )

    def _resolve_member(self, expr: ast.Member, scope: Scope) -> LValue:
        if expr.arrow:
            base_address = self._expect_int(self.eval(expr.obj, scope))
            class_def = self._static_pointee(expr.obj, scope)
        else:
            base = self.resolve_lvalue(expr.obj, scope)
            base_address = base.address
            class_def = base.class_def
        if class_def is None:
            raise ApiMisuseError(f"member '{expr.name}' on unknown class")
        layout = self.machine.layouts.layout_of(class_def)
        slot = layout.slot(expr.name)
        member_class = getattr(slot.ctype, "class_def", None)
        if member_class is not None:
            return LValue(
                address=base_address + slot.offset, class_def=member_class
            )
        return LValue(address=base_address + slot.offset, ctype=slot.ctype)

    def _static_pointee(self, expr: ast.Expr, scope: Scope) -> Optional[ClassDef]:
        if isinstance(expr, ast.Name):
            variable = scope.lookup(expr.ident)
            if variable is not None:
                return variable.pointee_class
        return None

    def _coerce(self, ctype: CType, value: Any) -> Any:
        """C-level coercions the encoder cannot guess: a Python string
        stored into a pointer becomes a heap-materialized char* (string
        literals and returned names live somewhere in memory in C)."""
        from ..cxx.types import PointerType

        if isinstance(value, str) and isinstance(ctype, PointerType):
            address = self.machine.heap.allocate(len(value) + 1)
            self.machine.space.write_c_string(address, value)
            return address
        return value

    def _store(self, lvalue: LValue, value: Any) -> None:
        ctype = lvalue.require_scalar()
        self.machine.space.write(
            lvalue.address, ctype.encode(self._coerce(ctype, value))
        )

    # -- expressions ----------------------------------------------------------

    def eval(self, expr: Optional[ast.Expr], scope: Scope) -> Any:
        """Evaluate an rvalue."""
        if expr is None:
            return None
        self._tick()
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.StrLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return int(expr.value)
        if isinstance(expr, ast.NullLit):
            return 0
        if isinstance(expr, ast.Name):
            return self._eval_name(expr, scope)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, scope)
        if isinstance(expr, (ast.Member, ast.Index)):
            lvalue = self.resolve_lvalue(expr, scope)
            if lvalue.ctype is None:
                return lvalue.address  # object member: its address
            if isinstance(lvalue.ctype, ArrayType):
                return lvalue.address  # arrays decay
            data = self.machine.space.read(lvalue.address, lvalue.ctype.size)
            return lvalue.ctype.decode(data)
        if isinstance(expr, ast.SizeOf):
            return self._eval_sizeof(expr, scope)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, scope)
        if isinstance(expr, ast.NewExpr):
            return self._eval_new(expr, scope)
        raise ApiMisuseError(f"unsupported expression {type(expr).__name__}")

    def _eval_name(self, expr: ast.Name, scope: Scope) -> Any:
        variable = scope.lookup(expr.ident)
        if variable is None:
            raise ApiMisuseError(f"undefined variable '{expr.ident}'")
        if variable.class_def is not None:
            return variable.address
        assert variable.ctype is not None
        if isinstance(variable.ctype, ArrayType):
            return variable.address  # decay
        data = self.machine.space.read(variable.address, variable.ctype.size)
        return variable.ctype.decode(data)

    def _eval_unary(self, expr: ast.Unary, scope: Scope) -> Any:
        if expr.op == "&":
            return self.resolve_lvalue(expr.operand, scope).address
        if expr.op in ("++", "--", "post++", "post--"):
            lvalue = self.resolve_lvalue(expr.operand, scope)
            ctype = lvalue.require_scalar()
            current = ctype.decode(
                self.machine.space.read(lvalue.address, ctype.size)
            )
            delta = 1 if "++" in expr.op else -1
            updated = current + delta
            self._store(lvalue, updated)
            return current if expr.op.startswith("post") else updated
        value = self.eval(expr.operand, scope)
        if expr.op == "*":
            address = self._expect_int(value)
            return self.machine.space.read_int(address)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return int(not truthy(value))
        if expr.op == "~":
            return ~self._expect_int(value)
        raise ApiMisuseError(f"unsupported unary '{expr.op}'")

    def _eval_binary(self, expr: ast.Binary, scope: Scope) -> Any:
        left = self.eval(expr.left, scope)
        right = self.eval(expr.right, scope)
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise ApiMisuseError("integer division by zero")
                return int(left / right) if (left < 0) != (right < 0) else left // right
            return left / right
        if op == "%":
            return left % right
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "&&":
            return int(truthy(left) and truthy(right))
        if op == "||":
            return int(truthy(left) or truthy(right))
        raise ApiMisuseError(f"unsupported binary '{op}'")

    def _eval_sizeof(self, expr: ast.SizeOf, scope: Scope) -> int:
        if expr.type_name is not None:
            size = self.symbols.sizeof_name(expr.type_name)
            if size is None:
                raise ApiMisuseError(f"sizeof unknown type '{expr.type_name}'")
            return size
        if isinstance(expr.expr, ast.Name):
            variable = scope.lookup(expr.expr.ident)
            if variable is not None and variable.size:
                return variable.size
        raise ApiMisuseError("unsupported sizeof operand")

    # -- calls ----------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, scope: Scope) -> Any:
        if expr.receiver is not None:
            return self._eval_method_call(expr, scope)
        # Program-defined function?
        try:
            function = self.program.function(expr.func)
        except KeyError:
            function = None
        if function is not None:
            args = [self.eval(arg, scope) for arg in expr.args]
            outcome = self._call_function(function, args)
            return outcome.return_value
        return self._eval_builtin(expr, scope)

    def _receiver_binding(
        self, receiver: ast.Expr, scope: Scope
    ) -> tuple[int, Optional[str]]:
        """(object address, static class name) for a method receiver."""
        if isinstance(receiver, ast.Name):
            variable = scope.lookup(receiver.ident)
            if variable is not None:
                if variable.class_def is not None:
                    return variable.address, variable.class_def.name
                if variable.pointee_class is not None:
                    address = self.machine.space.read_pointer(variable.address)
                    return address, variable.pointee_class.name
        # General case: the receiver evaluates to an address; the static
        # class cannot be recovered.
        return self._expect_int(self.eval(receiver, scope)), None

    def _eval_method_call(self, expr: ast.Call, scope: Scope) -> Any:
        """``obj.m(...)`` / ``ptr->m(...)`` — AST-bodied methods execute
        with the fields in scope; declaration-only virtuals dispatch
        through the simulated vtable (so a corrupted vptr misdirects
        exactly as in §3.8.2)."""
        address, class_name = self._receiver_binding(expr.receiver, scope)
        if class_name is None:
            raise ApiMisuseError(f"cannot type method receiver for '{expr.func}'")
        args = [self.eval(arg, scope) for arg in expr.args]
        decl = self.symbols.class_decl(class_name)
        method = None
        if decl is not None:
            for candidate in decl.methods:
                if candidate.name == expr.func:
                    method = candidate
                    break
        if method is not None and method.body is not None:
            return self._run_method_body(class_name, method, address, args)
        # Virtual, declaration-only: real in-memory dispatch.
        lowered = self._class_for(class_name)
        if lowered is not None and expr.func in lowered.virtual_slot_order():
            instance = Instance(self.machine, lowered, address)
            result = self.machine.virtual_call(instance, expr.func, *args)
            return result.return_value
        raise ApiMisuseError(f"class {class_name} has no method '{expr.func}'")

    def run_method(
        self, class_name: str, method_name: str, address: int, *args: Any
    ) -> Any:
        """Public helper: invoke ``object.method(args)`` at ``address``."""
        decl = self.symbols.class_decl(class_name)
        if decl is None:
            raise ApiMisuseError(f"unknown class '{class_name}'")
        for method in decl.methods:
            if method.name == method_name and method.body is not None:
                return self._run_method_body(class_name, method, address, list(args))
        raise ApiMisuseError(f"class {class_name} has no body for '{method_name}'")

    def _run_method_body(
        self, class_name: str, method: Any, address: int, args: list
    ) -> Any:
        lowered = self._class_for(class_name)
        if lowered is None:
            raise ApiMisuseError(f"unknown class '{class_name}'")
        layout = self.machine.layouts.layout_of(lowered)
        scope = self.globals.child()
        # Fields become variables rooted at the object's address.
        decl = self.symbols.class_decl(class_name)
        field_types = {f.name: f.type for f in decl.fields} if decl else {}
        for slot in layout.field_slots:
            type_ref = field_types.get(
                slot.name, ast.TypeRef(name=slot.ctype.name)
            )
            member_class = getattr(slot.ctype, "class_def", None)
            scope.declare(
                Variable(
                    name=slot.name,
                    address=address + slot.offset,
                    type_ref=type_ref,
                    ctype=None if member_class is not None else slot.ctype,
                    class_def=member_class,
                    size=slot.ctype.size,
                )
            )
        frame = self.machine.push_frame(f"{class_name}::{method.name}")
        for param, value in zip(method.params, args):
            ctype = self._ctype_for(param.type) or VOID_PTR
            param_address = frame.local_scalar(
                ctype, self._unique(f"param:{param.name}")
            )
            self.machine.space.write(param_address, ctype.encode(value))
            scope.declare(
                Variable(
                    name=param.name,
                    address=param_address,
                    type_ref=param.type,
                    ctype=ctype,
                    pointee_class=(
                        self._class_for(param.type.name)
                        if param.type.is_pointer
                        else None
                    ),
                    size=ctype.size,
                )
            )
        return_value: Any = None
        try:
            self._exec_block(method.body, scope, frame)
        except _ReturnSignal as signal:
            return_value = signal.value
        self.machine.pop_frame(frame)
        return return_value

    def _eval_builtin(self, expr: ast.Call, scope: Scope) -> Any:
        name = expr.func
        if name in _NOOP_BUILTINS:
            for arg in expr.args:
                self.eval(arg, scope)
            self.machine.record_event(f"{name}()")
            return 0
        if name == "strncpy":
            dest = self._expect_int(self.eval(expr.args[0], scope))
            source = self.eval(expr.args[1], scope)
            count = self._expect_int(self.eval(expr.args[2], scope))
            text = (
                source
                if isinstance(source, str)
                else self.machine.space.read_c_string(source)
            )
            self.machine.space.strncpy(dest, text, count)
            return dest
        if name == "strcpy":
            dest = self._expect_int(self.eval(expr.args[0], scope))
            source = self.eval(expr.args[1], scope)
            text = (
                source
                if isinstance(source, str)
                else self.machine.space.read_c_string(source)
            )
            self.machine.space.write_c_string(dest, text)  # unbounded!
            return dest
        if name == "memset":
            dest = self._expect_int(self.eval(expr.args[0], scope))
            byte = self._expect_int(self.eval(expr.args[1], scope)) & 0xFF
            count = self._expect_int(self.eval(expr.args[2], scope))
            self.machine.space.fill(dest, count, byte)
            return dest
        if name == "readFile":
            path = self.eval(expr.args[0], scope)
            dest = self._expect_int(self.eval(expr.args[1], scope))
            count = self._expect_int(self.eval(expr.args[2], scope))
            if isinstance(path, int):
                path = self.machine.space.read_c_string(path)
            data = self.machine.files.open(path).read(count)
            self.machine.space.write(dest, data.ljust(count, b"\x00")[:count])
            return len(data)
        if name == "store":
            address = self._expect_int(self.eval(expr.args[0], scope))
            record = self.machine.tracker.lookup(address)
            length = record.true_size if record is not None else 256
            segment = self.machine.space.find_segment(address)
            if segment is not None:
                length = min(length, segment.end - address)
            data = self.machine.space.read(address, max(length, 0))
            self.stored.append((address, data))
            self.machine.record_event(f"store({address:#010x}, {len(data)}B)")
            return len(data)
        if name == "invokeAccount":
            target = self._expect_int(self.eval(expr.args[0], scope))
            result = self.machine.call_function_pointer(target)
            return result.return_value
        if name == "getenv":
            # The simulated environment is attacker-controlled, like the
            # fuzzer's stdin: each getenv() consumes one input token and
            # yields its decimal rendering (declaration-site coercion
            # materializes it as a C string when bound to a char*).
            for arg in expr.args:
                self.eval(arg, scope)
            token = self.machine.stdin.read_int()
            self.machine.record_event("getenv()")
            return str(token)
        if name == "atoi":
            source = self.eval(expr.args[0], scope)
            text = (
                source
                if isinstance(source, str)
                else self.machine.space.read_c_string(
                    self._expect_int(source)
                )
            )
            return _atoi(text)
        # A class-name "call" evaluates its args (temporary object value
        # semantics are handled at the declaration site).
        if self.symbols.is_class(name):
            return tuple(self.eval(arg, scope) for arg in expr.args)
        raise ApiMisuseError(f"unknown function '{name}'")

    # -- new expressions --------------------------------------------------------

    def _eval_new(self, expr: ast.NewExpr, scope: Scope) -> int:
        args = [self.eval(arg, scope) for arg in expr.args]
        class_def = self._class_for(expr.type_name)
        element = _SCALAR_CTYPES.get(expr.type_name)
        if expr.placement is None:
            return self._heap_new(expr, class_def, element, args, scope)
        address = self._expect_int(self.eval(expr.placement, scope))
        arena_size = self._arena_size_of(expr.placement, address, scope)
        if expr.is_array:
            count = self._expect_int(self.eval(expr.array_count, scope))
            size = (element.size if element else 1) * count
            self.machine.tracker.relabel(
                address, size, label=f"{expr.type_name}[{count}]"
            )
            self.machine.placement_log.add(
                self._placement_record(
                    address, size, f"{expr.type_name}[{count}]", arena_size
                )
            )
            return address
        if class_def is None:
            raise ApiMisuseError(f"placement new of unknown type '{expr.type_name}'")
        layout = self.machine.layouts.layout_of(class_def)
        self.machine.tracker.relabel(address, layout.size, label=class_def.name)
        self.machine.placement_log.add(
            self._placement_record(address, layout.size, class_def.name, arena_size)
        )
        self._construct(class_def, address, args)
        return address

    def _arena_size_of(
        self, placement: ast.Expr, address: int, scope: Scope
    ) -> Optional[int]:
        """Best-effort arena extent for the audit log: a tracked heap
        arena, or the declared size of a named variable (``&var`` /
        array-name placements)."""
        record = self.machine.tracker.lookup(address)
        if record is not None:
            return record.true_size
        target = placement
        if isinstance(target, ast.Unary) and target.op == "&":
            target = target.operand
        if isinstance(target, ast.Name):
            variable = scope.lookup(target.ident)
            if (
                variable is not None
                and variable.size
                and variable.address == address
                and not variable.type_ref.is_pointer
            ):
                return variable.size
        return None

    def _placement_record(self, address, size, type_name, arena_size):
        from ..core.placement import PlacementRecord

        return PlacementRecord(
            address=address,
            size=size,
            type_name=type_name,
            misaligned=False,
            arena_size=arena_size,
        )

    def _heap_new(self, expr, class_def, element, args, scope) -> int:
        if expr.is_array:
            count = self._expect_int(self.eval(expr.array_count, scope))
            if element is None:
                raise ApiMisuseError(
                    f"new[] of unsupported element '{expr.type_name}'"
                )
            size = element.size * count
            address = self.machine.heap.allocate(size)
            self.machine.tracker.record(
                address, size, ArenaOrigin.HEAP_NEW, label=f"{expr.type_name}[{count}]"
            )
            return address
        if class_def is not None:
            layout = self.machine.layouts.layout_of(class_def)
            address = self.machine.heap.allocate(layout.size)
            self.machine.tracker.record(
                address, layout.size, ArenaOrigin.HEAP_NEW, label=class_def.name
            )
            self._construct(class_def, address, args)
            return address
        if element is not None:
            address = self.machine.heap.allocate(element.size)
            self.machine.tracker.record(
                address, element.size, ArenaOrigin.HEAP_NEW, label=expr.type_name
            )
            if args:
                self.machine.space.write(address, element.encode(args[0]))
            return address
        raise ApiMisuseError(f"new of unknown type '{expr.type_name}'")

    def _construct(self, class_def: ClassDef, address: int, args: list) -> None:
        """Constructor semantics for declaration-only MiniC++ classes:
        install vptrs, then map positional args onto the fields in
        layout order (base members first) — matching the paper's
        ``Student(gpa, year, semester)`` style constructors."""
        layout = self.machine.layouts.layout_of(class_def)
        if layout.has_vptr:
            table = self.machine.vtables.ensure(class_def)
            tap = self.machine.event_tap
            for vptr_offset in layout.vptr_offsets:
                if tap is not None:
                    tap.vptr_installed(address + vptr_offset, table.address)
                self.machine.space.write_pointer(
                    address + vptr_offset, table.address
                )
        scalar_slots = [
            slot
            for slot in layout.field_slots
            if not isinstance(slot.ctype, ArrayType)
            and getattr(slot.ctype, "class_def", None) is None
        ]
        for slot, value in zip(scalar_slots, args):
            self.machine.space.write(
                address + slot.offset, slot.ctype.encode(value)
            )

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _expect_int(value: Any) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if not isinstance(value, int):
            raise ApiMisuseError(f"expected an integer value, got {value!r}")
        return value


def run_source(
    source: str,
    entry: str = "main",
    args: tuple = (0, 0),
    machine: Optional[Machine] = None,
    stdin: tuple = (),
    step_budget: int = DEFAULT_STEP_BUDGET,
) -> tuple[Interpreter, FunctionOutcome]:
    """Parse, load, and run MiniC++ source on a (fresh) machine."""
    interpreter = Interpreter(parse(source), machine=machine, step_budget=step_budget)
    if stdin:
        interpreter.machine.stdin.feed(*stdin)
    outcome = interpreter.run(entry, *args)
    return interpreter, outcome

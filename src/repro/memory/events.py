"""Coarse memory-event taps for coverage-style observers.

The fuzzer (and any other observer that wants a cheap behavioral
signature of a run) does not need the full access stream — it needs a
small, bounded set of *event kinds*: which segments were written,
whether an installed vtable pointer slot was later overwritten, and so
on.  :class:`MemoryEventTap` is an :data:`AccessHook` that folds raw
accesses into such kinds as they happen, so a run's signature is just a
set of short strings.

Writers that legitimately (re)install a vptr announce the slot first
via :meth:`MemoryEventTap.vptr_installed`; any later write that touches
the slot without storing the expected table address counts as a
``vtable-slot-overwritten`` event — the paper's §4.2 subterfuge seam.
"""

from __future__ import annotations

from .address_space import AddressSpace
from .encoding import POINTER_SIZE


class MemoryEventTap:
    """Fold raw memory accesses into a bounded set of event kinds.

    Attach with ``space.add_access_hook(tap)`` (and detach with
    ``remove_access_hook``).  Observed kinds accumulate in
    :attr:`kinds`; they are deterministic for a deterministic run.
    """

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self.kinds: set = set()
        #: vptr slot address → expected vtable address (the installer's).
        self._vptr_slots: dict = {}

    # -- writer announcements ----------------------------------------------

    def vptr_installed(self, address: int, table_address: int) -> None:
        """Register a vptr slot *before* the installing write lands, so
        the install itself is not misread as an overwrite."""
        self._vptr_slots[address] = table_address

    # -- the AccessHook protocol ---------------------------------------------

    def __call__(self, address: int, data: bytes, is_write: bool) -> None:
        if not is_write:
            return
        segment = self.space.find_segment(address)
        if segment is not None:
            self.kinds.add(f"write:{segment.kind.value}")
        if not self._vptr_slots:
            return
        end = address + len(data)
        for slot, expected in self._vptr_slots.items():
            if address >= slot + POINTER_SIZE or end <= slot:
                continue
            is_install = (
                address == slot
                and len(data) == POINTER_SIZE
                and int.from_bytes(data, "little") == expected
            )
            if not is_install:
                self.kinds.add("vtable-slot-overwritten")

    def sorted_kinds(self) -> tuple:
        """The observed kinds as a deterministic tuple."""
        return tuple(sorted(self.kinds))

#!/usr/bin/env python
"""A remote-object attack end to end (paper §3.2).

Models the paper's motivating deployment: a server that deserializes
JSON Student objects from a web client into a pre-allocated arena using
placement new.  An honest client works fine; a malicious client sends an
object whose course list overflows the arena and corrupts the server's
accounting — and per-byte taint tracking proves the corrupted value is
attacker-derived.

Run:  python examples/webservice_attack.py
"""

from repro import Machine
from repro.core import placement_new
from repro.cxx import DOUBLE, INT, UINT, array_of, make_class
from repro.serialization import honest_service, malicious_service
from repro.taint import TaintEngine


def build_server():
    """The victim: a machine with a Student arena and a counter."""
    machine = Machine()
    student_cls = make_class(
        "Student",
        fields=[
            ("gpa", DOUBLE),
            ("year", INT),
            ("semester", INT),
            ("courseid", array_of(INT, 2)),
        ],
    )
    arena = machine.static_object(student_cls, "stud")
    machine.static_scalar(UINT, "enrolledCredits")
    machine.write_global("enrolledCredits", 120)
    return machine, student_cls, arena


def handle_registration(machine, student_cls, arena, remote, taint):
    """The server's request handler — Listing 6's copy loop, verbatim.

    The handler trusts ``remote.n`` because "the protocol" says a
    Student has at most two courses.
    """
    st = placement_new(machine, arena, student_cls)
    st.set("gpa", remote.get("gpa", 0.0))
    st.set("year", remote.get("year", 0))
    st.set("semester", remote.get("semester", 0))
    courses = remote.get("courseid", [])
    for index in range(remote.get("n", 0)):  # <- attacker-controlled bound
        st.set_element("courseid", index, courses[index])
        if remote.tainted:
            taint.mark(st.element_address("courseid", index), 4, *remote.labels)
    return st


def main() -> None:
    machine, student_cls, arena = build_server()
    taint = TaintEngine(machine.space)
    credits_var = machine.global_var("enrolledCredits")

    print("— request 1: honest client —")
    honest = honest_service().get_student(gpa=3.6, year=2011, semester=1)
    handle_registration(machine, student_cls, arena, honest, taint)
    print(f"  enrolledCredits = {machine.read_global('enrolledCredits')} (untouched)")

    print()
    print("— request 2: malicious client —")
    evil = malicious_service().get_student(course_count=8)
    print(f"  wire object claims n={evil.get('n')} courses "
          f"(protocol says at most 2)")
    handle_registration(machine, student_cls, arena, evil, taint)
    credits_after = machine.read_global("enrolledCredits")
    print(f"  enrolledCredits = {credits_after}  <- corrupted")
    print(
        "  taint on the counter:",
        sorted(label.value for label in taint.labels_at(credits_var.address, 4)),
    )
    print()
    print("the copy loop wrote", taint.tainted_byte_count, "attacker-labelled bytes")
    overflow = machine.placement_log.records[-1]
    print(
        f"placement audit: {overflow.type_name} into arena @ "
        f"{overflow.address:#010x} — the overflow came from the *loop*, not "
        "the placement itself; this is why checked placement new alone "
        "cannot save an unbounded deserializer"
    )


if __name__ == "__main__":
    main()

"""The taint engine: labels, marking, propagation, queries."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, FrozenSet

from ..memory.address_space import AddressSpace


class TaintLabel(enum.Enum):
    """Where attacker influence entered the process."""

    STDIN = "stdin"
    NETWORK = "network"
    FILE = "file"
    REMOTE_OBJECT = "remote-object"
    DERIVED = "derived"


@dataclass(frozen=True)
class TaintedValue:
    """A Python-level value paired with its taint labels.

    Used when data has not yet been written into simulated memory (e.g.
    a remote object's field before deserialization places it).
    """

    value: Any
    labels: FrozenSet[TaintLabel]

    @classmethod
    def from_source(cls, value: Any, label: TaintLabel) -> "TaintedValue":
        """Wrap a fresh external input."""
        return cls(value=value, labels=frozenset({label}))

    def derive(self, value: Any) -> "TaintedValue":
        """A computation result influenced by this value."""
        return TaintedValue(value=value, labels=self.labels | {TaintLabel.DERIVED})

    @property
    def tainted(self) -> bool:
        """Always true for instances; exists for symmetry with plain values."""
        return bool(self.labels)


def value_of(maybe_tainted: Any) -> Any:
    """Unwrap a TaintedValue (plain values pass through)."""
    if isinstance(maybe_tainted, TaintedValue):
        return maybe_tainted.value
    return maybe_tainted


def labels_of(maybe_tainted: Any) -> FrozenSet[TaintLabel]:
    """Labels of a value (empty for untainted plain values)."""
    if isinstance(maybe_tainted, TaintedValue):
        return maybe_tainted.labels
    return frozenset()


class TaintEngine:
    """Per-byte taint map over one simulated address space."""

    def __init__(self, space: AddressSpace) -> None:
        self._space = space
        self._map: dict[int, FrozenSet[TaintLabel]] = {}

    def mark(self, address: int, length: int, *labels: TaintLabel) -> None:
        """Label ``length`` bytes starting at ``address``."""
        label_set = frozenset(labels)
        for offset in range(length):
            existing = self._map.get(address + offset, frozenset())
            self._map[address + offset] = existing | label_set

    def clear(self, address: int, length: int) -> None:
        """Remove labels (e.g. after sanitization overwrites the bytes)."""
        for offset in range(length):
            self._map.pop(address + offset, None)

    def labels_at(self, address: int, length: int = 1) -> FrozenSet[TaintLabel]:
        """Union of labels over a byte range."""
        combined: FrozenSet[TaintLabel] = frozenset()
        for offset in range(length):
            combined |= self._map.get(address + offset, frozenset())
        return combined

    def is_tainted(self, address: int, length: int = 1) -> bool:
        """True if any byte in the range carries a label."""
        return bool(self.labels_at(address, length))

    def propagate_copy(self, dest: int, src: int, length: int) -> None:
        """Copy taint alongside a memcpy-style data copy."""
        for offset in range(length):
            labels = self._map.get(src + offset)
            if labels:
                self._map[dest + offset] = labels | {TaintLabel.DERIVED}
            else:
                self._map.pop(dest + offset, None)

    def write_tainted(
        self, address: int, data: bytes, *labels: TaintLabel
    ) -> None:
        """Write bytes and label them in one step."""
        self._space.write(address, data)
        self.mark(address, len(data), *labels)

    @property
    def tainted_byte_count(self) -> int:
        """How many bytes currently carry any label."""
        return len(self._map)

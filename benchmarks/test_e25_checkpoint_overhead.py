"""E25 — checkpoint overhead: what resumability costs per round.

Checkpointed campaigns serialize the corpus, coverage, divergences,
and counters to an atomically-replaced JSON file after every round.
This experiment runs the same campaign bare and checkpointed and
records the wall-clock overhead (total and per checkpoint) plus the
on-disk checkpoint size, so the BENCH trajectory catches a checkpoint
format that grows pathological before a long campaign does.  It also
times a resume's restore step — the fixed cost of continuing a killed
run — and asserts the resumed report stays byte-identical.
"""

import time

from conftest import print_table

from repro.fuzz import (
    CampaignInterrupted,
    CheckpointStore,
    FuzzConfig,
    run_campaign,
)

ITERATIONS = 150
BATCH = 25  # rounds of 100: the 150-iteration run checkpoints 3 times


def test_e25_checkpoint_overhead(tmp_path):
    config = FuzzConfig(seed=7, iterations=ITERATIONS, minimize=False)

    started = time.perf_counter()
    bare = run_campaign(config, batch_size=BATCH)
    bare_s = time.perf_counter() - started

    ckpt_dir = tmp_path / "ckpt"
    started = time.perf_counter()
    checkpointed = run_campaign(
        config, batch_size=BATCH, checkpoint_dir=ckpt_dir
    )
    checkpointed_s = time.perf_counter() - started

    store = CheckpointStore(ckpt_dir, create=False)
    latest_path = store.paths()[-1]
    checkpoint_bytes = latest_path.stat().st_size
    rounds = store.latest().round_index
    overhead_s = max(checkpointed_s - bare_s, 0.0)

    # The cost of an actual kill-and-resume: one round in, then finish.
    resume_dir = tmp_path / "resume"
    try:
        run_campaign(
            config,
            batch_size=BATCH,
            checkpoint_dir=resume_dir,
            stop_after_rounds=1,
        )
    except CampaignInterrupted:
        pass
    started = time.perf_counter()
    resumed = run_campaign(
        config, batch_size=BATCH, checkpoint_dir=resume_dir, resume=True
    )
    resume_s = time.perf_counter() - started

    print_table(
        f"E25 checkpoint overhead (seed 7, {ITERATIONS} iterations, "
        f"batch {BATCH})",
        ["metric", "value"],
        [
            ["bare campaign", f"{bare_s:.3f}s"],
            ["checkpointed campaign", f"{checkpointed_s:.3f}s"],
            ["overhead (total)", f"{overhead_s:.3f}s"],
            ["overhead / checkpoint", f"{overhead_s / (rounds + 1):.4f}s"],
            ["checkpoint size", f"{checkpoint_bytes} B"],
            ["resume (round 1 -> done)", f"{resume_s:.3f}s"],
        ],
    )
    assert checkpointed.to_json() == bare.to_json()
    assert resumed.to_json() == bare.to_json()
    # Resumability must stay cheap relative to the work it protects.
    assert overhead_s < max(bare_s, 1.0)

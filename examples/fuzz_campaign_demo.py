"""A tour of repro.fuzz: one differential fuzzing campaign, end to end.

Runs a small fixed-seed campaign through the service worker pool,
prints the rendered report (family reach, coverage, every divergence
with its triage label), demonstrates the determinism contract by
re-running the campaign and comparing report bytes, then minimizes one
divergence by hand the way `repro-fuzz minimize` does.

    PYTHONPATH=src python examples/fuzz_campaign_demo.py
"""

from repro.fuzz import (
    FuzzConfig,
    FuzzInput,
    divergence_from,
    minimize_input,
    run_campaign,
    run_oracles,
)
from repro.service import ServiceEngine

SEED = 7
ITERATIONS = 200

#: A classic static-only divergence: the detector's taint rule claims
#: *some* stdin overflows the pool; a concrete in-bounds run stays
#: clean.  Auto-triage labels this "taint-quantifier".
DIVERGING = FuzzInput(
    source="""\
char pool[64];
void run() {
  int n = 0;
  cin >> n;
  char *buf = new (pool) char[n];
}
""",
    stdin=(8,),
)


def main() -> None:
    # -- one campaign over the worker pool ---------------------------------
    with ServiceEngine(workers=4, use_cache=False) as engine:
        report = engine.fuzz_campaign(
            seed=SEED, iterations=ITERATIONS, batch_size=50
        )
        execs = engine.metrics.counter("fuzz.execs_total").value
    print(report.render())
    print(f"\nservice counter fuzz.execs_total = {execs}")

    # -- the determinism contract ------------------------------------------
    with ServiceEngine(workers=2, use_cache=False) as engine:
        rerun = engine.fuzz_campaign(
            seed=SEED, iterations=ITERATIONS, batch_size=50
        )
    identical = report.to_json() == rerun.to_json()
    print(f"re-run with a different worker count: byte-identical = {identical}")

    # -- sequential works too, same bytes ----------------------------------
    sequential = run_campaign(
        FuzzConfig(seed=SEED, iterations=ITERATIONS)
    )
    print(
        "sequential run produced "
        f"{sequential.execs} execs, "
        f"{len(sequential.divergences)} divergences, "
        f"{len(sequential.untriaged)} un-triaged"
    )

    # -- minimizing one divergence by hand ---------------------------------
    observation = run_oracles(DIVERGING.source, DIVERGING.stdin)
    div = divergence_from(observation, DIVERGING)
    assert div is not None, "expected a static-only divergence"

    def same_fingerprint(candidate: FuzzInput) -> bool:
        obs = run_oracles(candidate.source, candidate.stdin)
        got = divergence_from(obs, candidate)
        return got is not None and got.fingerprint == div.fingerprint

    smallest = minimize_input(DIVERGING, same_fingerprint)
    print(f"\ndivergence {div.fingerprint} ({div.kind})")
    print(f"  rules: {', '.join(div.static_rules)}")
    print("  minimized source:")
    for line in smallest.source.splitlines():
        print(f"    {line}")
    print(f"  minimized stdin: {smallest.stdin}")


if __name__ == "__main__":
    main()

"""Abstract values and environments for the placement-new analysis.

The lattice tracks, per variable:

* **taint** — the set of attacker sources that may influence the value
  (``stdin``, ``param:<name>``, ``remote``, plus ``derived``);
* **const** — a single known integer constant, or ⊤;
* **targets** — a may-point-to set of :class:`PointerTarget`\\ s, which is
  how arena sizes are recovered at placement sites (the paper's core
  difficulty: *"a pointer could have been assigned the address of a
  scalar variable or an array at any given point"*).

Environments join pointwise; taint and target sets grow monotonically
and constants collapse to ⊤ on disagreement, so loop fixpoints terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from . import ast_nodes as ast

#: Sentinel for "some unknown constant".
TOP = object()


@dataclass(frozen=True)
class PointerTarget:
    """One thing a pointer may point at."""

    kind: str  # "var" | "heap" | "placement" | "unknown"
    type_name: str = ""
    size: Optional[int] = None
    var_name: str = ""
    oversize: bool = False
    placement_line: int = 0

    def describe(self) -> str:
        if self.kind == "var":
            return f"&{self.var_name}"
        if self.kind == "heap":
            return f"new {self.type_name} ({self.size}B)"
        if self.kind == "placement":
            flag = " OVERSIZE" if self.oversize else ""
            return f"placement {self.type_name}{flag}"
        return "?"


@dataclass(frozen=True)
class AbstractValue:
    """The lattice element for one variable."""

    taint: frozenset = frozenset()
    const: object = None  # int | None | TOP
    targets: frozenset = frozenset()
    declared: Optional[ast.TypeRef] = None

    @property
    def tainted(self) -> bool:
        return bool(self.taint)

    def with_taint(self, *sources: str) -> "AbstractValue":
        return replace(self, taint=self.taint | frozenset(sources))

    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self is other:
            return self
        if self.const is None:
            const = other.const
        elif other.const is None or self.const == other.const:
            const = self.const
        else:
            const = TOP
        return AbstractValue(
            taint=self.taint | other.taint,
            const=const,
            targets=self.targets | other.targets,
            declared=self.declared or other.declared,
        )

    @property
    def const_int(self) -> Optional[int]:
        return self.const if isinstance(self.const, int) else None


UNKNOWN = AbstractValue()


class Env:
    """A mutable variable → :class:`AbstractValue` map."""

    def __init__(self, values: Optional[dict] = None) -> None:
        self._values: dict[str, AbstractValue] = dict(values or {})

    def get(self, name: str) -> AbstractValue:
        return self._values.get(name, UNKNOWN)

    def set(self, name: str, value: AbstractValue) -> None:
        self._values[name] = value

    def copy(self) -> "Env":
        return Env(self._values)

    def join_with(self, other: "Env") -> "Env":
        """Pointwise join (variables missing on one side join with ⊥/UNKNOWN
        — sound for taint since UNKNOWN carries none, and conservative
        for constants)."""
        merged: dict[str, AbstractValue] = {}
        for name in set(self._values) | set(other._values):
            merged[name] = self.get(name).join(other.get(name))
        return Env(merged)

    def equivalent(self, other: "Env") -> bool:
        names = set(self._values) | set(other._values)
        return all(self.get(name) == other.get(name) for name in names)

    def names(self):
        return tuple(self._values)


def root_name(expr: ast.Expr) -> Optional[str]:
    """The base variable an lvalue expression drills into, if any."""
    current = expr
    while True:
        if isinstance(current, ast.Name):
            return current.ident
        if isinstance(current, ast.Member):
            current = current.obj
            continue
        if isinstance(current, ast.Index):
            current = current.base
            continue
        if isinstance(current, ast.Unary) and current.op in ("*", "&", "++", "--"):
            current = current.operand
            continue
        return None

"""E2 — heap overflow (§3.5.1, Listing 12).

Claim: the placed object's ``ssn[]`` rewrites the adjacent heap ``name``
buffer (and, on a real allocator, the boundary tag between them).
"""

from repro.attacks import UNPROTECTED, HeapOverflowAttack

from conftest import print_table


def run_experiment():
    result = HeapOverflowAttack().run(UNPROTECTED)
    print_table(
        "E2: heap overflow — name[] before/after (Listing 12)",
        ["field", "value"],
        [
            ("name before", result.detail["name_before"]),
            ("name after", result.detail["name_after"]),
            ("heap metadata corrupted", result.detail["heap_metadata_corrupted"]),
            ("bytes between objects", result.detail["overflow_gap"]),
        ],
    )
    return result


def test_e2_shape(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert result.succeeded
    assert result.detail["name_before"] == "abcdefghijklmno"
    # The allocator's in-band header sits between the two payloads and
    # is trampled on the way — the realistic collateral damage.
    assert result.detail["heap_metadata_corrupted"]

"""Segments of the simulated process image.

The paper's attacks are classified by which segment the overflowed arena
lives in — stack, heap, or data/bss (Section 3.5: *"instances stud1 and
stud2 are allocated in data/bss area (ELF format)"*).  A
:class:`Segment` is a contiguous virtual-address range backed by a
``bytearray``, with read/write/execute permissions so that NX-stack
defenses (Section 5.2) can be modelled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ApiMisuseError, SegmentationFault


class SegmentKind(enum.Enum):
    """The ELF-style segment classes the paper refers to."""

    TEXT = "text"
    DATA = "data"
    BSS = "bss"
    HEAP = "heap"
    STACK = "stack"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Permissions:
    """Read/write/execute permission bits for a segment."""

    read: bool = True
    write: bool = True
    execute: bool = False

    def describe(self) -> str:
        """Render like the ``/proc/<pid>/maps`` permission column."""
        return (
            ("r" if self.read else "-")
            + ("w" if self.write else "-")
            + ("x" if self.execute else "-")
        )


#: Conventional permissions per segment kind for a classic (pre-NX) process,
#: matching the paper's Ubuntu 10.04 testbed where code injection on the
#: stack was meaningful.
DEFAULT_PERMISSIONS = {
    SegmentKind.TEXT: Permissions(read=True, write=False, execute=True),
    SegmentKind.DATA: Permissions(read=True, write=True, execute=False),
    SegmentKind.BSS: Permissions(read=True, write=True, execute=False),
    SegmentKind.HEAP: Permissions(read=True, write=True, execute=True),
    SegmentKind.STACK: Permissions(read=True, write=True, execute=True),
}


@dataclass
class Segment:
    """A contiguous, byte-addressable region of the simulated image."""

    kind: SegmentKind
    base: int
    size: int
    permissions: Permissions = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ApiMisuseError(f"segment size must be positive, got {self.size}")
        if self.base < 0:
            raise ApiMisuseError(f"segment base must be non-negative, got {self.base}")
        if self.permissions is None:
            self.permissions = DEFAULT_PERMISSIONS[self.kind]
        self._data = bytearray(self.size)
        # Persistent view: lets read() hand out bytes with a single copy
        # instead of slice-copy + bytes()-copy.  Segments never resize,
        # so keeping the buffer exported is safe.
        self._view = memoryview(self._data)
        # Hot-path precomputations.  Segment geometry and permissions are
        # immutable after construction (NX variants are chosen at
        # AddressSpace construction), so `end` and the permission bits
        # can be plain attributes instead of per-access property chains.
        self.end = self.base + self.size
        self._readable = self.permissions.read
        self._writable = self.permissions.write

    def contains(self, address: int, length: int = 1) -> bool:
        """True if ``[address, address+length)`` lies fully inside."""
        return self.base <= address and address + length <= self.end

    def _offset(self, address: int, length: int, access: str) -> int:
        if not self.contains(address, length):
            raise SegmentationFault(
                address, access, f"outside {self.kind.value} segment"
            )
        return address - self.base

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes; faults if unreadable or out of range."""
        if not self._readable:
            raise SegmentationFault(address, "read", "segment is not readable")
        offset = address - self.base
        stop = offset + length
        if offset < 0 or stop > self.size:
            raise SegmentationFault(
                address, "read", f"outside {self.kind.value} segment"
            )
        # One copy: slicing the memoryview is free, bytes() materializes.
        return bytes(self._view[offset:stop])

    def write(self, address: int, data: bytes) -> None:
        """Write ``data``; faults if unwritable or out of range."""
        if not self._writable:
            raise SegmentationFault(address, "write", "segment is not writable")
        offset = address - self.base
        stop = offset + len(data)
        if offset < 0 or stop > self.size:
            raise SegmentationFault(
                address, "write", f"outside {self.kind.value} segment"
            )
        self._data[offset:stop] = data

    def fill(self, address: int, length: int, byte: int = 0) -> None:
        """memset-style fill, used by memory sanitization (Section 5.1).

        One slice assignment on the backing ``bytearray`` — large
        sanitization fills must not build intermediate per-byte lists.
        """
        if not 0 <= byte <= 0xFF:
            raise ApiMisuseError(f"fill byte out of range: {byte}")
        if not self._writable:
            raise SegmentationFault(address, "write", "segment is not writable")
        offset = self._offset(address, max(length, 0), "write")
        if length > 0:
            self._data[offset : offset + length] = (
                bytes(length) if byte == 0 else bytes((byte,)) * length
            )

    def find_byte(self, byte: int, address: int, span: int) -> int:
        """Offset-free scan: the address of the first ``byte`` in
        ``[address, address+span)``, or -1.  Bounds are the caller's
        problem (the fast path has already checked them); the scan runs
        at C speed on the backing ``bytearray``."""
        offset = address - self.base
        found = self._data.find(byte, offset, offset + span)
        return -1 if found < 0 else self.base + found

    def snapshot(self) -> bytes:
        """Copy of the whole segment's contents (for forensics/diffs)."""
        return bytes(self._data)

    def describe(self) -> str:
        """One line in the style of ``/proc/<pid>/maps``."""
        return (
            f"{self.base:08x}-{self.end:08x} {self.permissions.describe()} "
            f"{self.kind.value}"
        )

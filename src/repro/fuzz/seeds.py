"""Seed inputs: where a campaign's corpus starts.

Two sources, both deterministic under the campaign seed:

* ``workloads.generators`` — one vulnerable and one safe program from
  every shape family (including the leak and DoS families the fuzzer
  exists to exercise, and the CAPEC-10 taint-source family whose
  placement counts arrive via env/argv/stream plumbing), each carrying
  its suggested attacker stdin and a ground-truth label;
* ``workloads.corpus`` — the paper's placement-new listings, which give
  the mutator realistic interprocedural and vtable material.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..workloads.corpus import PLACEMENT_CORPUS
from ..workloads.generators import ALL_SHAPES, generate_program


@dataclass(frozen=True)
class FuzzInput:
    """One fuzzable unit: a source file plus its scripted stdin."""

    source: str
    stdin: tuple = ()
    family: str = ""  # seed family ("direct", "leak", "corpus", ...)
    label: str = ""  # "vulnerable" / "safe" for labeled seeds, else ""

    def key(self) -> tuple:
        return (self.source, self.stdin)


def generator_seeds(seed: int) -> list:
    """Labeled seeds: every generator family, both ground truths."""
    inputs = []
    for index, shape in enumerate(ALL_SHAPES):
        for vulnerable in (True, False):
            rng = random.Random((seed, shape, vulnerable).__repr__())
            program = generate_program(rng, vulnerable, shape=shape)
            inputs.append(
                FuzzInput(
                    source=program.source,
                    stdin=program.stdin,
                    family=shape,
                    label="vulnerable" if vulnerable else "safe",
                )
            )
    return inputs


def corpus_seeds() -> list:
    """The paper listings as unlabeled mutation material."""
    return [
        FuzzInput(source=program.source, family="corpus", label="")
        for program in PLACEMENT_CORPUS
    ]


def seed_inputs(seed: int) -> list:
    """The full deterministic seed list for one campaign."""
    return generator_seeds(seed) + corpus_seeds()

"""E14 — the attack × defense matrix (§5).

Claims reproduced as one table: everything wins unprotected; StackGuard
is blind to placement-new object overflows; the §5.1 checked placement
stops every overflow-based attack; sanitize-on-reuse stops the
information leaks; NX stops only code injection; shadow-memory red zones
catch the stray writes.
"""

import pytest

from repro.attacks import all_attacks
from repro.defenses import ALL_DEFENSES, LibSafePlacementGuard, evaluate_matrix


def run_experiment():
    matrix = evaluate_matrix(all_attacks(), ALL_DEFENSES)
    print()
    print(matrix.render(column_width=24))
    return matrix


def test_e14_shape(benchmark):
    matrix = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    total = len(matrix.attack_names())

    # Baseline: the paper demonstrated every attack.
    assert matrix.wins_for_defense("none") == total

    # StackGuard: blind to the placement-new attacks; it only stops the
    # naive strncpy smash inside the two-step stack attack.
    stackguard_wins = matrix.wins_for_defense("stackguard")
    assert stackguard_wins >= total - 2

    # Correct coding (§5.1): every overflow-driven attack is blocked;
    # only the leak measurements (different countermeasure) remain.
    checked_wins = matrix.wins_for_defense("checked-placement")
    assert checked_wins <= 5
    leak_cell = matrix.cell("memory-leak", "checked-placement")
    assert leak_cell.result.succeeded  # bounds checks don't fix leaks

    # Sanitize-on-reuse stops exactly the info leaks.
    assert not matrix.cell("info-leak-array", "sanitize-on-reuse").result.succeeded
    assert not matrix.cell("info-leak-object", "sanitize-on-reuse").result.succeeded

    # NX: code injection only.
    assert not matrix.cell("code-injection", "nx-stack").result.succeeded
    assert matrix.cell("arc-injection", "nx-stack").result.succeeded

    # Shadow memory catches the overflow writes.
    assert not matrix.cell("data-bss-overflow", "shadow-memory").result.succeeded

    # The §5.2 return-address stack stops what StackGuard cannot: the
    # selective overwrite inside stack-return-address and both injections.
    assert not matrix.cell("stack-return-address", "shadow-ret-stack").result.succeeded
    assert not matrix.cell("arc-injection", "shadow-ret-stack").result.succeeded
    # ... but it says nothing about data-only attacks.
    assert matrix.cell("data-bss-overflow", "shadow-ret-stack").result.succeeded

    # Forward-edge CFI stops exactly the vtable subterfuge.
    assert not matrix.cell("vtable-subterfuge-bss", "vtable-integrity").result.succeeded
    assert not matrix.cell("vtable-subterfuge-stack", "vtable-integrity").result.succeeded
    assert matrix.cell("stack-return-address", "vtable-integrity").result.succeeded


def test_e14b_libsafe_coverage_gap(benchmark):
    """§5.2's library-interception caveat, measured: the guard blocks
    every placement whose arena it can identify, but a raw interior
    address — 'just an address, not a lexically declared array' — sails
    through unchecked."""
    from repro.core import new_object
    from repro.errors import BoundsCheckViolation
    from repro.memory import SegmentKind
    from repro.runtime import Machine
    from repro.workloads import make_student_classes

    def run_guarded_placements():
        machine = Machine()
        student, grad = make_student_classes()
        guard = LibSafePlacementGuard(machine)
        blocked = 0
        # 1) arena known via tracker: oversize placement → blocked.
        small = machine.static_object(student, "small")
        try:
            guard.place(small.address, grad)
        except BoundsCheckViolation:
            blocked += 1
        # 2) arena known, placement fits → allowed.
        big = new_object(machine, grad)
        guard.place(big.address, student)
        # 3) raw interior address: the blind spot.
        interior = machine.space.segment(SegmentKind.BSS).base + 100
        guard.place(interior, grad)
        return guard.coverage_report(), blocked

    report, blocked = benchmark.pedantic(
        run_guarded_placements, rounds=1, iterations=1
    )
    print(f"\n=== E14b: libsafe-style interception coverage ===\n{report}")
    assert blocked == 1
    assert report["placements"] == 3
    assert report["blind_spots"] == 1
    assert report["coverage"] == pytest.approx(2 / 3)


"""StackGuard canaries, as shipped by gcc and probed in Section 5.2.

The paper's StackGuard experiment has two halves: naive stack smashing is
*detected* (the process aborts), while a **selective overwrite** that
skips the canary word goes *undetected*.  Both outcomes depend only on
the canary's value surviving until function return, which this module
models: a policy chooses the canary value, the frame writes it below the
saved registers, and the epilogue verifies it.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from ..errors import ApiMisuseError

#: The classic terminator canary: NUL, CR, LF, 0xFF — bytes that string
#: functions cannot copy past.  (Irrelevant to placement-new overflows,
#: which are not string copies: the paper's point exactly.)
TERMINATOR_CANARY = 0x000AFF0D


class CanaryPolicy(enum.Enum):
    """Which stack-protector flavour a machine is compiled with."""

    NONE = "none"
    TERMINATOR = "terminator"
    RANDOM = "random"

    @property
    def enabled(self) -> bool:
        """True if frames carry a canary word."""
        return self is not CanaryPolicy.NONE


@dataclass(frozen=True)
class CanaryCheck:
    """Result of one epilogue verification."""

    expected: int
    found: int

    @property
    def intact(self) -> bool:
        """True when the canary survived the function body."""
        return self.expected == self.found


class CanarySource:
    """Produces per-process canary values under a given policy.

    gcc derives one random canary per process at startup; we mirror that
    (one draw per source) so selective-overwrite attacks cannot trivially
    re-derive it, while tests can seed it for determinism.
    """

    def __init__(self, policy: CanaryPolicy, seed: int | None = None) -> None:
        self._policy = policy
        rng = random.Random(seed)
        if policy is CanaryPolicy.RANDOM:
            # Keep a zero byte in position 0 like glibc, which also
            # terminates string copies.
            self._value = (rng.getrandbits(24) << 8) & 0xFFFFFFFF
        elif policy is CanaryPolicy.TERMINATOR:
            self._value = TERMINATOR_CANARY
        else:
            self._value = 0

    @property
    def policy(self) -> CanaryPolicy:
        """The active policy."""
        return self._policy

    @property
    def value(self) -> int:
        """The process-wide canary word."""
        if not self._policy.enabled:
            raise ApiMisuseError("no canary under policy 'none'")
        return self._value

    def check(self, found: int) -> CanaryCheck:
        """Compare a frame's canary slot against the expected value."""
        return CanaryCheck(expected=self.value, found=found)

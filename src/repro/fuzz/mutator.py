"""Structure-aware mutations over MiniC++ ASTs.

Mutants are produced by parse → rebuild → unparse, never by raw text
splicing, so nearly every mutant parses again; a mutant that does not
(or that equals its parent) is discarded by returning ``None``.  The
operators deliberately target the seams the paper's bug class lives on:
size literals, ``sizeof`` guards, the placed type of a placement new,
statement presence/ordering, class field lists, and the attacker's
stdin script.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional

from ..analysis import ast_nodes as ast
from ..analysis import parse
from ..analysis.unparse import unparse_program
from ..errors import ParseError
from .seeds import FuzzInput

#: Comparison flips that invert a guard's direction.
_FLIP = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "!=", "!=": "=="}

#: Values an int literal may be nudged to (beyond arithmetic nudges).
_MAGIC_INTS = (0, 1, 8, 64, 255, 4096, 9_000_001)


def transform(node, visit: Callable):
    """Depth-first rebuild of an AST; ``visit`` may replace any node.

    Children are rebuilt first; ``visit`` then sees the rebuilt node and
    may return a replacement (or ``None`` to keep it).  Untouched
    subtrees keep their identity, so ``result is node`` means "no
    change".
    """
    if isinstance(node, tuple):
        rebuilt = tuple(transform(item, visit) for item in node)
        return node if all(a is b for a, b in zip(rebuilt, node)) else rebuilt
    if not dataclasses.is_dataclass(node) or isinstance(node, type):
        return node
    changes = {}
    for spec in dataclasses.fields(node):
        value = getattr(node, spec.name)
        rebuilt = transform(value, visit)
        if rebuilt is not value:
            changes[spec.name] = rebuilt
    result = dataclasses.replace(node, **changes) if changes else node
    replacement = visit(result)
    return result if replacement is None else replacement


def _collect(node, want: Callable) -> list:
    """Every sub-node matching ``want``, in deterministic visit order."""
    found: list = []

    def visit(candidate):
        if want(candidate):
            found.append(candidate)
        return None

    transform(node, visit)
    return found


def _replace_nth(node, want: Callable, index: int, make: Callable):
    """Rebuild ``node`` with ``make(match)`` replacing the nth match."""
    state = {"seen": 0}

    def visit(candidate):
        if not want(candidate):
            return None
        position = state["seen"]
        state["seen"] += 1
        return make(candidate) if position == index else None

    return transform(node, visit)


# -- operators ---------------------------------------------------------------


def _tweak_int(rng: random.Random, program: ast.Program):
    literals = _collect(program, lambda n: isinstance(n, ast.IntLit))
    if not literals:
        return None
    index = rng.randrange(len(literals))
    old = literals[index].value
    value = rng.choice((old + 1, max(old - 1, 0), old * 2, *_MAGIC_INTS))
    if value == old:
        return None
    return _replace_nth(
        program,
        lambda n: isinstance(n, ast.IntLit),
        index,
        lambda lit: dataclasses.replace(lit, value=value),
    )


def _flip_comparison(rng: random.Random, program: ast.Program):
    def is_cmp(node):
        return isinstance(node, ast.Binary) and node.op in _FLIP

    comparisons = _collect(program, is_cmp)
    if not comparisons:
        return None
    index = rng.randrange(len(comparisons))
    return _replace_nth(
        program,
        is_cmp,
        index,
        lambda node: dataclasses.replace(node, op=_FLIP[node.op]),
    )


def _swap_placed_type(rng: random.Random, program: ast.Program):
    class_names = [cls.name for cls in program.classes]
    if len(class_names) < 2:
        return None

    def is_placement(node):
        return (
            isinstance(node, ast.NewExpr)
            and node.is_placement
            and node.type_name in class_names
        )

    placements = _collect(program, is_placement)
    if not placements:
        return None
    index = rng.randrange(len(placements))
    current = placements[index].type_name
    other = rng.choice([name for name in class_names if name != current])
    return _replace_nth(
        program,
        is_placement,
        index,
        lambda node: dataclasses.replace(node, type_name=other),
    )


def _blocks_of(program: ast.Program) -> list:
    return _collect(program, lambda n: isinstance(n, ast.Block))


def _edit_block(program, rng, edit: Callable):
    """Apply ``edit(statements) -> statements`` to one random block."""
    blocks = [b for b in _blocks_of(program) if b.statements]
    if not blocks:
        return None
    target = rng.randrange(len(blocks))

    def is_busy_block(node):
        return isinstance(node, ast.Block) and node.statements

    return _replace_nth(
        program,
        is_busy_block,
        target,
        lambda block: dataclasses.replace(
            block, statements=edit(block.statements, rng)
        ),
    )


def _drop_statement(rng: random.Random, program: ast.Program):
    def edit(statements, rng):
        index = rng.randrange(len(statements))
        return statements[:index] + statements[index + 1 :]

    return _edit_block(program, rng, edit)


def _duplicate_statement(rng: random.Random, program: ast.Program):
    def edit(statements, rng):
        index = rng.randrange(len(statements))
        return (
            statements[: index + 1]
            + (statements[index],)
            + statements[index + 1 :]
        )

    return _edit_block(program, rng, edit)


def _add_field(rng: random.Random, program: ast.Program):
    if not program.classes:
        return None
    index = rng.randrange(len(program.classes))
    target = program.classes[index]
    extra = ast.FieldDecl(
        type=ast.TypeRef(name=rng.choice(("int", "double", "char"))),
        name=f"mf{len(target.fields)}",
    )
    classes = list(program.classes)
    classes[index] = dataclasses.replace(
        target, fields=target.fields + (extra,)
    )
    return dataclasses.replace(program, classes=tuple(classes))


_PROGRAM_OPERATORS = (
    ("tweak-int", _tweak_int),
    ("flip-comparison", _flip_comparison),
    ("swap-placed-type", _swap_placed_type),
    ("drop-statement", _drop_statement),
    ("duplicate-statement", _duplicate_statement),
    ("add-field", _add_field),
)


def _mutate_stdin(rng: random.Random, stdin: tuple) -> tuple:
    tokens = list(stdin) or [7]
    choice = rng.randrange(3)
    if choice == 0:
        tokens[rng.randrange(len(tokens))] = rng.choice(_MAGIC_INTS)
    elif choice == 1:
        tokens.append(rng.choice(_MAGIC_INTS))
    elif len(tokens) > 1:
        tokens.pop(rng.randrange(len(tokens)))
    return tuple(tokens)


def mutate(rng: random.Random, parent: FuzzInput) -> Optional[FuzzInput]:
    """One mutation of ``parent``; ``None`` when the attempt fizzles."""
    if rng.random() < 0.15:
        stdin = _mutate_stdin(rng, parent.stdin)
        if stdin == parent.stdin:
            return None
        return dataclasses.replace(parent, stdin=stdin, label="")
    try:
        program = parse(parent.source)
    except ParseError:
        return None
    name, operator = _PROGRAM_OPERATORS[rng.randrange(len(_PROGRAM_OPERATORS))]
    mutant = operator(rng, program)
    if mutant is None or mutant is program:
        return None
    try:
        source = unparse_program(mutant)
        parse(source)  # a mutant must still be a program
    except (ParseError, ValueError):
        return None
    if source == parent.source:
        return None
    return FuzzInput(
        source=source, stdin=parent.stdin, family=parent.family, label=""
    )

"""Tests for the record-layout engine — the paper's sizeof ground truth."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cxx import (
    CHAR,
    DOUBLE,
    INT,
    LayoutEngine,
    VirtualMethod,
    array_of,
    class_type,
    make_class,
)
from repro.errors import LayoutError
from repro.workloads import make_student_classes


@pytest.fixture
def engine():
    return LayoutEngine()


class TestPaperGroundTruth:
    """DESIGN.md §4: the numbers every attack offset derives from."""

    def test_student_layout(self, engine):
        student, _ = make_student_classes()
        layout = engine.layout_of(student)
        assert layout.size == 16
        assert layout.alignment == 8
        assert layout.slot("gpa").offset == 0
        assert layout.slot("year").offset == 8
        assert layout.slot("semester").offset == 12
        assert not layout.has_vptr

    def test_gradstudent_layout(self, engine):
        student, grad = make_student_classes()
        layout = engine.layout_of(grad)
        assert layout.size == 32
        assert layout.slot("ssn").offset == 16
        assert layout.tail_padding() == 4  # ssn ends at 28, size 32

    def test_overflow_distance(self, engine):
        # Placing GradStudent at a Student arena writes 16 extra bytes.
        student, grad = make_student_classes()
        assert engine.sizeof(grad) - engine.sizeof(student) == 16

    def test_virtual_student_has_vptr_first(self, engine):
        student, _ = make_student_classes(virtual=True)
        layout = engine.layout_of(student)
        assert layout.has_vptr
        assert layout.primary_vptr_offset == 0
        assert layout.slot("gpa").offset == 8  # vptr 4B + 4B padding
        assert layout.size == 24

    def test_virtual_grad_shares_primary_vptr(self, engine):
        _, grad = make_student_classes(virtual=True)
        layout = engine.layout_of(grad)
        assert layout.vptr_offsets == (0,)
        assert layout.slot("ssn").offset == 24
        assert layout.size == 40


class TestGeneralLayout:
    def test_empty_class_size_one(self, engine):
        empty = make_class("Empty")
        assert engine.sizeof(empty) == 1

    def test_char_then_int_padding(self, engine):
        cls = make_class("Padded", fields=[("c", CHAR), ("i", INT)])
        layout = engine.layout_of(cls)
        assert layout.slot("c").offset == 0
        assert layout.slot("i").offset == 4
        assert layout.size == 8

    def test_tail_padding_for_alignment(self, engine):
        cls = make_class("Tail", fields=[("d", DOUBLE), ("c", CHAR)])
        layout = engine.layout_of(cls)
        assert layout.size == 16
        assert layout.tail_padding() == 7

    def test_inherited_fields_keep_base_offsets(self, engine):
        base = make_class("Base", fields=[("x", INT)])
        derived = make_class("Derived", bases=[base], fields=[("y", INT)])
        layout = engine.layout_of(derived)
        assert layout.slot("x").offset == 0
        assert layout.slot("y").offset == 4
        assert layout.base_offset("Base") == 0

    def test_field_shadowing_most_derived_wins(self, engine):
        base = make_class("Base2", fields=[("x", INT)])
        derived = make_class("Derived2", bases=[base], fields=[("x", DOUBLE)])
        layout = engine.layout_of(derived)
        assert layout.slot("x").ctype is DOUBLE

    def test_multiple_inheritance_two_vptrs(self, engine):
        # Section 3.8.2: "In case of multiple inheritance, there are
        # more than one vtable pointers in a given instance."
        info = VirtualMethod("info", lambda m, i: "x")
        a = make_class("PolyA", fields=[("a", INT)], virtuals=[info])
        b = make_class("PolyB", fields=[("b", INT)], virtuals=[info])
        both = make_class("PolyBoth", bases=[a, b], fields=[("c", INT)])
        layout = engine.layout_of(both)
        assert len(layout.vptr_offsets) == 2
        assert layout.vptr_offsets[0] == 0
        assert layout.base_offset("PolyB") == layout.vptr_offsets[1]

    def test_second_base_after_first(self, engine):
        a = make_class("MA", fields=[("a", INT)])
        b = make_class("MB", fields=[("b", INT)])
        both = make_class("MBoth", bases=[a, b])
        layout = engine.layout_of(both)
        assert layout.base_offset("MA") == 0
        assert layout.base_offset("MB") == 4

    def test_transitive_base_offsets(self, engine):
        a = make_class("GA", fields=[("a", INT)])
        b = make_class("GB", bases=[a], fields=[("b", INT)])
        c = make_class("GC", bases=[b], fields=[("c", INT)])
        layout = engine.layout_of(c)
        assert layout.base_offset("GA") == 0
        assert layout.base_offset("GB") == 0
        assert layout.slot("c").offset == 8

    def test_array_member(self, engine):
        cls = make_class("WithArr", fields=[("vals", array_of(INT, 3))])
        layout = engine.layout_of(cls)
        assert layout.slot("vals").ctype.size == 12
        assert layout.size == 12

    def test_class_type_member_matches_nested_layout(self, engine):
        student, _ = make_student_classes()
        member = class_type(student)
        host = make_class(
            "Host", fields=[("s1", member), ("s2", member), ("n", INT)]
        )
        layout = engine.layout_of(host)
        assert layout.slot("s1").offset == 0
        assert layout.slot("s2").offset == 16
        assert layout.slot("n").offset == 32
        assert layout.size == 40  # 36 rounded to align 8

    def test_unknown_field_raises(self, engine):
        student, _ = make_student_classes()
        with pytest.raises(LayoutError):
            engine.layout_of(student).slot("nope")

    def test_unknown_base_raises(self, engine):
        student, _ = make_student_classes()
        with pytest.raises(LayoutError):
            engine.layout_of(student).base_offset("Nope")

    def test_describe_includes_fields(self, engine):
        student, _ = make_student_classes()
        text = engine.layout_of(student).describe()
        assert "gpa" in text and "size=16" in text

    def test_cache_consistency(self, engine):
        student, _ = make_student_classes()
        assert engine.layout_of(student) is engine.layout_of(student)


SCALARS = st.sampled_from([CHAR, INT, DOUBLE])


@given(st.lists(SCALARS, min_size=1, max_size=8))
def test_property_layout_invariants(field_types):
    """Offsets are aligned, non-overlapping, and within sizeof."""
    engine = LayoutEngine()
    cls = make_class(
        "Prop", fields=[(f"f{i}", t) for i, t in enumerate(field_types)]
    )
    layout = engine.layout_of(cls)
    previous_end = 0
    for slot in layout.field_slots:
        assert slot.offset % slot.ctype.alignment == 0
        assert slot.offset >= previous_end
        previous_end = slot.end
    assert layout.size >= previous_end
    assert layout.size % layout.alignment == 0
    assert layout.alignment == max(t.alignment for t in field_types)


@given(st.lists(SCALARS, min_size=1, max_size=6), st.lists(SCALARS, min_size=1, max_size=6))
def test_property_derived_at_least_base(base_fields, derived_fields):
    """sizeof(Derived) >= sizeof(Base) — the overflow precondition."""
    engine = LayoutEngine()
    base = make_class(
        "PB", fields=[(f"b{i}", t) for i, t in enumerate(base_fields)]
    )
    derived = make_class(
        "PD",
        bases=[base],
        fields=[(f"d{i}", t) for i, t in enumerate(derived_fields)],
    )
    assert engine.sizeof(derived) > engine.sizeof(base) or (
        engine.sizeof(derived) == engine.sizeof(base)
    )
    base_layout = engine.layout_of(base)
    derived_layout = engine.layout_of(derived)
    for slot in base_layout.field_slots:
        assert derived_layout.slot(slot.name).offset == slot.offset

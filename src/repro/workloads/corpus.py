"""MiniC++ source corpus: the paper's listings as analyzable programs.

Each entry is a :class:`CorpusProgram` — source text, the vulnerability
classes the paper attributes to it, and whether classic (non-placement)
scanners should flag anything.  The corpus drives experiment E13 (tool
coverage) and the analyzer's test suite.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusProgram:
    """One analyzable program and its ground-truth labels."""

    key: str
    paper_ref: str
    source: str
    expected_rules: tuple  # analyzer rule ids expected to fire
    classic_vulnerable: bool = False  # should legacy scanners flag it?


_CLASSES = """
class Student {
  public:
    Student();
    Student(double g, int y, int s);
    double gpa;
    int year, semester;
};
class GradStudent : public Student {
  public:
    GradStudent();
    GradStudent(double g, int y, int s);
    int ssn[3];
};
"""

_VIRTUAL_CLASSES = """
class Student {
  public:
    Student();
    virtual char* getInfo();
    double gpa;
    int year, semester;
};
class GradStudent : public Student {
  public:
    GradStudent();
    virtual char* getInfo();
    int ssn[3];
};
"""

LISTING_4 = CorpusProgram(
    key="listing4-construction",
    paper_ref="§3.1, Listing 4",
    source=_CLASSES
    + """
void addStudent(double gpa) {
  Student stud;
  GradStudent *st = new (&stud) GradStudent(gpa, 2009, 1);
}
""",
    expected_rules=("PN-OVERSIZE",),
)

LISTING_5 = CorpusProgram(
    key="listing5-remote-names",
    paper_ref="§3.2, Listing 5",
    source="""
class string { public: string(); int length; };
string *st;
void receiveNames(int n) {
  string *stnames = new (st) string[n];
}
""",
    expected_rules=("PN-TAINTED-COUNT",),
)

LISTING_6 = CorpusProgram(
    key="listing6-remote-copy",
    paper_ref="§3.2, Listing 6",
    source=_CLASSES
    + """
class Remote { public: int n; int courseid[2]; };
Student stud;
void addStudent(Remote *remoteobj) {
  GradStudent *st = new (&stud) GradStudent(1.0, 2009, 1);
  int i = -1;
  while (++i < remoteobj->n) {
    st->ssn[i] = remoteobj->courseid[i];
  }
}
""",
    expected_rules=("PN-OVERSIZE", "PN-TAINTED-COPY-LOOP"),
)

LISTING_7 = CorpusProgram(
    key="listing7-copy-constructor",
    paper_ref="§3.2, Listing 7",
    source=_CLASSES
    + """
Student stud;
void addStudent(Student *remoteobj) {
  GradStudent *st = new (&stud) GradStudent(remoteobj->gpa, 2009, 1);
}
""",
    expected_rules=("PN-OVERSIZE",),
)

LISTING_10 = CorpusProgram(
    key="listing10-internal",
    paper_ref="§3.4, Listing 10",
    source=_CLASSES
    + """
class MobilePlayer {
  public:
    Student stud1, stud2;
    int n;
    void addStudentPlayer(Student *stptr) {
      GradStudent *st = new (&stud1) GradStudent(2.0, 2010, 1);
      ++n;
    }
};
""",
    expected_rules=("PN-OVERSIZE",),
)

LISTING_11 = CorpusProgram(
    key="listing11-data-bss",
    paper_ref="§3.5, Listing 11",
    source=_CLASSES
    + """
Student stud1, stud2;
bool addStudent(bool isGradStudent) {
  GradStudent *st;
  if (isGradStudent) {
    st = new (&stud1) GradStudent(4.0, 2009, 1);
    cin >> st->ssn[0] >> st->ssn[1] >> st->ssn[2];
  } else {
    Student *s2 = new (&stud2) Student(3.0, 2009, 1);
  }
  return true;
}
""",
    expected_rules=("PN-OVERSIZE", "PN-TAINTED-FIELD"),
)

LISTING_12 = CorpusProgram(
    key="listing12-heap",
    paper_ref="§3.5.1, Listing 12",
    source=_CLASSES
    + """
Student *stud;
char *name;
int main(int argc, char **argv) {
  stud = new Student();
  GradStudent *st = new (stud) GradStudent();
  name = new char[16];
  strncpy(name, "abcdefghijklmno", 16);
  cin >> st->ssn[0];
  cin >> st->ssn[1];
  cin >> st->ssn[2];
  return 0;
}
""",
    expected_rules=("PN-OVERSIZE", "PN-TAINTED-FIELD"),
)

LISTING_13 = CorpusProgram(
    key="listing13-stack-return",
    paper_ref="§3.6.1, Listing 13",
    source=_CLASSES
    + """
void addStudent(bool isGradStudent) {
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    int i = -1;
    int dssn = 0;
    while (++i < 3) {
      cin >> dssn;
      if (dssn > 0) {
        gs->ssn[i] = dssn;
      }
    }
  }
}
""",
    expected_rules=("PN-OVERSIZE", "PN-TAINTED-FIELD"),
)

LISTING_15 = CorpusProgram(
    key="listing15-local-variable",
    paper_ref="§3.7.2, Listing 15",
    source=_CLASSES
    + """
void addStudent(bool isGradStudent) {
  int n = 5;
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    cin >> gs->ssn[1];
  }
  for (int i = 0; i < n; ++i) {
    processOne(i);
  }
}
""",
    expected_rules=("PN-OVERSIZE", "PN-TAINTED-FIELD"),
)

LISTING_17 = CorpusProgram(
    key="listing17-function-pointer",
    paper_ref="§3.9, Listing 17",
    source=_CLASSES
    + """
void addStudent(bool isGradStudent) {
  int createStudentAccount = 0;
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    cin >> gs->ssn[1];
  }
  if (createStudentAccount != 0) {
    invokeAccount(createStudentAccount);
  }
}
""",
    expected_rules=("PN-OVERSIZE", "PN-TAINTED-FIELD"),
)

LISTING_19 = CorpusProgram(
    key="listing19-two-step-stack",
    paper_ref="§4.1, Listing 19",
    source=_CLASSES
    + """
bool sortAndAddUname(char *uname, bool isGrad, int n_students) {
  char mem_pool[64];
  int n_unames = 0;
  Student stud;
  cin >> n_unames;
  if (n_unames > n_students) {
    return false;
  }
  if (isGrad) {
    GradStudent *st = new (&stud) GradStudent();
    cin >> st->ssn[0] >> st->ssn[1] >> st->ssn[2];
  }
  char *buf = new (mem_pool) char[n_unames * 8];
  strncpy(buf, uname, n_unames * 8);
  return true;
}
""",
    expected_rules=("PN-OVERSIZE", "PN-TAINTED-FIELD", "PN-TAINTED-COUNT"),
)

LISTING_21 = CorpusProgram(
    key="listing21-info-leak-array",
    paper_ref="§4.3, Listing 21",
    source="""
char mem_pool[256];
char *userdata;
int main(int argc, char **argv) {
  readFile("/etc/passwd", mem_pool, 256);
  userdata = new (mem_pool) char[256];
  store(userdata);
  return 0;
}
""",
    expected_rules=("PN-NO-SANITIZE",),
)

LISTING_22 = CorpusProgram(
    key="listing22-info-leak-object",
    paper_ref="§4.3, Listing 22",
    source=_CLASSES
    + """
GradStudent *gst;
int main(int argc, char **argv) {
  gst = new GradStudent();
  Student *st = new (gst) Student();
  store(st);
  return 0;
}
""",
    expected_rules=("PN-NO-SANITIZE",),
)

LISTING_23 = CorpusProgram(
    key="listing23-memory-leak",
    paper_ref="§4.5, Listing 23",
    source=_CLASSES
    + """
void addStudents(int n_students) {
  for (int i = 0; i < n_students; i = i + 2) {
    GradStudent *stud = new GradStudent();
    Student *st = new (stud) Student();
    delete st;
    stud = NULL;
  }
}
""",
    expected_rules=("PN-LEAK",),
)

VTABLE_VARIANT = CorpusProgram(
    key="vtable-subterfuge",
    paper_ref="§3.8.2",
    source=_VIRTUAL_CLASSES
    + """
Student stud1, stud2;
void addStudent() {
  GradStudent *st = new (&stud1) GradStudent();
  cin >> st->ssn[0];
}
""",
    expected_rules=("PN-OVERSIZE", "PN-TAINTED-FIELD", "PN-VPTR-RISK"),
)

SAFE_PLACEMENT = CorpusProgram(
    key="safe-placement",
    paper_ref="(control: correct code)",
    source=_CLASSES
    + """
void recycle() {
  GradStudent big;
  Student *st = new (&big) Student();
  st->gpa = 3.0;
}
""",
    expected_rules=(),
)

SAFE_CHECKED = CorpusProgram(
    key="safe-checked-placement",
    paper_ref="§5.1 (control: correct coding)",
    source=_CLASSES
    + """
Student stud;
void addStudent() {
  if (sizeof(GradStudent) <= sizeof(Student)) {
    GradStudent *st = new (&stud) GradStudent();
  }
}
""",
    expected_rules=(),
)

CLASSIC_STRCPY = CorpusProgram(
    key="classic-strcpy",
    paper_ref="(control: classic overflow)",
    source="""
void copyName(char *input) {
  char buf[16];
  strcpy(buf, input);
}
""",
    expected_rules=("CLASSIC-UNSAFE-API",),
    classic_vulnerable=True,
)

CLASSIC_GETS = CorpusProgram(
    key="classic-gets",
    paper_ref="(control: classic overflow)",
    source="""
void readLine() {
  char line[80];
  gets(line);
}
""",
    expected_rules=("CLASSIC-UNSAFE-API",),
    classic_vulnerable=True,
)

CLASSIC_SPRINTF = CorpusProgram(
    key="classic-sprintf",
    paper_ref="(control: classic overflow)",
    source="""
void formatId(char *user) {
  char out[32];
  sprintf(out, "%s-suffix", user);
}
""",
    expected_rules=("CLASSIC-UNSAFE-API",),
    classic_vulnerable=True,
)

INTERPROC_HELPER = CorpusProgram(
    key="interproc-helper-placement",
    paper_ref="§3.3/§5.1 (inter-procedural flow; extension)",
    source=_CLASSES
    + """
GradStudent *placeAt(Student *arena) {
  GradStudent *g = new (arena) GradStudent(3.0, 2011, 1);
  return g;
}
void caller() {
  Student s;
  GradStudent *g = placeAt(&s);
}
""",
    expected_rules=("PN-OVERSIZE",),
)

INTERPROC_TAINT = CorpusProgram(
    key="interproc-tainted-count",
    paper_ref="§3.3/§5.1 (inter-procedural taint; extension)",
    source="""
char pool[64];
char *carve(int n) {
  char *buf = new (pool) char[n];
  return buf;
}
void serve() {
  int n = 0;
  cin >> n;
  char *buf = carve(n * 8);
}
""",
    expected_rules=("PN-TAINTED-COUNT",),
)

INTERPROC_SAFE = CorpusProgram(
    key="interproc-safe-helper",
    paper_ref="(control: helper placement that fits)",
    source=_CLASSES
    + """
Student *placeAt(GradStudent *arena) {
  Student *s = new (arena) Student();
  return s;
}
void caller() {
  GradStudent big;
  Student *s = placeAt(&big);
}
""",
    expected_rules=(),
)

#: Interprocedural extension corpus (beyond the paper's listings; the
#: flows are the ones §3.3/§5.1 describe).
INTERPROC_CORPUS: tuple[CorpusProgram, ...] = (
    INTERPROC_HELPER,
    INTERPROC_TAINT,
    INTERPROC_SAFE,
)

#: The placement-new half of the corpus (what E13 scores tools on).
PLACEMENT_CORPUS: tuple[CorpusProgram, ...] = (
    LISTING_4,
    LISTING_5,
    LISTING_6,
    LISTING_7,
    LISTING_10,
    LISTING_11,
    LISTING_12,
    LISTING_13,
    LISTING_15,
    LISTING_17,
    LISTING_19,
    LISTING_21,
    LISTING_22,
    LISTING_23,
    VTABLE_VARIANT,
)

#: Controls: correct placement code that must not be flagged.
SAFE_CORPUS: tuple[CorpusProgram, ...] = (SAFE_PLACEMENT, SAFE_CHECKED)

#: Controls: classic overflows legacy tools do catch.
CLASSIC_CORPUS: tuple[CorpusProgram, ...] = (
    CLASSIC_STRCPY,
    CLASSIC_GETS,
    CLASSIC_SPRINTF,
)

FULL_CORPUS: tuple[CorpusProgram, ...] = (
    PLACEMENT_CORPUS + SAFE_CORPUS + CLASSIC_CORPUS
)


def corpus_sources(
    generated: int = 0, seed: int = 2011
) -> "list[tuple[str, str]]":
    """``(label, source)`` pairs for sweep-style batch analysis.

    The paper corpus, optionally extended with ``generated``
    reproducible programs from :func:`~repro.workloads.generators
    .generate_corpus` — the service layer and benchmarks use this to
    build arbitrarily large, deterministic sweep workloads.
    """
    sources = [(program.key, program.source) for program in FULL_CORPUS]
    if generated:
        from .generators import generate_corpus

        for index, program in enumerate(generate_corpus(seed, generated)):
            sources.append((f"generated-{seed}-{index:04d}", program.source))
    return sources

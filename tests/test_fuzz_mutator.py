"""Tests for the structure-aware mutator and the divergence minimizer."""

import random

from repro.analysis import parse
from repro.analysis.unparse import unparse_program
from repro.fuzz import (
    FuzzInput,
    fingerprint_of,
    minimize_input,
    mutate,
    normalized_events,
    run_oracles,
    seed_inputs,
)
from repro.fuzz.mutator import transform


PARENT = FuzzInput(
    source="""\
class Small {
  public:
    int f0;
};
class Big : public Small {
  public:
    int g0;
    double g1;
};
void run() {
  Small arena;
  Big* p = new (&arena) Big();
  p->g0 = 7;
}
""",
    stdin=(3, 5),
    family="direct",
    label="vulnerable",
)


class TestTransform:
    def test_identity_when_visit_keeps_everything(self):
        program = parse(PARENT.source)
        assert transform(program, lambda node: None) is program

    def test_replacement_rebuilds_spine_only(self):
        import repro.analysis.ast_nodes as ast

        program = parse(PARENT.source)

        def bump(node):
            if isinstance(node, ast.IntLit) and node.value == 7:
                return ast.IntLit(value=8, line=node.line)
            return None

        rebuilt = transform(program, bump)
        assert rebuilt is not program
        assert "p->g0 = 8" in unparse_program(rebuilt)
        # Untouched classes keep identity.
        assert rebuilt.classes is program.classes


class TestMutate:
    def test_deterministic_for_fixed_seed(self):
        a = mutate(random.Random("m/1"), PARENT)
        b = mutate(random.Random("m/1"), PARENT)
        assert a is not None
        assert (a.source, a.stdin) == (b.source, b.stdin)

    def test_mutants_always_reparse(self):
        rng = random.Random("m/2")
        produced = 0
        for _ in range(200):
            mutant = mutate(rng, PARENT)
            if mutant is None:
                continue
            produced += 1
            parse(mutant.source)  # must not raise
            assert (mutant.source, mutant.stdin) != (PARENT.source, PARENT.stdin)
        assert produced > 100  # the operators mostly connect

    def test_mutants_drop_the_ground_truth_label(self):
        rng = random.Random("m/3")
        for _ in range(50):
            mutant = mutate(rng, PARENT)
            if mutant is not None:
                assert mutant.label == ""

    def test_mutation_reaches_stdin_and_source(self):
        rng = random.Random("m/4")
        stdin_changed = source_changed = False
        for _ in range(120):
            mutant = mutate(rng, PARENT)
            if mutant is None:
                continue
            stdin_changed = stdin_changed or mutant.stdin != PARENT.stdin
            source_changed = source_changed or mutant.source != PARENT.source
        assert stdin_changed and source_changed

    def test_seed_corpus_survives_mutation(self):
        # Every seed family yields at least some viable mutants.
        rng = random.Random("m/5")
        for seed in seed_inputs(1):
            viable = sum(
                1 for _ in range(30) if mutate(rng, seed) is not None
            )
            assert viable > 0, seed.family


class TestMinimize:
    DIVERGENT = FuzzInput(
        source="""\
char pool[64];
int unused_global;
class Noise {
  public:
    int a;
    int b;
};
void run() {
  int n = 0;
  int waste = 3;
  waste = waste + 1;
  cin >> n;
  char* p = new (pool) char[n];
}
""",
        stdin=(8, 9, 9),
    )

    def _fingerprint(self, fuzz_input):
        observation = run_oracles(fuzz_input.source, fuzz_input.stdin)
        kind = observation.divergence_kind
        if kind is None:
            return None
        return fingerprint_of(
            kind,
            observation.static.rules,
            normalized_events(observation.dynamic.events),
        )

    def test_minimize_preserves_fingerprint_and_shrinks(self):
        target = self._fingerprint(self.DIVERGENT)
        assert target is not None

        smallest = minimize_input(
            self.DIVERGENT, lambda cand: self._fingerprint(cand) == target
        )
        assert self._fingerprint(smallest) == target
        assert len(smallest.source) < len(self.DIVERGENT.source)
        # The noise all goes: the spare class, global, and dead locals.
        assert "Noise" not in smallest.source
        assert "unused_global" not in smallest.source
        assert "waste" not in smallest.source

    def test_minimize_truncates_trailing_stdin(self):
        target = self._fingerprint(self.DIVERGENT)
        smallest = minimize_input(
            self.DIVERGENT, lambda cand: self._fingerprint(cand) == target
        )
        assert smallest.stdin == (8,)

    def test_minimize_is_identity_when_nothing_shrinks(self):
        tight = FuzzInput(source="void run() { }", stdin=())
        result = minimize_input(tight, lambda cand: True)
        # Only the whole-body statement list exists; deleting nothing
        # else is possible, so the result still parses and runs.
        parse(result.source)

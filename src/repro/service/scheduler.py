"""The job scheduler: bounded priority queue + dispatch over a worker pool.

Submission path::

    handle = scheduler.submit(AnalyzeJob(source), priority=HIGH_PRIORITY)
    result = handle.result(timeout=30)

``submit`` first consults the result cache (same job key + same
detector/config version → resolved immediately, no queueing).  Cache
misses enter a bounded :class:`queue.PriorityQueue`; when the queue is
full, ``submit`` raises :class:`QueueFull` instead of blocking — the
caller (e.g. the HTTP front end) decides whether to shed load or wait.

One dispatcher thread per pool worker pops jobs in priority order and
executes them on the pool with a per-job timeout.  Failures raising
:class:`~repro.service.workers.TransientWorkerError` are retried with
exponential backoff; anything else fails the job immediately.  Timeouts
are terminal: the job is marked ``TIMED_OUT`` and the dispatcher moves
on (the abandoned worker finishes in the background — the usual
cooperative-cancellation caveat for in-process pools).

``shutdown(wait=True)`` drains the queue then stops the dispatchers;
``wait=False`` cancels everything still queued.
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from .cache import ResultCache
from .jobs import NORMAL_PRIORITY, Job
from .metrics import MetricsRegistry
from .workers import TransientWorkerError, WorkerPool


class QueueFull(RuntimeError):
    """The bounded work queue rejected a submission."""


class JobFailed(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job did not succeed."""


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed-out"
    CANCELLED = "cancelled"


@dataclass
class JobOutcome:
    """Everything the scheduler learned about one finished job."""

    key: str
    kind: str
    status: JobStatus
    result: Optional[dict] = None
    error: Optional[str] = None
    attempts: int = 0
    duration: float = 0.0
    from_cache: bool = False
    detail: dict = field(default_factory=dict)


class JobHandle:
    """Future-like view of one submitted job."""

    def __init__(self, job: Job):
        self.job = job
        self._event = threading.Event()
        self._outcome: Optional[JobOutcome] = None

    def _resolve(self, outcome: JobOutcome) -> None:
        self._outcome = outcome
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def outcome(self, timeout: Optional[float] = None) -> JobOutcome:
        """Block until finished and return the full outcome record."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"job {self.job.key()} still pending")
        assert self._outcome is not None
        return self._outcome

    def result(self, timeout: Optional[float] = None) -> dict:
        """The worker's result dict, raising :class:`JobFailed` otherwise."""
        outcome = self.outcome(timeout)
        if outcome.status is not JobStatus.SUCCEEDED:
            raise JobFailed(
                f"job {outcome.key} {outcome.status.value}: {outcome.error}"
            )
        assert outcome.result is not None
        return outcome.result


_STOP = object()


class Scheduler:
    """Priority scheduling, caching, retries, and metrics for job runs."""

    def __init__(
        self,
        pool: Optional[WorkerPool] = None,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_queue: int = 256,
        default_timeout: float = 60.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.pool = pool or WorkerPool()
        self._owns_pool = pool is None
        self.cache = cache
        self.metrics = metrics or MetricsRegistry()
        self.default_timeout = default_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue(maxsize=max_queue)
        self._seq = itertools.count()
        self._stopping = False
        self._lock = threading.Lock()
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-dispatch-{index}",
                daemon=True,
            )
            for index in range(self.pool.size)
        ]
        for thread in self._dispatchers:
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        job: Job,
        priority: int = NORMAL_PRIORITY,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        use_cache: bool = True,
    ) -> JobHandle:
        """Queue one job; returns immediately with a handle."""
        if self._stopping:
            raise RuntimeError("scheduler is shut down")
        handle = JobHandle(job)
        key = job.key()
        self.metrics.counter("scheduler.jobs_submitted").inc()
        if self.cache is not None and use_cache and job.CACHEABLE:
            cached = self.cache.get(key)
            if cached is not None:
                self.metrics.counter("scheduler.cache_hits").inc()
                handle._resolve(
                    JobOutcome(
                        key=key,
                        kind=job.KIND,
                        status=JobStatus.SUCCEEDED,
                        result=cached,
                        from_cache=True,
                    )
                )
                return handle
        item = (
            priority,
            next(self._seq),
            job,
            handle,
            timeout if timeout is not None else self.default_timeout,
            max_retries if max_retries is not None else self.max_retries,
            use_cache,
            time.monotonic(),
        )
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            raise QueueFull(
                f"work queue at capacity ({self._queue.maxsize} jobs)"
            ) from None
        self.metrics.gauge("scheduler.queue_depth").set(self._queue.qsize())
        return handle

    def map(
        self,
        jobs: Iterable[Job],
        priority: int = NORMAL_PRIORITY,
        **submit_kwargs,
    ) -> List[JobHandle]:
        """Submit a batch, preserving order of the returned handles."""
        return [self.submit(job, priority=priority, **submit_kwargs) for job in jobs]

    def run(self, job: Job, **submit_kwargs) -> dict:
        """Submit one job and block for its result."""
        return self.submit(job, **submit_kwargs).result()

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item[2] is _STOP:
                self._queue.task_done()
                return
            _, _, job, handle, timeout, retries, use_cache, enqueued = item
            self.metrics.gauge("scheduler.queue_depth").set(self._queue.qsize())
            self.metrics.histogram("scheduler.queue_wait_seconds").observe(
                time.monotonic() - enqueued
            )
            if self._stopping and self._cancelled_on_shutdown(job, handle):
                self._queue.task_done()
                continue
            try:
                self._execute(job, handle, timeout, retries, use_cache)
            finally:
                self._queue.task_done()

    def _cancelled_on_shutdown(self, job: Job, handle: JobHandle) -> bool:
        self.metrics.counter("scheduler.jobs_cancelled").inc()
        handle._resolve(
            JobOutcome(
                key=job.key(),
                kind=job.KIND,
                status=JobStatus.CANCELLED,
                error="scheduler shut down before the job ran",
            )
        )
        return True

    def _execute(
        self,
        job: Job,
        handle: JobHandle,
        timeout: float,
        retries: int,
        use_cache: bool,
    ) -> None:
        key = job.key()
        payload = job.payload()
        started = time.monotonic()
        busy = self.metrics.gauge("scheduler.workers_busy")
        busy.add(1)
        attempts = 0
        try:
            while True:
                attempts += 1
                future = self.pool.submit(job.KIND, payload)
                try:
                    result = future.result(timeout=timeout)
                except FutureTimeout:
                    future.cancel()
                    self.metrics.counter("scheduler.jobs_timed_out").inc()
                    handle._resolve(
                        JobOutcome(
                            key=key,
                            kind=job.KIND,
                            status=JobStatus.TIMED_OUT,
                            error=f"no result within {timeout}s",
                            attempts=attempts,
                            duration=time.monotonic() - started,
                        )
                    )
                    return
                except TransientWorkerError as error:
                    if attempts <= retries:
                        self.metrics.counter("scheduler.jobs_retried").inc()
                        self._sleep(
                            min(
                                self.backoff_base * (2 ** (attempts - 1)),
                                self.backoff_cap,
                            )
                        )
                        continue
                    self._fail(handle, key, job, error, attempts, started)
                    return
                except Exception as error:  # worker bug or bad payload
                    self._fail(handle, key, job, error, attempts, started)
                    return
                duration = time.monotonic() - started
                self.metrics.counter("scheduler.jobs_succeeded").inc()
                self.metrics.histogram("scheduler.job_seconds").observe(duration)
                if self.cache is not None and use_cache and job.CACHEABLE:
                    self.cache.put(key, result)
                handle._resolve(
                    JobOutcome(
                        key=key,
                        kind=job.KIND,
                        status=JobStatus.SUCCEEDED,
                        result=result,
                        attempts=attempts,
                        duration=duration,
                    )
                )
                return
        finally:
            busy.add(-1)

    def _fail(
        self,
        handle: JobHandle,
        key: str,
        job: Job,
        error: Exception,
        attempts: int,
        started: float,
    ) -> None:
        self.metrics.counter("scheduler.jobs_failed").inc()
        handle._resolve(
            JobOutcome(
                key=key,
                kind=job.KIND,
                status=JobStatus.FAILED,
                error=f"{type(error).__name__}: {error}",
                attempts=attempts,
                duration=time.monotonic() - started,
            )
        )

    # -- lifecycle ---------------------------------------------------------

    def drain(self) -> None:
        """Block until every queued and in-flight job has resolved."""
        self._queue.join()

    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatching.  ``wait=True`` drains first; ``wait=False``
        cancels everything still queued."""
        with self._lock:
            if self._stopping:
                return
            if wait:
                self.drain()
            self._stopping = True
        if not wait:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item[2] is not _STOP:
                    self._cancelled_on_shutdown(item[2], item[3])
                self._queue.task_done()
        for _ in self._dispatchers:
            self._queue.put((10 ** 9, next(self._seq), _STOP, None, 0, 0, False, 0.0))
        for thread in self._dispatchers:
            thread.join(timeout=5.0)
        if self._owns_pool:
            self.pool.shutdown()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""``repro-bench`` — run the benchmark suite and record the perf trajectory.

``repro-bench diff A.json B.json`` compares two recorded summaries
without re-running anything (CI's regression gate: it exits non-zero
when any well-sampled benchmark regressed past the threshold).

Every performance PR needs a before/after story that survives the PR
itself.  This front end runs the E-series pytest-benchmark suite (or
just the hot-path micro-benchmarks with ``--quick``), folds the raw
pytest-benchmark output into a compact summary, compares it against the
most recent previous run, and writes ``BENCH_<date>.json`` at the repo
root — so the next optimisation session starts from a recorded
baseline instead of folklore.

Summary format (``schema`` 1)::

    {
      "schema": 1,
      "created": "2026-08-05T12:34:56",
      "label": "pr3-fast-path",
      "quick": false,
      "benchmarks": {
        "test_e21_raw_access_unhooked": {
          "mean_s": 1.2e-4, "min_s": 1.1e-4, "stddev_s": 4e-6,
          "ops_per_s": 8300.0, "rounds": 120
        },
        ...
      },
      "comparison": {
        "baseline": "BENCH_2026-08-01.json",
        "speedups": {"test_e21_raw_access_unhooked": 3.4, ...},
        "geomean_speedup": 2.1,
        "regressions": ["test_e15_checked_placement"]
      }
    }

``speedups`` are ``baseline_mean / new_mean`` (>1 is faster now);
``regressions`` lists benchmarks more than 20% slower than baseline.
"""

from __future__ import annotations

import argparse
import datetime as _datetime
import json
import math
import re
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

#: Exit status for bad input, shared with the other front ends.
EX_USAGE = 2

#: File name pattern for trajectory files: BENCH_<date>[.<seq>].json
_BENCH_NAME = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})(?:\.(\d+))?\.json$")

#: A benchmark counts as regressed when it got >20% slower.
REGRESSION_THRESHOLD = 0.8

#: Regression flagging needs at least this many rounds on both sides —
#: single-shot shape tests (``pedantic(rounds=1)``) are too noisy to
#: support a slower-than-baseline claim.
MIN_ROUNDS_FOR_REGRESSION = 3

#: The micro-benchmark file ``--quick`` restricts itself to.
QUICK_FILE = "test_e21_memory_hotpath.py"


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return EX_USAGE


def _bench_sort_key(path: Path) -> tuple:
    match = _BENCH_NAME.match(path.name)
    if match is None:
        return ("", 0)
    return (match.group(1), int(match.group(2) or 1))


def find_previous(output_dir: Path) -> Optional[Path]:
    """The most recent BENCH_*.json already in ``output_dir``."""
    candidates = [
        path
        for path in output_dir.glob("BENCH_*.json")
        if _BENCH_NAME.match(path.name)
    ]
    if not candidates:
        return None
    return max(candidates, key=_bench_sort_key)


def next_output_path(output_dir: Path, date: _datetime.date) -> Path:
    """First unused ``BENCH_<date>[.<seq>].json`` name for today."""
    stem = f"BENCH_{date.isoformat()}"
    path = output_dir / f"{stem}.json"
    seq = 2
    while path.exists():
        path = output_dir / f"{stem}.{seq}.json"
        seq += 1
    return path


def summarize(raw: dict) -> dict:
    """Collapse pytest-benchmark JSON into {name: stats} rows."""
    rows: dict = {}
    for bench in raw.get("benchmarks", ()):
        stats = bench.get("stats", {})
        mean = stats.get("mean")
        row = {
            "mean_s": mean,
            "min_s": stats.get("min"),
            "stddev_s": stats.get("stddev"),
            "ops_per_s": round(1.0 / mean, 4) if mean else None,
            "rounds": stats.get("rounds"),
        }
        # Domain metrics benchmarks attach (e.g. E22's execs_per_s /
        # divergence_rate) ride along into the trajectory file.
        if bench.get("extra_info"):
            row["extra_info"] = dict(bench["extra_info"])
        rows[bench["name"]] = row
    return rows


def compare(current: dict, baseline: dict) -> dict:
    """Per-benchmark speedups of ``current`` over ``baseline`` rows."""
    speedups: dict = {}
    regressions: list = []
    for name, row in sorted(current.items()):
        base_row = baseline.get(name)
        if not base_row or not base_row.get("mean_s") or not row.get("mean_s"):
            continue
        speedup = base_row["mean_s"] / row["mean_s"]
        speedups[name] = round(speedup, 3)
        well_sampled = (
            (row.get("rounds") or 0) >= MIN_ROUNDS_FOR_REGRESSION
            and (base_row.get("rounds") or 0) >= MIN_ROUNDS_FOR_REGRESSION
        )
        if speedup < REGRESSION_THRESHOLD and well_sampled:
            regressions.append(name)
    geomean = None
    if speedups:
        geomean = round(
            math.exp(sum(math.log(s) for s in speedups.values()) / len(speedups)),
            3,
        )
    return {
        "speedups": speedups,
        "geomean_speedup": geomean,
        "regressions": regressions,
    }


def load_summary(path: Path) -> dict:
    """Read one BENCH_*.json summary, raising ValueError when malformed."""
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        raise ValueError(f"cannot read {path}: {error}") from None
    except ValueError as error:
        raise ValueError(f"{path} is not JSON: {error}") from None
    if not isinstance(data, dict) or not isinstance(
        data.get("benchmarks"), dict
    ):
        raise ValueError(f"{path} is not a repro-bench summary")
    return data


def diff_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-bench diff`` — compare two summaries, gate on regressions.

    Exit status: 0 when every shared, well-sampled benchmark stays
    within the regression threshold; 1 when any regressed past it;
    EX_USAGE on unreadable input or no overlap to compare.
    """
    parser = argparse.ArgumentParser(
        prog="repro-bench diff",
        description="Compare two BENCH_*.json summaries (no benchmarks run)",
    )
    parser.add_argument("current", help="the fresh summary (e.g. this CI run)")
    parser.add_argument("baseline", help="the committed baseline summary")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when a benchmark is more than PCT%% slower (default 10)",
    )
    parser.add_argument(
        "--min-rounds",
        type=int,
        default=MIN_ROUNDS_FOR_REGRESSION,
        help="ignore benchmarks sampled fewer times than this on either "
        f"side (default {MIN_ROUNDS_FOR_REGRESSION}; single-shot shape "
        "tests are too noisy to gate on)",
    )
    args = parser.parse_args(argv)

    try:
        current = load_summary(Path(args.current))
        baseline = load_summary(Path(args.baseline))
    except ValueError as error:
        return _fail(str(error))
    floor = 1.0 - args.max_regression / 100.0

    speedups: dict = {}
    regressions: list = []
    skipped = 0
    for name, row in sorted(current["benchmarks"].items()):
        base_row = baseline["benchmarks"].get(name)
        if not base_row or not base_row.get("mean_s") or not row.get("mean_s"):
            continue
        speedup = base_row["mean_s"] / row["mean_s"]
        if (
            (row.get("rounds") or 0) < args.min_rounds
            or (base_row.get("rounds") or 0) < args.min_rounds
        ):
            skipped += 1
            continue
        speedups[name] = speedup
        if speedup < floor:
            regressions.append(name)
    if not speedups:
        return _fail(
            f"no well-sampled benchmarks shared between {args.current} "
            f"and {args.baseline}; nothing to gate on"
        )

    print(f"{args.current} vs baseline {args.baseline}:")
    for name, speedup in sorted(speedups.items(), key=lambda kv: -kv[1]):
        marker = "  REGRESSED" if name in regressions else ""
        print(f"  {speedup:7.2f}x  {name}{marker}")
    geomean = math.exp(
        sum(math.log(s) for s in speedups.values()) / len(speedups)
    )
    print(f"geomean speedup: {geomean:.3f}x over {len(speedups)} benchmarks")
    if skipped:
        print(f"({skipped} under-sampled benchmarks not gated)")
    # Domain throughput riders (execs_per_s, compile_ms, ...) are
    # advisory context, not gated: they track workload metrics, not
    # wall-clock means.
    for name, row in sorted(current["benchmarks"].items()):
        extra = row.get("extra_info")
        if extra:
            riders = ", ".join(
                f"{key}={value}" for key, value in sorted(extra.items())
            )
            print(f"  {name}: {riders}")
    if regressions:
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.max_regression:g}% vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(f"ok: no benchmark regressed more than {args.max_regression:g}%")
    return 0


def run_pytest_benchmarks(
    benchmarks_dir: Path, quick: bool, json_path: Path, extra: Sequence[str] = ()
) -> int:
    """Run the suite in-process with pytest-benchmark recording."""
    import pytest

    target = benchmarks_dir / QUICK_FILE if quick else benchmarks_dir
    argv = [
        str(target),
        "-q",
        "-p", "no:cacheprovider",
        "--benchmark-only",
        f"--benchmark-json={json_path}",
    ]
    if quick:
        # Fewer, shorter rounds: a smoke signal, not a publication run.
        argv += ["--benchmark-max-time=0.25", "--benchmark-min-rounds=3"]
    argv += list(extra)
    return pytest.main(argv)


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-bench`` (and ``repro-bench diff``)."""
    arg_list = list(sys.argv[1:] if argv is None else argv)
    if arg_list and arg_list[0] == "diff":
        return diff_main(arg_list[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the E-series benchmarks and record BENCH_<date>.json",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"only the hot-path micro-benchmarks ({QUICK_FILE}), short rounds",
    )
    parser.add_argument(
        "--benchmarks-dir",
        default="benchmarks",
        help="directory holding the pytest-benchmark suite (default: ./benchmarks)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="where BENCH_<date>.json is written (default: repo root / cwd)",
    )
    parser.add_argument(
        "--label", default="", help="free-form tag recorded in the summary"
    )
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the comparison against the previous BENCH_*.json",
    )
    parser.add_argument(
        "--pytest-arg",
        action="append",
        default=[],
        metavar="ARG",
        help="extra argument passed through to pytest (repeatable)",
    )
    args = parser.parse_args(arg_list)

    benchmarks_dir = Path(args.benchmarks_dir)
    if not benchmarks_dir.is_dir():
        return _fail(f"benchmarks directory not found: {benchmarks_dir}")
    if args.quick and not (benchmarks_dir / QUICK_FILE).is_file():
        return _fail(f"micro-benchmark file not found: {benchmarks_dir / QUICK_FILE}")
    output_dir = Path(args.output_dir)
    if not output_dir.is_dir():
        return _fail(f"output directory not found: {output_dir}")

    baseline_path = None if args.no_compare else find_previous(output_dir)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        exit_code = run_pytest_benchmarks(
            benchmarks_dir, args.quick, raw_path, args.pytest_arg
        )
        if exit_code != 0:
            print(
                f"error: benchmark suite failed (pytest exit {exit_code}); "
                "no BENCH file written",
                file=sys.stderr,
            )
            return 1
        try:
            raw = json.loads(raw_path.read_text())
        except (OSError, ValueError) as error:
            print(f"error: cannot read benchmark output: {error}", file=sys.stderr)
            return 1

    rows = summarize(raw)
    if not rows:
        print("error: suite produced no benchmark rows", file=sys.stderr)
        return 1
    summary = {
        "schema": 1,
        "created": _datetime.datetime.now().isoformat(timespec="seconds"),
        "label": args.label,
        "quick": args.quick,
        "benchmarks": rows,
        "comparison": None,
    }
    if baseline_path is not None:
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, ValueError):
            baseline = None
        if isinstance(baseline, dict) and isinstance(
            baseline.get("benchmarks"), dict
        ):
            summary["comparison"] = {
                "baseline": baseline_path.name,
                **compare(rows, baseline["benchmarks"]),
            }

    out_path = next_output_path(output_dir, _datetime.date.today())
    out_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    print(f"\nwrote {out_path} ({len(rows)} benchmarks)")
    comparison = summary["comparison"]
    if comparison:
        print(
            f"vs {comparison['baseline']}: geomean speedup "
            f"{comparison['geomean_speedup']}x"
        )
        for name, speedup in sorted(
            comparison["speedups"].items(), key=lambda kv: -kv[1]
        ):
            print(f"  {speedup:7.2f}x  {name}")
        if comparison["regressions"]:
            print("regressions (>20% slower):")
            for name in comparison["regressions"]:
                print(f"  {name}")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry
    sys.exit(bench_main())

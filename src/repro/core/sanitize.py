"""Memory sanitization — the Section 5.1 information-leak countermeasure.

*"Before a memory arena allocated to pointer A is allocated to another
pointer B, memset() or its other variants should be used to set the
memory to uniform bit patterns."*  The paper also walks through why
partial sanitization (only the bytes B will not occupy) is subtle once
padding and alignment enter the picture; :func:`residual_ranges` computes
exactly those hard-to-reason-about leftover ranges so callers — and the
E10 experiment — can measure what a partial scheme misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ApiMisuseError
from ..memory.address_space import AddressSpace

#: The uniform patterns the paper mentions as common choices.
PATTERN_ZERO = 0x00
PATTERN_ONES = 0xFF


@dataclass(frozen=True)
class SanitizationReport:
    """What a sanitization call actually cleared."""

    base: int
    length: int
    pattern: int

    @property
    def end(self) -> int:
        """One past the last cleared byte."""
        return self.base + self.length


def sanitize(
    space: AddressSpace, base: int, length: int, pattern: int = PATTERN_ZERO
) -> SanitizationReport:
    """memset the full arena — the recommended, simple, correct option."""
    if length < 0:
        raise ApiMisuseError(f"negative sanitize length {length}")
    space.fill(base, length, pattern)
    return SanitizationReport(base=base, length=length, pattern=pattern)


def residual_ranges(
    arena_base: int, arena_size: int, occupied: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Byte ranges of the arena **not** covered by ``occupied`` extents.

    ``occupied`` is a list of (address, size) pairs describing where the
    new occupant's fields actually live; everything else — tail space,
    inter-field padding — still holds the previous occupant's bytes and
    will leak if stored/serialized (Listings 21/22).
    """
    arena_end = arena_base + arena_size
    spans = sorted(
        (max(addr, arena_base), min(addr + size, arena_end))
        for addr, size in occupied
        if size > 0 and addr < arena_end and addr + size > arena_base
    )
    gaps: list[tuple[int, int]] = []
    cursor = arena_base
    for start, end in spans:
        if start > cursor:
            gaps.append((cursor, start - cursor))
        cursor = max(cursor, end)
    if cursor < arena_end:
        gaps.append((cursor, arena_end - cursor))
    return gaps


def sanitize_residue(
    space: AddressSpace,
    arena_base: int,
    arena_size: int,
    occupied: list[tuple[int, int]],
    pattern: int = PATTERN_ZERO,
) -> list[SanitizationReport]:
    """The "efficient" partial scheme the paper warns about: clear only
    the not-to-be-occupied ranges.  Correct *only* when ``occupied`` is
    complete — forgetting a padding hole leaks it."""
    reports = []
    for base, length in residual_ranges(arena_base, arena_size, occupied):
        reports.append(sanitize(space, base, length, pattern))
    return reports


def leaked_bytes(
    space: AddressSpace,
    arena_base: int,
    arena_size: int,
    occupied: list[tuple[int, int]],
    secret: bytes,
) -> int:
    """Count bytes of ``secret`` still readable in the arena's residue.

    The measurement primitive behind experiment E10: after placing a new
    occupant, how much of the previous secret content remains?
    """
    count = 0
    cursor = 0
    for base, length in residual_ranges(arena_base, arena_size, occupied):
        data = space.read(base, length)
        offset = base - arena_base
        expected = secret[offset : offset + length]
        count += sum(1 for got, want in zip(data, expected) if got == want and want)
        cursor += length
    return count

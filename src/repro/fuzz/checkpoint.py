"""Campaign checkpoints: kill a fuzz run at any point, resume it later.

A checkpoint is everything the campaign driver needs to continue a run
as if it had never stopped: the corpus (with its protected-seed
prefix), the coverage keys, the deduplicated divergences, the per-run
counters, and the ``(round, remaining)`` cursor.  Nothing else is
required — ``batch_rng(seed, round, batch)`` derives every batch's RNG
from its coordinates, so resuming needs no pickled random state, and
the family-reach table is fully determined by the seed pass (mutants
carry no ground-truth label).

Three properties are load-bearing:

* **Byte-identical resume** — a campaign killed at any round boundary
  and resumed produces a :class:`~repro.fuzz.CampaignReport` identical,
  byte for byte, to an uninterrupted run at any worker count (the
  driver replays the same batch partition against the same state).
* **Atomic publication** — checkpoints are written to a per-process
  temp file and :func:`os.replace`-d into place, so a crash mid-write
  never leaves a torn file; :meth:`CheckpointStore.latest` additionally
  skips files that fail the embedded integrity digest, falling back to
  the previous round.
* **Version refusal** — every checkpoint pins
  :func:`repro.regress.current_versions`; resuming under different
  detector/event/triage versions is an error unless explicitly skipped,
  because merged pre-bump batches would silently mix verdict regimes.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: Checkpoint document schema revision.
CHECKPOINT_SCHEMA = 1

#: Completed-round checkpoints kept on disk (newest first).  Two, not
#: one: the newest may be torn by a hard kill mid-replace on exotic
#: filesystems, and recovery then costs one round, never the campaign.
KEEP_CHECKPOINTS = 2


class CheckpointError(Exception):
    """A checkpoint cannot be written, read, or safely resumed."""


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest_of(body: dict) -> str:
    return hashlib.sha256(_canonical(body).encode()).hexdigest()[:16]


@dataclass
class CampaignCheckpoint:
    """One resumable snapshot of a campaign at a round boundary."""

    config: dict  # FuzzConfig fields (seed, iterations, ...)
    batch_size: int
    round_index: int  # the next round to run
    remaining: int  # iterations not yet executed
    coverage: tuple = ()  # sorted coverage keys
    corpus: tuple = ()  # (source, stdin, family, label) entries
    protected: int = 0  # leading corpus entries exempt from eviction
    families: dict = field(default_factory=dict)
    divergences: tuple = ()  # Divergence.to_dict() dicts, sorted
    counters: dict = field(default_factory=dict)
    versions: dict = field(default_factory=dict)

    def fuzz_config(self):
        from .campaign import FuzzConfig

        return FuzzConfig(**self.config)

    def stale_versions(self) -> dict:
        """Version keys that no longer match the live code
        (``{key: (recorded, live)}``; empty = safe to resume)."""
        from ..regress.store import current_versions

        live = current_versions()
        return {
            key: (self.versions.get(key), live[key])
            for key in live
            if self.versions.get(key) != live[key]
        }

    def _body(self) -> dict:
        return {
            "schema": CHECKPOINT_SCHEMA,
            "config": dict(sorted(self.config.items())),
            "batch_size": self.batch_size,
            "round": self.round_index,
            "remaining": self.remaining,
            "coverage": sorted(self.coverage),
            "corpus": [
                [source, list(stdin), family, label]
                for source, stdin, family, label in self.corpus
            ],
            "protected": self.protected,
            "families": {
                family: dict(sorted(reach.items()))
                for family, reach in sorted(self.families.items())
            },
            "divergences": list(self.divergences),
            "counters": dict(sorted(self.counters.items())),
            "versions": dict(sorted(self.versions.items())),
        }

    def to_dict(self) -> dict:
        body = self._body()
        body["digest"] = _digest_of(body)
        return body

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignCheckpoint":
        if not isinstance(data, dict):
            raise CheckpointError("checkpoint document is not an object")
        if data.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"unsupported checkpoint schema {data.get('schema')!r} "
                f"(this build reads schema {CHECKPOINT_SCHEMA})"
            )
        body = {key: value for key, value in data.items() if key != "digest"}
        recorded = data.get("digest", "")
        checkpoint = cls(
            config=dict(body.get("config", {})),
            batch_size=body.get("batch_size", 0),
            round_index=body.get("round", 0),
            remaining=body.get("remaining", 0),
            coverage=tuple(body.get("coverage", ())),
            corpus=tuple(
                (source, tuple(stdin), family, label)
                for source, stdin, family, label in body.get("corpus", ())
            ),
            protected=body.get("protected", 0),
            families={
                family: dict(reach)
                for family, reach in body.get("families", {}).items()
            },
            divergences=tuple(body.get("divergences", ())),
            counters=dict(body.get("counters", {})),
            versions=dict(body.get("versions", {})),
        )
        if recorded != _digest_of(checkpoint._body()):
            raise CheckpointError(
                "checkpoint integrity digest mismatch (truncated or "
                "hand-edited file)"
            )
        return checkpoint

    @classmethod
    def from_json(cls, text: str) -> "CampaignCheckpoint":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise CheckpointError(f"checkpoint is not JSON: {error}") from None
        try:
            return cls.from_dict(data)
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(f"malformed checkpoint: {error}") from None


def checkpoint_from_fuzzer(
    fuzzer, batch_size: int, round_index: int, remaining: int
) -> CampaignCheckpoint:
    """Snapshot a driver-side :class:`~repro.fuzz.DifferentialFuzzer`."""
    from ..regress.store import current_versions

    return CampaignCheckpoint(
        config={
            "seed": fuzzer.config.seed,
            "iterations": fuzzer.config.iterations,
            "step_budget": fuzzer.config.step_budget,
            "canary": fuzzer.config.canary,
            "minimize": fuzzer.config.minimize,
            "max_corpus": fuzzer.config.max_corpus,
            "engine": fuzzer.config.engine,
        },
        batch_size=batch_size,
        round_index=round_index,
        remaining=remaining,
        coverage=fuzzer.coverage.sorted_keys(),
        corpus=tuple(
            (inp.source, inp.stdin, inp.family, inp.label)
            for inp in fuzzer.corpus
        ),
        protected=fuzzer._protected,
        families={
            family: dict(reach) for family, reach in fuzzer.families.items()
        },
        divergences=tuple(
            fuzzer.divergences[fingerprint].to_dict()
            for fingerprint in sorted(fuzzer.divergences)
        ),
        counters={
            "execs": fuzzer.execs,
            "invalid": fuzzer.invalid,
            "discarded": fuzzer.discarded,
            "seeds": fuzzer.seeds,
            "saturations": fuzzer.saturations,
            "batches_failed": fuzzer.batches_failed,
            "iterations_lost": fuzzer.iterations_lost,
            "compile_errors": fuzzer.compile_errors,
            "first_compile_error": fuzzer.first_compile_error,
            "engine_drift": fuzzer.engine_drift,
        },
        versions=current_versions(),
    )


def restore_fuzzer(checkpoint: CampaignCheckpoint, metrics=None, store=None):
    """Rebuild the driver-side fuzzer exactly as the checkpoint left it."""
    from .campaign import DifferentialFuzzer
    from .coverage import CoverageMap
    from .divergence import Divergence
    from .seeds import FuzzInput

    fuzzer = DifferentialFuzzer(
        checkpoint.fuzz_config(), metrics=metrics, store=store
    )
    fuzzer.coverage = CoverageMap(frozenset(checkpoint.coverage))
    for index, (source, stdin, family, label) in enumerate(checkpoint.corpus):
        fuzzer.add_corpus(
            FuzzInput(
                source=source, stdin=tuple(stdin), family=family, label=label
            ),
            protected=index < checkpoint.protected,
        )
    fuzzer.families = {
        family: dict(reach) for family, reach in checkpoint.families.items()
    }
    for entry in checkpoint.divergences:
        div = Divergence.from_dict(entry)
        fuzzer.divergences[div.fingerprint] = div
    counters = checkpoint.counters
    fuzzer.execs = counters.get("execs", 0)
    fuzzer.invalid = counters.get("invalid", 0)
    fuzzer.discarded = counters.get("discarded", 0)
    fuzzer.seeds = counters.get("seeds", 0)
    fuzzer.saturations = counters.get("saturations", 0)
    fuzzer.batches_failed = counters.get("batches_failed", 0)
    fuzzer.iterations_lost = counters.get("iterations_lost", 0)
    fuzzer.compile_errors = counters.get("compile_errors", 0)
    fuzzer.first_compile_error = counters.get("first_compile_error", "")
    fuzzer.engine_drift = counters.get("engine_drift", 0)
    return fuzzer


class CheckpointStore:
    """A directory of per-round campaign checkpoints.

    One ``checkpoint-r<round>.json`` per completed round, written
    atomically; :meth:`latest` walks rounds newest-first and returns the
    first checkpoint that loads *and* passes its integrity digest, so a
    torn or tampered newest file costs one round of progress, never the
    campaign.
    """

    def __init__(self, directory, create: bool = True):
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, round_index: int) -> Path:
        return self.directory / f"checkpoint-r{round_index:06d}.json"

    def paths(self) -> list:
        """Checkpoint files, oldest round first."""
        return sorted(self.directory.glob("checkpoint-r*.json"))

    def save(self, checkpoint: CampaignCheckpoint) -> Path:
        """Atomically publish ``checkpoint`` and prune old rounds."""
        path = self.path_for(checkpoint.round_index)
        tmp = path.parent / (
            f"{path.name}.{os.getpid():x}.{threading.get_ident():x}.tmp"
        )
        try:
            tmp.write_text(checkpoint.to_json())
            tmp.replace(path)
        except OSError as error:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise CheckpointError(
                f"cannot write checkpoint {path}: {error}"
            ) from None
        for stale in self.paths()[:-KEEP_CHECKPOINTS]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return path

    def latest(self) -> Optional[CampaignCheckpoint]:
        """The newest checkpoint that loads cleanly, or ``None``."""
        for path in reversed(self.paths()):
            try:
                return CampaignCheckpoint.from_json(path.read_text())
            except (CheckpointError, OSError):
                continue
        return None

"""The downward-growing call-stack region.

This module manages raw stack *space*; the frame discipline (saved frame
pointer, return address, canary — the targets of Listing 13) lives in
:mod:`repro.runtime.frames` and is built on top of these primitives.

Stack layout conventions follow 32-bit x86/gcc: the stack grows toward
lower addresses, a callee's locals sit *below* its return address, and a
local declared *earlier* in the source is placed at a *higher* address
than one declared later (gcc 4.x without ``-fstack-protector-strong``
reordering).  That convention is what makes the paper's Listing 15 work:
``int n`` (declared first) sits above ``Student stud``, so overflowing
``stud`` upward reaches ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ApiMisuseError, StackOverflowError_
from .address_space import AddressSpace
from .alignment import align_down, align_up
from .segments import SegmentKind


@dataclass(frozen=True)
class StackAllocation:
    """One variable's reservation inside a frame's local area."""

    name: str
    address: int
    size: int
    alignment: int

    @property
    def end(self) -> int:
        """One past the last byte of the reservation."""
        return self.address + self.size


class StackRegion:
    """Bump management of the stack segment (grows downward)."""

    #: Bytes reserved at the very top for argv/envp/auxv, as the kernel
    #: does — so writes slightly past the outermost frame land in mapped
    #: memory instead of instantly faulting (real overflows trash the
    #: environment block first).
    ENVIRONMENT_AREA = 256

    def __init__(self, space: AddressSpace) -> None:
        self._space = space
        segment = space.segment(SegmentKind.STACK)
        self._lowest = segment.base
        self._top_of_stack = segment.end - self.ENVIRONMENT_AREA
        # The current stack pointer; starts at the top (highest address).
        self._sp = self._top_of_stack

    @property
    def stack_pointer(self) -> int:
        """The current simulated %esp."""
        return self._sp

    @property
    def bytes_used(self) -> int:
        """Distance between the top of the segment and %esp."""
        return self._top_of_stack - self._sp

    @property
    def bytes_free(self) -> int:
        """Remaining stack space before overflow."""
        return self._sp - self._lowest

    def push_region(self, size: int, alignment: int = 4) -> int:
        """Reserve ``size`` bytes below the current stack pointer.

        Returns the (aligned) base address of the reservation.  Raises
        :class:`StackOverflowError_` if the stack segment is exhausted.
        """
        if size < 0:
            raise ApiMisuseError(f"negative stack reservation {size}")
        new_sp = align_down(self._sp - size, alignment)
        if new_sp < self._lowest:
            raise StackOverflowError_(
                f"stack exhausted reserving {size} bytes "
                f"({self.bytes_free} free)"
            )
        self._sp = new_sp
        return new_sp

    def reserve_to(self, address: int) -> None:
        """Move the stack pointer down to ``address`` (frame planners
        compute local addresses first, then commit the space here)."""
        if address > self._sp:
            raise ApiMisuseError(
                f"reserve_to target {address:#010x} is above sp {self._sp:#010x}"
            )
        if address < self._lowest:
            raise StackOverflowError_(
                f"stack exhausted reserving down to {address:#010x}"
            )
        self._sp = address

    def pop_to(self, saved_sp: int) -> None:
        """Restore the stack pointer to a previously captured value."""
        if not self._lowest <= saved_sp <= self._top_of_stack:
            raise ApiMisuseError(f"cannot pop stack to {saved_sp:#010x}")
        if saved_sp < self._sp:
            raise ApiMisuseError(
                f"pop target {saved_sp:#010x} is below current sp {self._sp:#010x}"
            )
        self._sp = saved_sp

    def push_pointer(self, value: int) -> int:
        """Push one 32-bit word (e.g. a return address); returns its slot."""
        slot = self.push_region(4, alignment=4)
        self._space.write_pointer(slot, value)
        return slot


class LocalAreaPlanner:
    """Lays out a function's locals inside one frame, gcc-style.

    Locals are assigned top-down (first declared → highest address), each
    aligned to its natural alignment; the resulting padding holes are
    exactly where the paper's Listing 15 says overflowing bytes land
    before they reach the next variable.
    """

    def __init__(self, top_address: int) -> None:
        self._top = top_address
        self._cursor = top_address
        self._allocations: list[StackAllocation] = []

    def place(self, name: str, size: int, alignment: int = 4) -> StackAllocation:
        """Reserve the next local below all previously placed ones."""
        if size <= 0:
            raise ApiMisuseError(f"local '{name}' must have positive size")
        address = align_down(self._cursor - size, alignment)
        allocation = StackAllocation(
            name=name, address=address, size=size, alignment=alignment
        )
        self._allocations.append(allocation)
        self._cursor = address
        return allocation

    @property
    def allocations(self) -> tuple[StackAllocation, ...]:
        """All placed locals, in declaration order."""
        return tuple(self._allocations)

    @property
    def lowest_address(self) -> int:
        """Bottom of the local area."""
        return self._cursor

    @property
    def total_size(self) -> int:
        """Bytes from the bottom-most local to the top of the area."""
        return self._top - self._cursor

    def padded_total(self, alignment: int = 16) -> int:
        """Frame size rounded to the ABI stack alignment."""
        return align_up(self.total_size, alignment)

    def gap_above(self, name: str) -> int:
        """Padding bytes between local ``name`` and the item above it.

        This quantifies the paper's alignment discussion: for
        ``int n; Student stud;`` the gap above ``stud`` is where
        ``ssn[0]`` lands harmlessly before ``ssn[1]`` clobbers ``n``.
        """
        for index, allocation in enumerate(self._allocations):
            if allocation.name == name:
                upper = (
                    self._top
                    if index == 0
                    else self._allocations[index - 1].address
                )
                return upper - allocation.end
        raise ApiMisuseError(f"no local named '{name}'")

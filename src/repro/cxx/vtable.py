"""VTable construction for polymorphic classes.

For every polymorphic class the builder registers each virtual method's
most-derived implementation as a text-segment function and emits the
vtable — an array of those entry addresses — into the text image.
Objects then carry only a *pointer* to this table (written by the
constructor), which is the single word the Section 3.8.2 subterfuge
overwrites.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ApiMisuseError
from .classdef import ClassDef
from .text import EmittedVTable, TextImage


class VTableBuilder:
    """Builds and caches vtables for classes in one text image."""

    def __init__(self, text: TextImage) -> None:
        self._text = text
        self._by_class: dict[str, EmittedVTable] = {}

    def ensure(self, class_def: ClassDef) -> EmittedVTable:
        """Emit (or fetch) the vtable for ``class_def``."""
        cached = self._by_class.get(class_def.name)
        if cached is not None:
            return cached
        if not class_def.is_polymorphic():
            raise ApiMisuseError(
                f"class {class_def.name} has no virtual methods"
            )
        slots: list[tuple[str, int]] = []
        for slot_name in class_def.virtual_slot_order():
            implementation = class_def.resolve_virtual(slot_name)
            if implementation is None:
                # Pure virtual: emit the classic abort stub.
                implementation = _pure_virtual_called
            symbol = f"{class_def.name}::{slot_name}"
            entry = self._text.register_function(
                symbol,
                implementation,
                description=f"virtual {slot_name} for {class_def.name}",
            )
            slots.append((slot_name, entry.address))
        table = self._text.emit_vtable(class_def.name, slots)
        self._by_class[class_def.name] = table
        return table

    def lookup(self, class_name: str) -> Optional[EmittedVTable]:
        """The built vtable for ``class_name``, if any."""
        return self._by_class.get(class_name)

    def slot_index(self, class_def: ClassDef, method_name: str) -> int:
        """The vtable slot index the compiler would use for a call
        through a ``class_def`` pointer."""
        order = class_def.virtual_slot_order()
        try:
            return order.index(method_name)
        except ValueError:
            raise ApiMisuseError(
                f"{class_def.name} has no virtual method '{method_name}'"
            ) from None


def _pure_virtual_called(machine, instance, *args):  # pragma: no cover - stub
    """Stand-in for libstdc++'s ``__cxa_pure_virtual`` abort."""
    raise ApiMisuseError("pure virtual method called")

// package: pkg-00-leak
char pool[256];
void run() {
  readFile("/etc/passwd", pool, 256);
  char *userdata = new (pool) char[256];
  store(userdata);
}

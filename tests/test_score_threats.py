"""Tests for the CWE/CAPEC threat registry."""

import pytest

from repro.score.threats import (
    DEFAULT_THREATLIB,
    Impact,
    Likelihood,
    ScoreTarget,
    Threat,
    Threatlib,
    attack_names,
    coverage_gaps,
    detector_rule_ids,
    legacy_rule_ids,
    registry_version,
    risks_from_matrix,
    risks_from_report,
    scoring_versions,
    triage_class_ids,
)


class TestRegistryCompleteness:
    """New rules must not silently ship unscored."""

    def test_no_coverage_gaps(self):
        assert coverage_gaps() == {}

    def test_every_detector_rule_is_mapped(self):
        triggers = DEFAULT_THREATLIB.triggers()
        for rule in detector_rule_ids():
            assert rule in triggers, f"detector rule {rule} has no threat"

    def test_every_legacy_rule_is_mapped(self):
        triggers = DEFAULT_THREATLIB.triggers()
        for rule in legacy_rule_ids():
            assert rule in triggers, f"legacy rule {rule} has no threat"

    def test_every_triage_class_is_mapped(self):
        triggers = DEFAULT_THREATLIB.triggers()
        for label in triage_class_ids():
            assert label in triggers, f"triage class {label} has no threat"

    def test_every_attack_is_mapped(self):
        triggers = DEFAULT_THREATLIB.triggers()
        for name in attack_names():
            assert name in triggers, f"attack {name} has no threat"

    def test_rule_enumeration_is_not_empty(self):
        # The inspect-based extraction must keep finding the rules.
        assert len(detector_rule_ids()) >= 10
        assert len(legacy_rule_ids()) >= 4
        assert len(triage_class_ids()) >= 6
        assert len(attack_names()) >= 24

    def test_gaps_reported_for_incomplete_registry(self):
        lib = Threatlib()
        lib.register(
            Threat(
                "CAPEC-100",
                "Overflow Buffers",
                capec="",
                cwe_ids=(120,),
                likelihood=Likelihood.VERY_LIKELY,
                impact=Impact.VERY_HIGH,
                applies_to=("PN-OVERSIZE",),
            )
        )
        gaps = coverage_gaps(lib)
        assert "PN-LEAK" in gaps["detector_rules"]
        assert "CLASSIC-ALLOCA" in gaps["legacy_rules"]
        assert gaps["triage_classes"]
        assert gaps["attacks"]


class TestThreatApply:
    def _target(self, severity="error"):
        return ScoreTarget(
            kind="finding", trigger="PN-OVERSIZE", severity=severity
        )

    def test_error_finding_gets_base_grade(self):
        risk = DEFAULT_THREATLIB.apply(self._target())
        assert risk.score == 12
        assert risk.threat.threat_id == "CAPEC-100"

    def test_warning_finding_is_attenuated(self):
        error = DEFAULT_THREATLIB.apply(self._target("error"))
        warning = DEFAULT_THREATLIB.apply(self._target("warning"))
        assert warning.score < error.score
        assert warning.impact == error.impact

    def test_info_finding_scores_one(self):
        assert DEFAULT_THREATLIB.apply(self._target("info")).score == 1

    def test_unknown_trigger_maps_to_nothing(self):
        target = ScoreTarget(kind="finding", trigger="PN-NOT-A-RULE")
        assert DEFAULT_THREATLIB.apply(target) is None

    def test_unknown_kind_maps_to_nothing(self):
        target = ScoreTarget(kind="rumor", trigger="PN-OVERSIZE")
        assert DEFAULT_THREATLIB.apply(target) is None

    def test_matrix_cell_requires_attack_wins(self):
        won = ScoreTarget(
            kind="matrix-cell", trigger="heap-overflow", outcome="ATTACK-WINS"
        )
        stopped = ScoreTarget(
            kind="matrix-cell", trigger="heap-overflow", outcome="prevented"
        )
        assert DEFAULT_THREATLIB.apply(won) is not None
        assert DEFAULT_THREATLIB.apply(stopped) is None

    def test_duplicate_trigger_claim_is_rejected(self):
        lib = Threatlib()
        threat = Threat(
            "X-1",
            "first",
            capec="",
            cwe_ids=(1,),
            likelihood=Likelihood.LIKELY,
            impact=Impact.LOW,
            applies_to=("PN-OVERSIZE",),
        )
        lib.register(threat)
        with pytest.raises(ValueError, match="PN-OVERSIZE"):
            lib.register(
                Threat(
                    "X-2",
                    "second",
                    capec="",
                    cwe_ids=(2,),
                    likelihood=Likelihood.LIKELY,
                    impact=Impact.LOW,
                    applies_to=("PN-OVERSIZE",),
                )
            )

    def test_risk_dict_keys_are_sorted(self):
        risk = DEFAULT_THREATLIB.apply(self._target())
        assert list(risk.to_dict()) == sorted(risk.to_dict())


class TestVersions:
    def test_registry_version_is_stable(self):
        assert registry_version() == registry_version()
        assert len(registry_version()) == 12

    def test_registry_version_tracks_content(self):
        lib = Threatlib()
        lib.register(
            Threat(
                "X-1",
                "only",
                capec="",
                cwe_ids=(1,),
                likelihood=Likelihood.LIKELY,
                impact=Impact.LOW,
                applies_to=("PN-OVERSIZE",),
            )
        )
        assert registry_version(lib) != registry_version()

    def test_scoring_versions_extends_current_versions(self):
        from repro.regress.store import current_versions

        versions = scoring_versions()
        for key, value in current_versions().items():
            assert versions[key] == value
        assert versions["threat_registry"] == registry_version()


class TestEvidenceAdapters:
    def test_risks_from_report_orders_by_finding(self):
        from repro.analysis import analyze_source

        source = (
            "class A { public: double d; };\n"
            "class B : public A { public: int x[8]; };\n"
            "A arena;\n"
            "void f() { B *b = new (&arena) B(); }\n"
        )
        risks = risks_from_report("demo", analyze_source(source))
        assert risks
        assert risks[0].target.trigger == "PN-OVERSIZE"
        assert [r.target.line for r in risks] == sorted(
            r.target.line for r in risks
        )

    def test_risks_from_matrix_only_counts_wins(self):
        matrix = {
            "cells": [
                {
                    "attack": "heap-overflow",
                    "defense": "unprotected",
                    "summary": "ATTACK-WINS",
                },
                {
                    "attack": "heap-overflow",
                    "defense": "bounds-check",
                    "summary": "detected(bounds-check)",
                },
            ]
        }
        risks = risks_from_matrix(matrix)
        assert len(risks) == 1
        assert risks[0].target.detail == "defense=unprotected"

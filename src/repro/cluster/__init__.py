"""The cluster layer: sharded, quota'd serving over consistent hashing.

The subsystem that makes the service layer horizontal: an asyncio HTTP
front-end (``repro-cluster``, :mod:`server`) routes content-hash job
keys over a consistent-hash ring (:mod:`ring`) to N
:class:`~repro.service.engine.ServiceEngine` shards (:mod:`shard` —
in-process for tests, subprocess ``repro-serve`` children for
deployment), behind a tiered result cache (:mod:`cache`: owner mem →
disk → ring-successor peer) and per-tenant token-bucket quotas
(:mod:`quotas`).  The router (:mod:`router`) owns failover: shard loss
remaps only ~K/N keys and re-dispatches in-flight jobs to the ring
successor, keeping sweep reports byte-identical at any shard count.
See ``docs/CLUSTER.md``.
"""

from .cache import TieredCache
from .client import AsyncClusterClient, AsyncServiceClient
from .quotas import DEFAULT_TENANT, QuotaManager, TokenBucket, parse_override
from .ring import HashRing
from .router import ClusterError, ClusterRouter, build_shards
from .server import ClusterServer, create_cluster_server
from .shard import InProcessShard, ShardLost, SubprocessShard

__all__ = [
    "AsyncClusterClient",
    "AsyncServiceClient",
    "ClusterError",
    "ClusterRouter",
    "ClusterServer",
    "DEFAULT_TENANT",
    "HashRing",
    "InProcessShard",
    "QuotaManager",
    "ShardLost",
    "SubprocessShard",
    "TieredCache",
    "TokenBucket",
    "build_shards",
    "create_cluster_server",
    "parse_override",
]

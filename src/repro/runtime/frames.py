"""Call frames laid out in simulated stack memory.

The frame picture (addresses grow downward on the page, stack grows
toward the bottom)::

        higher addresses
        +------------------------+
        | return address         |   <- what Listing 13 rewrites
        +------------------------+
        | saved frame pointer    |   (if the machine saves FP)
        +------------------------+
        | canary                 |   (if stack protector is on)
        +------------------------+
        | local #1 (first decl.) |   <- gcc places earlier locals higher
        | local #2               |
        | ...                    |
        +------------------------+
        lower addresses

so an object local overflowing *upward* marches through later padding,
the canary, the saved FP and finally the return address — producing the
paper's exact index arithmetic (ssn[0] → ret with neither FP nor canary;
ssn[1] → ret with FP; ssn[2] → ret with canary and FP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..cxx.classdef import ClassDef
from ..cxx.object_model import CArrayView, Instance
from ..cxx.types import CType
from ..errors import ApiMisuseError
from ..memory.encoding import POINTER_SIZE
from ..memory.stack import StackAllocation

#: Value written as the "saved frame pointer" of the outermost frame.
INITIAL_FRAME_POINTER = 0xBFFFFFF0


@dataclass(frozen=True)
class FrameSlots:
    """Addresses of the frame's fixed (non-local) words."""

    return_slot: int
    fp_slot: Optional[int]
    canary_slot: Optional[int]

    def lowest_fixed(self) -> int:
        """Address of the lowest fixed word — locals start below this."""
        candidates = [self.return_slot]
        if self.fp_slot is not None:
            candidates.append(self.fp_slot)
        if self.canary_slot is not None:
            candidates.append(self.canary_slot)
        return min(candidates)


class CallFrame:
    """One live activation record.

    Created by :meth:`repro.runtime.machine.Machine.push_frame`; locals
    are declared through :meth:`local_object` / :meth:`local_scalar` /
    :meth:`local_array` in source order, which fixes their relative
    addresses the way gcc 4.4 did.
    """

    def __init__(
        self,
        machine: Any,
        name: str,
        slots: FrameSlots,
        original_return: int,
        saved_fp: int,
        saved_sp: int,
        canary_value: Optional[int],
    ) -> None:
        self._machine = machine
        self.name = name
        self.slots = slots
        self.original_return = original_return
        self.saved_fp = saved_fp
        self.saved_sp = saved_sp
        self.canary_value = canary_value
        self._locals: list[StackAllocation] = []
        self._tracked_arenas: list[int] = []
        self.closed = False

    # -- local declaration --------------------------------------------------

    def _declare(self, name: str, size: int, alignment: int) -> int:
        if self.closed:
            raise ApiMisuseError(f"frame {self.name} already popped")
        if any(existing.name == name for existing in self._locals):
            raise ApiMisuseError(f"duplicate local '{name}' in {self.name}")
        address = self._machine.stack.push_region(size, alignment)
        self._locals.append(
            StackAllocation(name=name, address=address, size=size, alignment=alignment)
        )
        return address

    def local_object(self, class_def: ClassDef, name: str) -> Instance:
        """Declare ``ClassName name;`` — raw storage, not constructed.

        The arena is registered with the allocation tracker for its
        lifetime (popped with the frame), so placements into it — even
        through pointers handed to callees — can be audited against its
        true extent.
        """
        from ..memory.tracker import ArenaOrigin

        layout = self._machine.layouts.layout_of(class_def)
        address = self._declare(name, layout.size, layout.alignment)
        self._machine.tracker.record(
            address, layout.size, ArenaOrigin.STACK, label=name
        )
        self._tracked_arenas.append(address)
        return Instance(self._machine, class_def, address)

    def local_scalar(self, ctype: CType, name: str, init: Any = None) -> int:
        """Declare a scalar local; returns its address."""
        address = self._declare(name, ctype.size, ctype.alignment)
        if init is not None:
            self._machine.space.write(address, ctype.encode(init))
        return address

    def local_array(self, element: CType, count: int, name: str) -> CArrayView:
        """Declare ``elem name[count];`` on the stack."""
        if count <= 0:
            raise ApiMisuseError(f"array length must be positive, got {count}")
        address = self._declare(name, element.size * count, element.alignment)
        return CArrayView(self._machine, element, count, address)

    # -- queries --------------------------------------------------------------

    @property
    def locals(self) -> tuple[StackAllocation, ...]:
        """Declared locals in declaration order."""
        return tuple(self._locals)

    def local_address(self, name: str) -> int:
        """Address of a declared local."""
        for allocation in self._locals:
            if allocation.name == name:
                return allocation.address
        raise ApiMisuseError(f"no local '{name}' in frame {self.name}")

    def gap_above(self, name: str) -> int:
        """Padding bytes between local ``name`` and whatever sits above it
        (the previous local, or the lowest fixed slot).

        Quantifies the paper's Listing 15 alignment analysis.
        """
        for index, allocation in enumerate(self._locals):
            if allocation.name == name:
                if index == 0:
                    upper = self.slots.lowest_fixed()
                else:
                    upper = self._locals[index - 1].address
                return upper - allocation.end
        raise ApiMisuseError(f"no local '{name}' in frame {self.name}")

    def distance_to_return_slot(self, name: str) -> int:
        """Bytes from the *end* of local ``name`` up to the return slot."""
        for allocation in self._locals:
            if allocation.name == name:
                return self.slots.return_slot - allocation.end
        raise ApiMisuseError(f"no local '{name}' in frame {self.name}")

    # -- raw slot access (used by tests and forensics) ---------------------

    def read_return_address(self) -> int:
        """Current value of the return-address word."""
        return self._machine.space.read_pointer(self.slots.return_slot)

    def read_saved_fp(self) -> Optional[int]:
        """Current value of the saved-FP word (None if not saved)."""
        if self.slots.fp_slot is None:
            return None
        return self._machine.space.read_pointer(self.slots.fp_slot)

    def read_canary(self) -> Optional[int]:
        """Current value of the canary word (None if absent)."""
        if self.slots.canary_slot is None:
            return None
        return self._machine.space.read_int(
            self.slots.canary_slot, width=POINTER_SIZE, signed=False
        )

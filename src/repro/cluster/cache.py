"""The cluster's tiered result cache: owner mem → disk → ring peer.

The router consults this before computing any cacheable job.  Tier 1
and 2 live inside the owner shard's :class:`~repro.service.cache.ResultCache`
(its in-memory LRU, then its disk store — shared across shards when
they are configured with one cache directory).  Tier 3 asks the key's
*ring successor*: after a topology change the successor is exactly the
shard that owned the key before, so its warm cache is the best place
to look before paying for a recompute.  A peer hit warms the owner on
the way back, so the next lookup stops at tier 1.

Per-tier accounting lands in the cluster metrics registry as
``cluster.cache_hits.{mem,disk,peer}`` / ``cluster.cache_misses``.
"""

from __future__ import annotations

from typing import Optional

from ..service.metrics import MetricsRegistry


class TieredCache:
    """Tier accounting + the lookup/store protocol over shard caches.

    ``owner`` and ``peer`` are shard objects exposing the async cache
    seam (``cache_probe``/``cache_put``); the cache itself holds no
    entries — it orchestrates the shards that do.
    """

    def __init__(self, metrics: MetricsRegistry):
        self.metrics = metrics

    async def lookup(self, key: str, owner, peer=None) -> Optional[dict]:
        """The cached result for ``key``, or ``None`` after all tiers miss."""
        self.metrics.counter("cluster.cache_lookups").inc()
        value, tier = await owner.cache_probe(key)
        if value is not None:
            self.metrics.counter(f"cluster.cache_hits.{tier}").inc()
            return value
        if peer is not None and peer is not owner:
            value, _ = await peer.cache_probe(key)
            if value is not None:
                self.metrics.counter("cluster.cache_hits.peer").inc()
                # warm the owner so the key's next lookup is tier-1
                await owner.cache_put(key, value)
                return value
        self.metrics.counter("cluster.cache_misses").inc()
        return None

    async def store(self, key: str, value: dict, owner) -> None:
        """Warm the owner's cache after a recompute elsewhere."""
        await owner.cache_put(key, value)

    def stats(self) -> dict:
        """Per-tier hit/miss counts (reads the shared registry)."""
        counters = self.metrics.snapshot()["counters"]
        lookups = counters.get("cluster.cache_lookups", 0)
        hits = sum(
            counters.get(f"cluster.cache_hits.{tier}", 0)
            for tier in ("mem", "disk", "peer")
        )
        return {
            "lookups": lookups,
            "hits": {
                tier: counters.get(f"cluster.cache_hits.{tier}", 0)
                for tier in ("mem", "disk", "peer")
            },
            "misses": counters.get("cluster.cache_misses", 0),
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        }

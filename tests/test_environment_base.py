"""Tests for the Environment/AttackResult machinery in attacks.base."""

import pytest

from repro.attacks import (
    ALL_ENVIRONMENTS,
    CHECKED_PLACEMENT,
    SANITIZE,
    UNPROTECTED,
    AttackResult,
    classify_failure,
    environment_with,
)
from repro.errors import (
    BoundsCheckViolation,
    OutOfMemory,
    RedZoneViolation,
    SegmentationFault,
    SimulatedTimeout,
    StackSmashingDetected,
)
from repro.execution.values import Scope, Variable, truthy
from repro.workloads import make_student_classes


class TestEnvironment:
    def test_labels_unique(self):
        labels = [env.label for env in ALL_ENVIRONMENTS]
        assert len(labels) == len(set(labels))

    def test_environment_with_derivation(self):
        derived = environment_with(UNPROTECTED, label="custom", checked_placement=True)
        assert derived.label == "custom"
        assert derived.checked_placement
        assert not UNPROTECTED.checked_placement  # original untouched

    def test_unprotected_place_is_unchecked(self):
        machine = UNPROTECTED.make_machine()
        student, grad = make_student_classes()
        arena = machine.static_object(student, "arena")
        placed = UNPROTECTED.place(machine, arena, grad)
        assert placed.size > arena.size  # sailed through

    def test_checked_env_place_raises(self):
        machine = CHECKED_PLACEMENT.make_machine()
        student, grad = make_student_classes()
        arena = machine.static_object(student, "arena")
        with pytest.raises(BoundsCheckViolation):
            CHECKED_PLACEMENT.place(machine, arena, grad)

    def test_sanitize_env_scrubs_before_reuse(self):
        machine = SANITIZE.make_machine()
        student, _ = make_student_classes()
        arena = machine.static_object(student, "arena")
        machine.space.write(arena.address, b"SECRET!!" * 2)
        SANITIZE.place(machine, arena, student)
        # Constructor wrote zeros anyway, but the sanitize pass must
        # have cleared the full arena first; check the tail padding that
        # the constructor never touches in a 16B Student (none) — use a
        # bigger arena via raw address + explicit size instead.
        base = arena.address
        assert machine.space.read(base, 16) != b"SECRET!!" * 2

    def test_make_pool_checked_variant(self):
        from repro.memory import CheckedMemoryPool, MemoryPool, SegmentKind

        machine = UNPROTECTED.make_machine()
        base = machine.space.segment(SegmentKind.BSS).base
        assert isinstance(UNPROTECTED.make_pool(machine, base, 64), MemoryPool)
        machine2 = CHECKED_PLACEMENT.make_machine()
        base2 = machine2.space.segment(SegmentKind.BSS).base
        assert isinstance(
            CHECKED_PLACEMENT.make_pool(machine2, base2, 64), CheckedMemoryPool
        )


class TestClassifyFailure:
    @pytest.mark.parametrize(
        "exc,expected",
        [
            (StackSmashingDetected("f", 1, 2), ("stackguard", False)),
            (BoundsCheckViolation(16, 32), ("bounds-check", False)),
            (RedZoneViolation(0x1000, 4), ("shadow-memory", False)),
            (SegmentationFault(0x1000, "write"), (None, True)),
            (OutOfMemory("gone"), (None, True)),
            (SimulatedTimeout(100), (None, True)),
        ],
    )
    def test_classification(self, exc, expected):
        assert classify_failure(exc) == expected

    def test_shadow_stack_classification(self):
        from repro.defenses import ReturnAddressTampering

        detected, crashed = classify_failure(
            ReturnAddressTampering("f", expected=1, found=2)
        )
        assert detected == "shadow-return-stack" and not crashed


class TestAttackResult:
    def test_describe_variants(self):
        win = AttackResult("a", "§1", "unprotected", succeeded=True)
        assert "SUCCEEDED" in win.describe()
        caught = AttackResult(
            "a", "§1", "guarded", succeeded=False, detected_by="stackguard"
        )
        assert "DETECTED by stackguard" in caught.describe()
        crash = AttackResult("a", "§1", "x", succeeded=False, crashed=True)
        assert "CRASHED" in crash.describe()
        stopped = AttackResult("a", "§1", "x", succeeded=False)
        assert "PREVENTED" in stopped.describe()

    def test_prevented_property(self):
        assert AttackResult("a", "", "e", succeeded=False).prevented
        assert not AttackResult("a", "", "e", succeeded=True).prevented


class TestExecutionValues:
    def test_scope_chain(self):
        from repro.analysis.ast_nodes import TypeRef

        parent = Scope()
        parent.declare(Variable(name="g", address=1, type_ref=TypeRef(name="int")))
        child = parent.child()
        child.declare(Variable(name="l", address=2, type_ref=TypeRef(name="int")))
        assert child.lookup("g").address == 1
        assert child.lookup("l").address == 2
        assert parent.lookup("l") is None
        assert child.lookup("missing") is None

    def test_shadowing(self):
        from repro.analysis.ast_nodes import TypeRef

        parent = Scope()
        parent.declare(Variable(name="x", address=1, type_ref=TypeRef(name="int")))
        child = parent.child()
        child.declare(Variable(name="x", address=2, type_ref=TypeRef(name="int")))
        assert child.lookup("x").address == 2
        assert parent.lookup("x").address == 1

    @pytest.mark.parametrize(
        "value,expected",
        [(0, False), (1, True), (-1, True), (0.0, False), ("", False),
         ("a", True), (None, False)],
    )
    def test_truthy(self, value, expected):
        assert truthy(value) is expected

"""The paper's primary contribution surface: placement new and friends.

:mod:`placement` is the faithful, **unchecked** primitive (the
vulnerability); :mod:`checked` and :mod:`placement_delete` implement the
Section 5.1 corrected discipline; :mod:`sanitize` covers the
information-leak countermeasures; :mod:`new_expr` supplies the ordinary
heap-backed ``new``/``delete`` the placements are contrasted with.
"""

from .checked import (
    checked_placement_new,
    checked_placement_new_array,
    place_or_heap_allocate,
)
from .new_expr import (
    NewContext,
    construct,
    delete_array,
    delete_object,
    new_array,
    new_object,
)
from .placement import (
    PlacementAuditLog,
    PlacementRecord,
    PlacementTarget,
    placement_new,
    placement_new_array,
    placement_new_in_pool,
    resolve_target,
)
from .placement_delete import ArenaOwner, Destructor, placement_delete
from .sanitize import (
    PATTERN_ONES,
    PATTERN_ZERO,
    SanitizationReport,
    leaked_bytes,
    residual_ranges,
    sanitize,
    sanitize_residue,
)

__all__ = [
    "ArenaOwner",
    "Destructor",
    "NewContext",
    "PATTERN_ONES",
    "PATTERN_ZERO",
    "PlacementAuditLog",
    "PlacementRecord",
    "PlacementTarget",
    "SanitizationReport",
    "checked_placement_new",
    "checked_placement_new_array",
    "construct",
    "delete_array",
    "delete_object",
    "leaked_bytes",
    "new_array",
    "new_object",
    "placement_delete",
    "placement_new",
    "placement_new_array",
    "placement_new_in_pool",
    "place_or_heap_allocate",
    "residual_ranges",
    "resolve_target",
    "sanitize",
    "sanitize_residue",
]

"""ServiceEngine: parallel sweeps match sequential analysis exactly."""

import pytest

from repro.analysis import analyze_source
from repro.service import ServiceEngine
from repro.service.workers import report_from_payload, report_payload, run_matrix
from repro.workloads import corpus_sources

VULN_SOURCE = """
class A { public: double d; };
class B : public A { public: int x[8]; };
void f() { A a; B *b = new (&a) B(); }
"""


@pytest.fixture(scope="module")
def engine():
    with ServiceEngine(workers=4) as engine:
        yield engine


class TestAnalysisPaths:
    def test_single_analysis_matches_direct_call(self, engine):
        payload = engine.analyze(VULN_SOURCE, label="vuln")
        assert payload == report_payload(analyze_source(VULN_SOURCE), label="vuln")
        assert payload["flagged"]
        assert [f["rule"] for f in payload["findings"]] == [
            f.rule
            for f in sorted(
                analyze_source(VULN_SOURCE).findings,
                key=lambda f: (f.line, f.rule, f.function, f.message),
            )
        ]

    def test_parallel_corpus_sweep_equals_sequential(self, engine):
        parallel = engine.corpus_sweep()
        sequential = [
            report_payload(analyze_source(source), label=label)
            for label, source in corpus_sources()
        ]
        assert parallel == sequential

    def test_second_sweep_is_fully_cached(self):
        with ServiceEngine(workers=4) as engine:
            engine.corpus_sweep()
            stores_after_cold = engine.cache.stores
            engine.corpus_sweep()
            assert engine.cache.stores == stores_after_cold  # no recompute
            assert engine.cache.hits >= len(corpus_sources())

    def test_report_round_trips_through_payload(self, engine):
        payload = engine.analyze(VULN_SOURCE)
        rebuilt = report_from_payload(payload)
        direct = analyze_source(VULN_SOURCE)
        assert rebuilt.render() == direct.render()
        assert rebuilt.to_json() == direct.to_json()


class TestAttackPaths:
    def test_attack_summary(self, engine):
        result = engine.attack("data-bss-overflow")
        assert result["succeeded"]
        assert result["summary"] == "ATTACK-WINS"

    def test_attack_under_defense_detected(self, engine):
        result = engine.attack(
            "overflow-via-construction", env="checked-placement"
        )
        assert not result["succeeded"]
        assert result["detected_by"] == "bounds-check"

    def test_gallery_runs_everything(self, engine):
        from repro.attacks import all_attacks

        results = engine.gallery()
        assert [r["name"] for r in results] == [s.name for s in all_attacks()]

    def test_parallel_matrix_equals_sequential_worker(self, engine):
        parallel = engine.matrix(parallel=True)
        sequential = run_matrix({})
        assert parallel["defenses"] == sequential["defenses"]
        assert parallel["attacks_succeeding"] == sequential["attacks_succeeding"]
        key = lambda cell: (cell["attack"], cell["defense"])  # noqa: E731
        assert sorted(parallel["cells"], key=key) == sorted(
            sequential["cells"], key=key
        )

    def test_sub_matrix_selection(self, engine):
        result = engine.matrix(
            attacks=("data-bss-overflow",), defenses=("none", "shadow-memory")
        )
        assert result["defenses"] == ["none", "shadow-memory"]
        assert len(result["cells"]) == 2


class TestExecAndIntrospection:
    def test_execute_returns_outcome(self, engine):
        result = engine.execute("int main(int a, char b) { return 41; }")
        assert result == {
            **result,
            "died": False,
            "return_value": 41,
            "hijacked": False,
        }
        assert result["steps"] > 0

    def test_execute_reports_simulated_death(self, engine):
        result = engine.execute(
            "int main(int a, char b) { int *p; p = 0; *p = 5; return 0; }"
        )
        assert result["died"] is True
        assert result["error_type"] == "SegmentationFault"

    def test_metrics_snapshot_shape(self, engine):
        snapshot = engine.metrics_snapshot()
        assert snapshot["pool"] == {
            "backend": "thread",
            "workers": 4,
            "extra_workers": 0,
        }
        assert snapshot["cache"]["version"]
        assert snapshot["faults"] == {"enabled": False}
        assert "scheduler.jobs_submitted" in snapshot["counters"]

    def test_health(self, engine):
        health = engine.health()
        assert health["status"] == "ok"
        assert health["workers"] == 4
        assert health["cache"] is True

"""Service metrics: counters, gauges, and histograms with a JSON snapshot.

A deliberately small, stdlib-only metrics surface in the shape of the
usual exporters: monotonically increasing counters, last-value gauges,
and summary histograms (count/total/min/max/mean).  Everything is
thread-safe and renders to a deterministic, sorted JSON document served
by the ``/metrics`` endpoint.
"""

from __future__ import annotations

import json
import threading
from typing import Optional


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, workers busy)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """Summary statistics over observed values (latencies, sizes)."""

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.vmin = value if self.vmin is None else min(self.vmin, value)
            self.vmax = value if self.vmax is None else max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "total": round(self.total, 6),
                "mean": round(self.mean, 6),
                "min": round(self.vmin, 6) if self.vmin is not None else None,
                "max": round(self.vmax, 6) if self.vmax is not None else None,
            }


class MetricsRegistry:
    """Create-or-get metric instruments plus a snapshot of all of them."""

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram(name))

    def snapshot(self) -> dict:
        """All instruments, deterministically ordered."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].summary() for name in sorted(histograms)
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)

"""Variable Record Table — run-time per-allocation bounds (arXiv 1909.07821).

The paper's §5.2 pessimism about runtime bounds checking — *"placement
new just operates on an address, not on a lexically declared array"* —
is exactly what a VRT answers: the runtime keeps its own table mapping
every variable's base address to its recorded extent, so an address
*can* be resolved back to bounds without lexical information and without
recompiling the placement sites.

The table is fed from three channels:

* the :class:`~repro.memory.tracker.AllocationTracker` — every heap
  ``new``, pool suballocation, stack object and static object enters the
  table the moment it is allocated;
* the :class:`~repro.core.placement.PlacementAuditLog` — placements at
  lexically-known arenas the tracker never saw (a local ``char[]``, a
  bss array) contribute their arena bounds at the placement itself;
* and it is *consulted* at every placement (``relabel``) — an object
  larger than the arena's recorded extent faults before its constructor
  runs — and on every access: bulk reads/writes through the address
  space are checked by containment, typed field/element accesses by
  referent, so ``*(st->courseid + i)`` is checked against ``st``'s
  bounds even when ``i`` walks into a neighbouring allocation.

Because the feed is the allocator/tracker substrate rather than
``Environment.place``, the VRT also covers interpreted programs (the
``repro.execution`` engines do their placement internally), which the
§5.1 checked-placement *source fix* cannot reach.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional

from ..core.placement import PlacementRecord
from ..errors import SimulatedProcessError
from ..memory.tracker import ArenaRecord
from ..runtime.machine import Machine


class VrtBoundsViolation(SimulatedProcessError):
    """An access or placement exceeded a variable's recorded bounds."""

    def __init__(
        self, address: int, size: int, base: int, bounds: int, operation: str
    ) -> None:
        self.address = address
        self.size = size
        self.base = base
        self.bounds = bounds
        self.operation = operation
        super().__init__(
            f"VRT: {operation} of {size}B at {address:#010x} exceeds the "
            f"{bounds}B record of variable {base:#010x}"
        )


@dataclass
class _VrtEntry:
    """One table row: the variable's true extent and what the program
    currently believes lives there (shrunk/grown by placements)."""

    base: int
    true_size: int
    believed_size: int


@dataclass
class VariableRecordTable:
    """The runtime bounds table plus its enforcement hooks."""

    machine: Machine
    checks: int = 0
    violations: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._entries: dict[int, _VrtEntry] = {}
        self._bases: list[int] = []
        self._dirty = False
        self._armed = False

    # -- feeds --------------------------------------------------------------

    def _put(self, base: int, true_size: int, believed_size: int) -> None:
        if base not in self._entries:
            self._dirty = True
        self._entries[base] = _VrtEntry(
            base=base, true_size=true_size, believed_size=believed_size
        )

    def _drop(self, base: int) -> None:
        if self._entries.pop(base, None) is not None:
            self._dirty = True

    def _on_arena_event(self, event: str, record: ArenaRecord) -> None:
        if event == "record":
            self._put(record.address, record.true_size, record.believed_size)
        elif event == "relabel":
            entry = self._entries.get(record.address)
            if entry is None:
                self._put(record.address, record.true_size, record.believed_size)
                entry = self._entries[record.address]
            entry.believed_size = record.believed_size
            self.checks += 1
            if record.believed_size > entry.true_size:
                self._fail(
                    record.address,
                    record.believed_size,
                    entry.base,
                    entry.true_size,
                    "placement",
                )
        elif event in ("forget", "freed"):
            self._drop(record.address)

    def _on_placement(self, record: PlacementRecord) -> None:
        entry = self._entries.get(record.address)
        if entry is None:
            if record.arena_size is None:
                return  # bare pointer, no recorded variable: unresolvable
            self._put(record.address, record.arena_size, record.size)
            entry = self._entries[record.address]
        self.checks += 1
        if record.size > entry.true_size:
            self._fail(
                record.address, record.size, entry.base, entry.true_size, "placement"
            )
        entry.believed_size = record.size

    # -- lookup -------------------------------------------------------------

    def _reindex(self) -> None:
        self._bases = sorted(self._entries)
        self._dirty = False

    def _entry_containing(self, address: int) -> Optional[_VrtEntry]:
        """The record whose *true* extent contains ``address``, if any
        (innermost wins when placements created nested records)."""
        if self._dirty:
            self._reindex()
        i = bisect_right(self._bases, address) - 1
        if i < 0:
            return None
        entry = self._entries[self._bases[i]]
        if address < entry.base + entry.true_size:
            return entry
        return None

    def lookup(self, address: int) -> Optional[_VrtEntry]:
        """Public containment lookup (diagnostics and tests)."""
        return self._entry_containing(address)

    @property
    def live_entries(self) -> int:
        """Number of variables currently in the table."""
        return len(self._entries)

    # -- enforcement --------------------------------------------------------

    def _fail(
        self, address: int, size: int, base: int, bounds: int, operation: str
    ) -> None:
        violation = VrtBoundsViolation(address, size, base, bounds, operation)
        self.violations.append(violation)
        raise violation

    def _on_access(self, address: int, data: bytes, is_write: bool) -> None:
        entry = self._entry_containing(address)
        if entry is None:
            return
        self.checks += 1
        if address + len(data) > entry.base + entry.believed_size:
            self._fail(
                address,
                len(data),
                entry.base,
                entry.believed_size,
                "write" if is_write else "read",
            )

    def _on_typed_access(
        self, base: int, address: int, length: int, is_write: bool
    ) -> None:
        entry = self._entries.get(base)
        if entry is None:
            return
        self.checks += 1
        if address < entry.base or address + length > entry.base + entry.believed_size:
            self._fail(
                address,
                length,
                entry.base,
                entry.believed_size,
                "write" if is_write else "read",
            )

    # -- lifecycle ----------------------------------------------------------

    def arm(self) -> None:
        """Subscribe to every feed and start enforcing."""
        if self._armed:
            return
        # Adopt arenas that existed before the table was attached.
        for record in self.machine.tracker.live_records:
            self._put(record.address, record.true_size, record.believed_size)
        self.machine.tracker.add_observer(self._on_arena_event)
        self.machine.placement_log.add_observer(self._on_placement)
        self.machine.space.add_access_hook(self._on_access)
        self.machine.space.add_typed_guard(self._on_typed_access)
        self._armed = True

    def disarm(self) -> None:
        """Stop enforcing and detach from the machine."""
        if not self._armed:
            return
        self.machine.tracker.remove_observer(self._on_arena_event)
        self.machine.placement_log.remove_observer(self._on_placement)
        self.machine.space.remove_access_hook(self._on_access)
        self.machine.space.remove_typed_guard(self._on_typed_access)
        self._armed = False


def protect_machine(machine: Machine) -> VariableRecordTable:
    """Attach an armed VRT to ``machine`` and return it."""
    vrt = VariableRecordTable(machine)
    vrt.arm()
    machine.vrt = vrt  # type: ignore[attr-defined]
    return vrt

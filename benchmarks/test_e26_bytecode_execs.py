"""E26 — bytecode engine throughput: compile once, execute many.

The bytecode VM exists to make fuzz executions cheap: the compiler
runs once per distinct source (content-hash cache) while every
execution pays only the threaded dispatch loop and, with no access
hooks installed, the vectorized bulk-access fast path.  This
experiment records raw executions per second for the same seed sweep
on both engines, the engine speedup, the hooked fuzz-oracle rate for
context (the event tap forces every access through the slow path, so
only the dispatch win survives there), and the cold-compile cost per
program — all as ``extra_info`` riders so the BENCH trajectory tracks
them.

The sweep drops the vulnerable ``dos-loop`` seed on purpose: it spins
to the 50k step budget by design, so it measures the timeout ceiling
(E11's experiment), not execution throughput.
"""

import time

from conftest import print_table

from repro.execution import compiled_for, reset_cache, run_source
from repro.execution.vm import BytecodeVM
from repro.fuzz.oracles import OracleConfig, _entry_plan, dynamic_verdict
from repro.fuzz.seeds import seed_inputs
from repro.runtime import Machine

ROUNDS = 8


def _plans():
    plans = []
    for seed in seed_inputs(20260808):
        if seed.family == "dos-loop" and seed.label == "vulnerable":
            continue  # spins to the step budget; measured by E11
        plan = _entry_plan(seed.source)
        if plan is not None:
            plans.append((seed, plan))
    return plans


PLANS = _plans()


def _ast_sweep() -> None:
    for seed, (entry, args) in PLANS:
        machine = Machine()
        try:
            run_source(
                seed.source,
                entry=entry,
                args=args,
                machine=machine,
                stdin=seed.stdin,
            )
        except Exception:
            pass  # faults are legitimate outcomes here


def _vm_sweep() -> None:
    for seed, (entry, args) in PLANS:
        compiled, _note = compiled_for(seed.source)
        if compiled is None:
            continue
        machine = Machine()
        try:
            vm = BytecodeVM(compiled, machine=machine)
            if seed.stdin:
                machine.stdin.feed(*seed.stdin)
            vm.run(entry, *args)
        except Exception:
            pass


def _rate(benchmark) -> float:
    mean = benchmark.stats.stats.mean
    return len(PLANS) / mean if mean else 0.0


def test_e26_ast_exec_rate(benchmark):
    """Baseline: the AST interpreter over the terminating seed sweep."""
    benchmark.pedantic(_ast_sweep, rounds=ROUNDS, warmup_rounds=1)

    execs_per_s = _rate(benchmark)
    benchmark.extra_info["execs"] = len(PLANS)
    benchmark.extra_info["execs_per_s"] = round(execs_per_s, 2)
    assert execs_per_s > 0


def test_e26_bytecode_exec_rate(benchmark):
    """Compile-once-run-many: the cache is warmed before measuring, so
    the recorded rounds pay dispatch and bulk access, not compilation."""
    reset_cache()
    _vm_sweep()  # warm the compiled-program cache

    benchmark.pedantic(_vm_sweep, rounds=ROUNDS, warmup_rounds=1)

    execs_per_s = _rate(benchmark)
    benchmark.extra_info["execs"] = len(PLANS)
    benchmark.extra_info["execs_per_s"] = round(execs_per_s, 2)
    assert execs_per_s > 0


def test_e26_cold_compile(benchmark):
    """Cold-compile throughput: parse + lower the whole sweep with an
    empty cache, the cost a fresh worker pays exactly once."""

    def compile_all():
        reset_cache()
        for seed, _plan in PLANS:
            compiled_for(seed.source)

    benchmark.pedantic(compile_all, rounds=ROUNDS, warmup_rounds=1)

    mean = benchmark.stats.stats.mean
    compile_ms = mean * 1000.0 / len(PLANS)
    benchmark.extra_info["programs"] = len(PLANS)
    benchmark.extra_info["compile_ms"] = round(compile_ms, 3)
    # Compilation must amortize within a handful of executions, or the
    # cache buys nothing on short campaigns.
    assert compile_ms < 50.0


def test_e26_engine_speedup():
    """The acceptance number: the bytecode engine sustains at least a
    2x raw execution-rate speedup over the AST interpreter on the same
    sweep (measured ~4x on an idle machine; 2x leaves CI headroom).
    The hooked oracle path is printed for context: the fuzzing event
    tap disables the vectorized fast path, so only the dispatch-loop
    win survives there."""
    reset_cache()
    _vm_sweep()  # warm the compiled cache

    started = time.perf_counter()
    for _ in range(ROUNDS):
        _ast_sweep()
    ast_s = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(ROUNDS):
        _vm_sweep()
    vm_s = time.perf_counter() - started

    def oracle_sweep(engine):
        config = OracleConfig(engine=engine)
        started = time.perf_counter()
        for seed, _plan in PLANS:
            dynamic_verdict(seed.source, seed.stdin, config)
        return time.perf_counter() - started

    oracle_ast_s = oracle_sweep("ast")
    oracle_vm_s = oracle_sweep("bytecode")

    execs = ROUNDS * len(PLANS)
    ast_rate = execs / ast_s
    vm_rate = execs / vm_s
    speedup = vm_rate / ast_rate
    print_table(
        f"E26 engine throughput ({len(PLANS)} seeds x {ROUNDS} rounds)",
        ["path", "execs/sec", "speedup"],
        [
            ["ast (raw)", f"{ast_rate:.1f}", "1.00x"],
            ["bytecode (raw)", f"{vm_rate:.1f}", f"{speedup:.2f}x"],
            [
                "ast (hooked oracle)",
                f"{len(PLANS) / oracle_ast_s:.1f}",
                "-",
            ],
            [
                "bytecode (hooked oracle)",
                f"{len(PLANS) / oracle_vm_s:.1f}",
                f"{oracle_ast_s / oracle_vm_s:.2f}x",
            ],
        ],
    )
    assert speedup >= 2.0

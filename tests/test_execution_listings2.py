"""More corpus listings executed from source: Listings 4, 6, 7."""


from repro.analysis.parser import parse
from repro.execution import Interpreter, run_source
from repro.workloads.corpus import LISTING_4, _CLASSES


class TestListing4FromSource:
    def test_construction_overflow_observed(self):
        interp, _ = run_source(
            LISTING_4.source, entry="addStudent", args=(4.0,)
        )
        # A 32-byte object constructed in a 16-byte stack arena: the
        # placement itself is the overflow; it is visible in the audit
        # log even though no ssn write followed.
        records = interp.machine.placement_log.records
        assert records and records[-1].size == 32

    def test_constructor_values_land(self):
        source = _CLASSES + """
GradStudent target;
void build() {
  GradStudent *st = new (&target) GradStudent(3.75, 2012, 2);
}
"""
        interp, _ = run_source(source, entry="build", args=())
        target = interp.globals.lookup("target")
        assert interp.machine.space.read_double(target.address) == 3.75
        assert interp.machine.space.read_int(target.address + 8) == 2012


class TestListing6FromSource:
    # The sentinel must share the bss with stud to be adjacent; an
    # initialized global would land in .data.  The pad array keeps the
    # honest-case writes (ssn[0..2], bytes +16..+28) away from it.
    SOURCE = _CLASSES + """
class Remote { public: int n; int courseid[2]; };
Student stud;
int pad[4];
int sentinel;
void setup() { sentinel = 777; }
void addStudent(Remote *remoteobj) {
  GradStudent *st = new (&stud) GradStudent(1.0, 2009, 1);
  int i = -1;
  while (++i < remoteobj->n) {
    st->ssn[i] = remoteobj->courseid[i];
  }
}
void attack(int lying_n) {
  Remote r;
  r.n = lying_n;
  r.courseid[0] = 9000;
  r.courseid[1] = 9001;
  addStudent(&r);
}
"""

    def _attack(self, lying_n):
        from repro.execution import Interpreter
        from repro.analysis.parser import parse

        interp = Interpreter(parse(self.SOURCE))
        interp.run("setup")
        interp.run("attack", lying_n)
        return interp

    def test_honest_count_stays_in_bounds(self):
        interp = self._attack(2)
        assert interp.machine.read_global("sentinel") == 777

    def test_lying_count_overflows_through_copy_loop(self):
        """The remote object's n drives writes past ssn[2]: element 4
        (stud+32) lands in the sentinel global past the pad."""
        interp = self._attack(6)
        assert interp.machine.read_global("sentinel") != 777

    def test_copy_loop_reads_its_own_neighbourhood(self):
        # courseid[i] for i >= 2 reads past the Remote object — the
        # classic double-sided unchecked copy.  No crash: the stack
        # neighbourhood is mapped.
        interp, _ = run_source(self.SOURCE, entry="attack", args=(4,))
        assert interp.machine.placement_log.records


class TestListing7FromSource:
    SOURCE = _CLASSES + """
Student stud;
int sentinel;
void addStudent(Student *remoteobj) {
  GradStudent *st = new (&stud) GradStudent(remoteobj->gpa, 2009, 1);
  st->ssn[0] = 111111111;
}
void attack() {
  Student remote;
  Student *r = new (&remote) Student(2.5, 2012, 2);
  addStudent(&remote);
}
"""

    def test_copy_constructed_overflow(self):
        interp, _ = run_source(self.SOURCE, entry="attack", args=())
        stud = interp.globals.lookup("stud")
        # The copied gpa arrived...
        assert interp.machine.space.read_double(stud.address) == 2.5
        # ...and ssn[0] (stud+16) landed on the bss neighbour.
        assert interp.machine.read_global("sentinel") == 111111111


class TestInterpreterEdgeCases:
    def test_recursive_program_function(self):
        interp = Interpreter(
            parse("int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }")
        )
        assert interp.run("fact", 6).return_value == 720

    def test_nested_frames_restore_stack(self):
        interp = Interpreter(
            parse("int inner() { int x = 1; return x; } int outer() { return inner() + inner(); }")
        )
        sp_before = interp.machine.stack.stack_pointer
        assert interp.run("outer").return_value == 2
        assert interp.machine.stack.stack_pointer == sp_before

    def test_division_truncates_toward_zero(self):
        interp = Interpreter(parse("int f() { return -7 / 2; }"))
        assert interp.run("f").return_value == -3  # C semantics

    def test_delete_frees_heap(self):
        interp = Interpreter(
            parse(
                "class P { public: int x; };"
                "void f() { P *p = new P(); delete p; }"
            )
        )
        interp.run("f")
        assert interp.machine.heap.bytes_in_use == 0

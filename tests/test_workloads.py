"""Tests for workload classes and the MiniC++ corpus metadata."""


from repro.core import construct
from repro.workloads import (
    make_mobile_player,
    make_someclass,
    make_student_classes,
)
from repro.workloads.corpus import (
    CLASSIC_CORPUS,
    FULL_CORPUS,
    PLACEMENT_CORPUS,
    SAFE_CORPUS,
)


class TestStudentClasses:
    def test_fresh_definitions_per_call(self):
        a, _ = make_student_classes()
        b, _ = make_student_classes()
        assert a is not b
        assert a.name == b.name == "Student"

    def test_grad_subclasses_student(self):
        student, grad = make_student_classes()
        assert grad.is_subclass_of(student)
        assert not student.is_subclass_of(grad)

    def test_virtual_variant_polymorphic(self):
        student, grad = make_student_classes(virtual=True)
        assert student.is_polymorphic() and grad.is_polymorphic()
        plain_student, _ = make_student_classes()
        assert not plain_student.is_polymorphic()

    def test_grad_value_ctor_sets_base_members(self, machine):
        _, grad = make_student_classes()
        inst = machine.static_object(grad, "g")
        construct(machine, grad, inst.address, 3.9, 2009, 2)
        assert inst.get("gpa") == 3.9
        assert inst.get("semester") == 2

    def test_virtual_dispatch_returns_info(self, machine):
        student, grad = make_student_classes(virtual=True)
        inst = machine.static_object(grad, "g")
        construct(machine, grad, inst.address)
        result = machine.virtual_call(inst.as_type(student), "getInfo")
        assert "GradStudent" in result.return_value

    def test_student_get_info(self, machine):
        student, _ = make_student_classes(virtual=True)
        inst = machine.static_object(student, "s")
        construct(machine, student, inst.address, 3.1, 2010, 1)
        result = machine.virtual_call(inst, "getInfo")
        assert "3.1" in result.return_value


class TestMobilePlayer:
    def test_layout(self, machine):
        student, _ = make_student_classes()
        player = make_mobile_player(student)
        layout = machine.layouts.layout_of(player)
        assert layout.slot("stud1").offset == 0
        assert layout.slot("stud2").offset == 16
        assert layout.slot("n").offset == 32

    def test_ctor_zeroes_counter(self, machine):
        student, _ = make_student_classes()
        player_cls = make_mobile_player(student)
        inst = machine.static_object(player_cls, "p")
        machine.space.write_int(inst.field_address("n"), 99)
        construct(machine, player_cls, inst.address)
        assert inst.get("n") == 0


class TestSomeclass:
    def test_size_scales_with_payload(self, machine):
        small = make_someclass(2)
        big = make_someclass(16)
        assert machine.sizeof(small) == 8
        assert machine.sizeof(big) == 64

    def test_copy_construction_replicates_extent(self, machine):
        big = make_someclass(4)
        a = machine.static_object(big, "a")
        construct(machine, big, a.address, 1, 2, 3, 4)
        b = machine.static_object(big, "b")
        construct(machine, big, b.address, a)
        assert [b.get_element("payload", i) for i in range(4)] == [1, 2, 3, 4]


class TestCorpusMetadata:
    def test_corpus_partitions(self):
        assert len(PLACEMENT_CORPUS) == 15
        assert len(SAFE_CORPUS) == 2
        assert len(CLASSIC_CORPUS) == 3
        assert len(FULL_CORPUS) == 20

    def test_keys_unique(self):
        keys = [p.key for p in FULL_CORPUS]
        assert len(keys) == len(set(keys))

    def test_placement_corpus_expects_pn_rules(self):
        for program in PLACEMENT_CORPUS:
            assert program.expected_rules
            assert all(rule.startswith("PN-") for rule in program.expected_rules)

    def test_classic_corpus_marked_vulnerable(self):
        assert all(p.classic_vulnerable for p in CLASSIC_CORPUS)
        assert not any(p.classic_vulnerable for p in PLACEMENT_CORPUS)

    def test_every_program_cites_the_paper(self):
        for program in FULL_CORPUS:
            assert program.paper_ref

"""Job identity and result-cache behavior (repro.service)."""

import json

from repro.service import (
    AnalyzeJob,
    AttackJob,
    ExecJob,
    MatrixJob,
    ResultCache,
    default_cache_version,
)


class TestJobKeys:
    def test_same_payload_same_key(self):
        a = AnalyzeJob(source="void f() {}", label="x")
        b = AnalyzeJob(source="void f() {}", label="x")
        assert a.key() == b.key()

    def test_key_distinguishes_payload_fields(self):
        base = AnalyzeJob(source="void f() {}")
        assert base.key() != AnalyzeJob(source="void g() {}").key()
        assert base.key() != AnalyzeJob(source="void f() {}", legacy=True).key()

    def test_key_distinguishes_kinds(self):
        assert (
            AttackJob(attack="x").key().split("-")[0]
            != MatrixJob().key().split("-")[0]
        )
        assert AttackJob(attack="x").key().startswith("attack-")

    def test_key_stable_across_field_order(self):
        # keys hash a canonical JSON encoding, not repr() order
        job = AttackJob(attack="heap-overflow", env="stackguard")
        assert job.key() == AttackJob(env="stackguard", attack="heap-overflow").key()

    def test_exec_jobs_not_cacheable(self):
        assert ExecJob(source="int main() { return 0; }").CACHEABLE is False
        assert AnalyzeJob(source="").CACHEABLE is True

    def test_payload_is_jsonable(self):
        payload = MatrixJob(attacks=("a", "b")).payload()
        assert json.loads(json.dumps(payload)) == {
            "attacks": ["a", "b"],
            "defenses": [],
        }


class TestResultCache:
    def test_memory_hit_and_miss_accounting(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        assert 0.0 < cache.hit_rate < 1.0

    def test_disk_persistence_across_instances(self, tmp_path):
        first = ResultCache(directory=str(tmp_path), version="v1")
        first.put("job-abc", {"answer": 42})
        second = ResultCache(directory=str(tmp_path), version="v1")
        assert second.get("job-abc") == {"answer": 42}
        assert second.disk_hits == 1

    def test_version_bump_invalidates(self, tmp_path):
        old = ResultCache(directory=str(tmp_path), version="detector-1")
        old.put("job-abc", {"stale": True})
        bumped = ResultCache(directory=str(tmp_path), version="detector-2")
        assert bumped.get("job-abc") is None
        assert bumped.misses == 1
        # the old version's entry is untouched, just unreachable
        assert ResultCache(directory=str(tmp_path), version="detector-1").get(
            "job-abc"
        ) == {"stale": True}

    def test_lru_eviction_accounting(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        assert cache.get("a") == {"n": 1}  # refresh a; b is now LRU
        cache.put("c", {"n": 3})
        assert cache.evictions == 1
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == {"n": 1}

    def test_default_version_tracks_detector(self):
        from repro import __version__
        from repro.analysis import DETECTOR_VERSION

        version = default_cache_version()
        assert __version__ in version
        assert DETECTOR_VERSION in version

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), version="v1")
        cache.put("job-abc", {"fine": True})
        path = tmp_path / "v1" / "job-abc.json"
        path.write_text("{not json")
        fresh = ResultCache(directory=str(tmp_path), version="v1")
        assert fresh.get("job-abc") is None

    def test_stats_shape(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), version="v9")
        stats = cache.stats()
        assert stats["version"] == "v9"
        assert stats["persistent"] is True
        assert set(stats) >= {
            "hits",
            "misses",
            "evictions",
            "hit_rate",
            "entries",
            "write_errors",
        }


class TestCacheWriteFailures:
    """Disk errors are absorbed and counted, never raised to callers."""

    @staticmethod
    def _unwritable_dir(tmp_path):
        # a regular file where the cache directory should be makes every
        # mkdir fail with an OSError, even when running as root
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        return str(blocker / "cache")

    def test_put_swallows_oserror_and_counts_it(self, tmp_path):
        cache = ResultCache(directory=self._unwritable_dir(tmp_path), version="v1")
        assert cache.put("job-abc", {"answer": 42}) is False  # no raise
        assert cache.write_errors == 1
        # the in-memory tier still holds the value
        assert cache.get("job-abc") == {"answer": 42}
        assert cache.stats()["write_errors"] == 1

    def test_concurrent_get_put_stress_on_unwritable_directory(self, tmp_path):
        import threading

        # capacity must cover all 8*10 distinct keys: with a smaller LRU a
        # concurrent put can evict a key between its owner's put and get,
        # and this test is about OSError absorption, not eviction races
        cache = ResultCache(
            directory=self._unwritable_dir(tmp_path), version="v1", max_entries=128
        )
        errors = []
        barrier = threading.Barrier(8)

        def hammer(worker: int) -> None:
            try:
                barrier.wait(timeout=5)
                for index in range(50):
                    key = f"job-{worker}-{index % 10}"
                    cache.put(key, {"worker": worker, "index": index})
                    value = cache.get(key)
                    assert value is not None and value["worker"] == worker
            except Exception as error:  # noqa: BLE001 - recorded for assert
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert cache.write_errors == 8 * 50  # every disk write failed, quietly
        assert cache.stores == 8 * 50

    def test_put_swallows_unserializable_value_and_counts_it(self, tmp_path):
        """json.dumps must run inside the guarded region: a worker result
        that is not JSON-able is a write error, never an exception out of
        a job that already succeeded."""
        cache = ResultCache(directory=str(tmp_path), version="v1")
        poison = {"handle": object(), "ok": True}  # not JSON-serializable
        assert cache.put("job-poison", poison) is False  # no raise
        assert cache.write_errors == 1
        # the in-memory tier still serves the value
        assert cache.get("job-poison") is poison
        # nothing half-written reached the disk tier
        assert not list((tmp_path / "v1").glob("*"))

    def test_unserializable_result_keeps_job_succeeded(self, tmp_path):
        """End to end through the scheduler: a cacheable job whose worker
        returns a non-JSON-able dict completes SUCCEEDED with the cache
        counting the write error."""
        from dataclasses import dataclass

        from repro.service import (
            Job,
            JobStatus,
            MetricsRegistry,
            Scheduler,
            WorkerPool,
            register_worker,
        )

        @dataclass(frozen=True)
        class PoisonJob(Job):
            token: str = ""

            KIND = "test-poison"

        register_worker(
            "test-poison", lambda payload: {"handle": object(), "ok": True}
        )
        cache = ResultCache(directory=str(tmp_path), version="v1")
        with Scheduler(
            pool=WorkerPool(max_workers=2), cache=cache, metrics=MetricsRegistry()
        ) as scheduler:
            outcome = scheduler.submit(PoisonJob(token="x")).outcome(timeout=10)
            assert outcome.status is JobStatus.SUCCEEDED
            assert outcome.result["ok"] is True
            assert cache.write_errors == 1

    def test_concurrent_writers_same_key_keep_entry_parseable(self, tmp_path):
        import json as json_module
        import threading

        cache = ResultCache(directory=str(tmp_path), version="v1")
        barrier = threading.Barrier(6)

        def write(worker: int) -> None:
            barrier.wait(timeout=5)
            for _ in range(20):
                cache.put("shared", {"worker": worker})

        threads = [
            threading.Thread(target=write, args=(worker,)) for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert cache.write_errors == 0
        # per-writer tmp files + atomic replace: the entry is whole JSON
        on_disk = json_module.loads((tmp_path / "v1" / "shared.json").read_text())
        assert on_disk in [{"worker": worker} for worker in range(6)]
        assert not list((tmp_path / "v1").glob("*.tmp"))

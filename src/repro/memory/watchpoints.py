"""Debugger-style watchpoints over the simulated address space.

The paper's narrative is full of "X overwrites Y" claims; watchpoints
let tests and investigations observe exactly which write clobbered a
victim range, in order, with the bytes involved — the tooling a
researcher would use to validate the attacks on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ApiMisuseError
from .address_space import AddressSpace


@dataclass(frozen=True)
class WatchHit:
    """One observed access overlapping a watched range."""

    watch_label: str
    address: int
    data: bytes
    is_write: bool
    sequence: int

    def describe(self) -> str:
        kind = "write" if self.is_write else "read"
        preview = self.data[:8].hex()
        return (
            f"#{self.sequence} {kind} of {len(self.data)}B at "
            f"{self.address:#010x} hits '{self.watch_label}' (data {preview})"
        )


@dataclass
class _Watch:
    label: str
    start: int
    end: int
    on_write: bool
    on_read: bool


class WatchpointManager:
    """Registers ranges and records every overlapping access."""

    def __init__(self, space: AddressSpace) -> None:
        self._space = space
        self._watches: list[_Watch] = []
        self._hits: list[WatchHit] = []
        self._sequence = 0
        self._armed = False

    def watch(
        self,
        label: str,
        address: int,
        length: int,
        on_write: bool = True,
        on_read: bool = False,
    ) -> None:
        """Watch ``[address, address+length)``."""
        if length <= 0:
            raise ApiMisuseError(f"watch length must be positive, got {length}")
        self._watches.append(
            _Watch(
                label=label,
                start=address,
                end=address + length,
                on_write=on_write,
                on_read=on_read,
            )
        )
        self.arm()

    def unwatch(self, label: str) -> None:
        """Remove every watch with ``label``."""
        self._watches = [w for w in self._watches if w.label != label]

    def arm(self) -> None:
        """Attach to the address space (idempotent)."""
        if not self._armed:
            self._space.add_access_hook(self._on_access)
            self._armed = True

    def disarm(self) -> None:
        """Detach from the address space."""
        if self._armed:
            self._space.remove_access_hook(self._on_access)
            self._armed = False

    def _on_access(self, address: int, data: bytes, is_write: bool) -> None:
        self._sequence += 1
        end = address + len(data)
        for watch in self._watches:
            wanted = watch.on_write if is_write else watch.on_read
            if not wanted:
                continue
            if address < watch.end and end > watch.start:
                self._hits.append(
                    WatchHit(
                        watch_label=watch.label,
                        address=address,
                        data=bytes(data),
                        is_write=is_write,
                        sequence=self._sequence,
                    )
                )

    @property
    def hits(self) -> tuple[WatchHit, ...]:
        """All recorded hits, in access order."""
        return tuple(self._hits)

    def hits_for(self, label: str) -> tuple[WatchHit, ...]:
        """Hits on one watch."""
        return tuple(h for h in self._hits if h.watch_label == label)

    def first_writer(self, label: str) -> Optional[WatchHit]:
        """The first write that touched the watched range."""
        for hit in self._hits:
            if hit.watch_label == label and hit.is_write:
                return hit
        return None

    def clear(self) -> None:
        """Forget recorded hits (watches stay)."""
        self._hits.clear()

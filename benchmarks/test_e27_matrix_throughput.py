"""E27 — modern-mitigation sweep throughput: cells per second.

The repro-matrix sweep multiplies both axes of E14 (gallery + seed
programs + regression bundles × the ten-defense roster), so its cell
rate is the composite cost of one fully-armed defended execution:
fresh machine, armed mitigation hooks (shadow stack, VRT, tag map),
interpretation, oracle probes.  This experiment records ``cells_per_s``
for the sequential reference and the service-fanned path as
``extra_info`` so the BENCH trajectory catches a hook that quietly
turns every memory access into a table scan.
"""

import os
import time

from conftest import print_table

from repro.matrix import attack_rows, canonical_report_json, run_sweep, seed_rows
from repro.service import ServiceEngine

#: Enough rows to amortize setup, small enough for CI: eight gallery
#: attacks plus every seed program, under the modern-mitigation columns.
DEFENSES = ("none", "checked-placement", "shadow-ret-stack", "vrt", "memory-tagging")

_CORES = os.cpu_count() or 1


def _rows():
    return attack_rows()[:8] + seed_rows()


def test_e27_sequential_cell_rate(benchmark):
    """Throughput of the in-process cell evaluator."""
    rows = _rows()
    cells = len(rows) * len(DEFENSES)

    report = benchmark.pedantic(
        run_sweep, kwargs={"rows": rows, "defenses": DEFENSES}, rounds=1
    )

    elapsed = benchmark.stats.stats.mean
    cells_per_s = cells / elapsed if elapsed else 0.0
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["cells_per_s"] = round(cells_per_s, 2)
    print_table(
        f"E27 sequential sweep ({len(rows)} rows x {len(DEFENSES)} defenses)",
        ["metric", "value"],
        [
            ["cells", str(cells)],
            ["cells/sec", f"{cells_per_s:.1f}"],
            ["attack rows winning (none)", str(report["attacks_succeeding"]["none"])],
            ["attack rows winning (vrt)", str(report["attacks_succeeding"]["vrt"])],
        ],
    )
    assert report["attacks_succeeding"]["vrt"] < report["attacks_succeeding"]["none"]


def test_e27_fanned_sweep_byte_identical_and_counted():
    """The fanned path must keep the workers busy without costing
    determinism: byte-identical to sequential, and the cell rate is
    recorded for both paths side by side."""
    rows = _rows()
    cells = len(rows) * len(DEFENSES)

    started = time.perf_counter()
    sequential = run_sweep(rows=rows, defenses=DEFENSES)
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    with ServiceEngine(workers=4, use_cache=False) as engine:
        fanned = engine.matrix_sweep(rows=rows, defenses=DEFENSES)
    fanned_s = time.perf_counter() - started

    assert canonical_report_json(fanned) == canonical_report_json(sequential)

    print_table(
        f"E27 sweep scaling ({cells} cells, {_CORES} cores)",
        ["path", "elapsed (s)", "cells/s"],
        [
            ["sequential", f"{sequential_s:.2f}", f"{cells / sequential_s:.1f}"],
            ["4 workers", f"{fanned_s:.2f}", f"{cells / fanned_s:.1f}"],
        ],
    )

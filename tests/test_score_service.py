"""Tests for ServiceEngine.score_corpus and the score.* metrics."""

from repro.score import demo_graph, score_graph
from repro.service import ServiceEngine
from repro.service.jobs import ScoreJob
from repro.service.metrics import render_prometheus


class TestScoreCorpus:
    def test_parallel_report_matches_sequential(self):
        sequential = score_graph(demo_graph()).to_json()
        with ServiceEngine(workers=4) as engine:
            parallel = engine.score_corpus(demo_graph()).to_json()
        assert parallel == sequential

    def test_worker_count_does_not_change_bytes(self):
        with ServiceEngine(workers=1) as engine:
            one = engine.score_corpus(demo_graph()).to_json()
        with ServiceEngine(workers=4) as engine:
            four = engine.score_corpus(demo_graph()).to_json()
        assert one == four

    def test_accepts_directory_path(self, tmp_path):
        from repro.score import DEMO_PACKAGES, render_package_source

        for package in DEMO_PACKAGES:
            (tmp_path / f"{package.name}.cpp").write_text(
                render_package_source(package)
            )
        with ServiceEngine(workers=2) as engine:
            score = engine.score_corpus(str(tmp_path))
        assert score.to_json() == score_graph(demo_graph()).to_json()

    def test_custom_attenuation_is_applied(self):
        with ServiceEngine(workers=2) as engine:
            score = engine.score_corpus(demo_graph(), attenuation=0.0)
        assert score.entry("core-pool").blast_radius == 5.0


class TestScoreJob:
    def test_key_tracks_registry_fingerprint(self):
        base = ScoreJob(source="void f() {}\n", label="a", registry="aaa")
        same = ScoreJob(source="void f() {}\n", label="a", registry="aaa")
        bumped = ScoreJob(source="void f() {}\n", label="a", registry="bbb")
        assert base.key() == same.key()
        assert base.key() != bumped.key()

    def test_job_is_cacheable(self):
        assert ScoreJob.CACHEABLE
        assert ScoreJob.KIND == "score"


class TestScoreMetrics:
    def test_score_families_reach_prometheus(self):
        with ServiceEngine(workers=2) as engine:
            engine.score_corpus(demo_graph())
            text = render_prometheus(engine.metrics_snapshot())
        assert "# TYPE repro_score_packages_scored_total counter" in text
        assert "repro_score_packages_scored_total 7" in text
        assert "repro_score_risks_found_total 3" in text
        assert "repro_score_flawed_packages 2" in text
        assert "repro_score_max_blast_radius 15" in text

    def test_score_families_reach_json_snapshot(self):
        with ServiceEngine(workers=2) as engine:
            engine.score_corpus(demo_graph())
            snapshot = engine.metrics_snapshot()
        assert snapshot["counters"]["score.packages_scored"] == 7
        assert snapshot["gauges"]["score.flawed_packages"] == 2

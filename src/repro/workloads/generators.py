"""Randomized MiniC++ program generation for analyzer stress-testing.

The hand-written corpus pins down the paper's listings; the generator
produces *families* of placement-new programs with known ground truth —
random class shapes, random arena/placement pairings, optionally wrapped
in helper functions or guarded by the §5.1 ``sizeof`` idiom.  Tests
measure the detector's precision/recall over hundreds of generated
programs, and the benchmarks measure its throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..cxx import make_class
from ..cxx.layout import LayoutEngine
from ..cxx.types import CHAR, DOUBLE, FLOAT, INT, SHORT

_SCALARS = ("int", "double", "char", "short", "float")

#: Scalar name → the object model's CType (sizes come from the real
#: layout engine, never from a hand-maintained mirror).
_CTYPES = {"int": INT, "double": DOUBLE, "char": CHAR, "short": SHORT, "float": FLOAT}

#: Shapes drawn by default (the classic overflow families whose ground
#: truth is "does the placement overflow the arena").
CLASSIC_SHAPES = ("direct", "helper", "guarded", "tainted-array")

#: Every shape the generator knows, including the families whose ground
#: truth needs a leak or timeout oracle rather than the placement audit
#: log ("leak" = Listings 21–22 arena-reuse info leak, "dos-loop" =
#: §4.4 loop-bound DoS, "taint-source" = CAPEC-10-style env/argv/stream
#: input plumbing into a placement count).  The differential fuzzer
#: seeds from all of these; ``generate_program`` keeps drawing only
#: CLASSIC_SHAPES by default so overflow-oracle callers are unaffected.
ALL_SHAPES = CLASSIC_SHAPES + ("leak", "dos-loop", "taint-source")

#: Shapes drawn by ``generate_package_corpus``.  Frozen at the PR-6 set:
#: the committed ``corpus/packages/`` rendering pins the exact
#: ``rng.choice`` draws at seed 2026, so appending to this tuple would
#: silently rewrite the committed corpus.  Extend ALL_SHAPES instead;
#: widen this only together with a corpus regeneration.
PACKAGE_SHAPES = CLASSIC_SHAPES + ("leak", "dos-loop")

#: Shared, identity-checked layout cache (cheap; never stale).
_ENGINE = LayoutEngine()


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated program with its ground truth."""

    source: str
    vulnerable: bool
    arena_size: int
    placed_size: int
    shape: str  # one of ALL_SHAPES
    stdin: tuple = ()  # suggested attacker input that exercises the bug

    @property
    def oversize(self) -> int:
        return max(self.placed_size - self.arena_size, 0)


def _make_classes(base_fields: list, extra_fields: list):
    """The (base, derived) ClassDefs for a generated Small/Big pair."""
    base = make_class(
        "Small",
        fields=[(f"f{i}", _CTYPES[t]) for i, t in enumerate(base_fields)],
    )
    derived = make_class(
        "Big",
        fields=[(f"g{i}", _CTYPES[t]) for i, t in enumerate(extra_fields)],
        bases=(base,),
    )
    return base, derived


def _layout_size(fields: list) -> int:
    """Size of a standalone class with these members, computed by the
    real layout engine — generated ground truth cannot drift from the
    object model."""
    base, _ = _make_classes(fields, [])
    return _ENGINE.layout_of(base).size


def _derived_size(base_fields: list, extra_fields: list) -> int:
    """Size of the derived class, by the same engine that lays out the
    simulated objects (padded base subobject first, then new members)."""
    _, derived = _make_classes(base_fields, extra_fields)
    return _ENGINE.layout_of(derived).size


def _class_decl(name: str, fields: list) -> str:
    members = " ".join(
        f"{type_name} f{i};" for i, type_name in enumerate(fields)
    )
    return f"class {name} {{ public: {members} }};"


def _random_fields(rng: random.Random, count: int) -> list:
    return [rng.choice(_SCALARS) for _ in range(count)]


def generate_program(
    rng: random.Random, vulnerable: bool, shape: str | None = None
) -> GeneratedProgram:
    """Generate one program whose vulnerability status is known.

    ``shape`` picks the structural family; by default one of
    CLASSIC_SHAPES is drawn at random (ask for "leak" or "dos-loop"
    explicitly — their ground truth is a leak/timeout, not an
    overflow).  ``vulnerable=True`` guarantees the labeled bug is
    reachable at runtime; ``vulnerable=False`` guarantees it is not
    (fits, guarded, sanitized, or bounded).
    """
    chosen = shape or rng.choice(CLASSIC_SHAPES)
    if chosen == "tainted-array":
        return _tainted_array_program(rng, vulnerable)
    if chosen == "leak":
        return _leak_program(rng, vulnerable)
    if chosen == "dos-loop":
        return _dos_loop_program(rng, vulnerable)
    if chosen == "taint-source":
        return _taint_source_program(rng, vulnerable)
    # Build two classes whose relative sizes encode the ground truth.
    small_fields = _random_fields(rng, rng.randint(1, 4))
    extra_fields = _random_fields(rng, rng.randint(1, 4))
    small_size = _layout_size(small_fields)
    big_size = _derived_size(small_fields, extra_fields)
    while big_size <= small_size:
        extra_fields.append(rng.choice(("int", "double")))
        big_size = _derived_size(small_fields, extra_fields)

    classes = (
        _class_decl("Small", small_fields)
        + "\n"
        + f"class Big : public Small {{ public: "
        + " ".join(f"{t} g{i};" for i, t in enumerate(extra_fields))
        + " };"
    )
    if vulnerable:
        arena_type, placed_type = "Small", "Big"
        arena_size, placed_size = small_size, big_size
    else:
        arena_type, placed_type = "Big", "Small"
        arena_size, placed_size = big_size, small_size

    if chosen == "direct":
        body = (
            f"void run() {{\n  {arena_type} arena;\n"
            f"  {placed_type} *p = new (&arena) {placed_type}();\n}}\n"
        )
    elif chosen == "helper":
        body = (
            f"{placed_type} *helper({arena_type} *where) {{\n"
            f"  {placed_type} *p = new (where) {placed_type}();\n"
            f"  return p;\n}}\n"
            f"void run() {{\n  {arena_type} arena;\n"
            f"  {placed_type} *p = helper(&arena);\n}}\n"
        )
    elif chosen == "guarded":
        if vulnerable:
            # A guard that does NOT protect: it compares the wrong way.
            condition = f"sizeof({placed_type}) >= sizeof({arena_type})"
        else:
            condition = f"sizeof({placed_type}) <= sizeof({arena_type})"
        body = (
            f"void run() {{\n  {arena_type} arena;\n"
            f"  if ({condition}) {{\n"
            f"    {placed_type} *p = new (&arena) {placed_type}();\n"
            f"  }}\n}}\n"
        )
    else:  # pragma: no cover - exhaustive
        raise ValueError(chosen)
    return GeneratedProgram(
        source=classes + "\n" + body,
        vulnerable=vulnerable,
        arena_size=arena_size,
        placed_size=placed_size,
        shape=chosen,
    )


def _tainted_array_program(
    rng: random.Random, vulnerable: bool
) -> GeneratedProgram:
    pool = rng.choice((32, 64, 128, 256))
    if vulnerable:
        body = (
            f"char pool[{pool}];\n"
            "void run() {\n  int n = 0;\n  cin >> n;\n"
            "  char *buf = new (pool) char[n];\n}\n"
        )
        placed = pool + 1  # unknown at compile time; attacker-sized
        return GeneratedProgram(
            source=body,
            vulnerable=True,
            arena_size=pool,
            placed_size=placed,
            shape="tainted-array",
            stdin=(pool + 16,),
        )
    constant = rng.randint(1, pool)
    body = (
        f"char pool[{pool}];\n"
        "void run() {\n"
        f"  char *buf = new (pool) char[{constant}];\n}}\n"
    )
    return GeneratedProgram(
        source=body,
        vulnerable=False,
        arena_size=pool,
        placed_size=constant,
        shape="tainted-array",
    )


def _taint_source_program(
    rng: random.Random, vulnerable: bool
) -> GeneratedProgram:
    """CAPEC-10 family: the placement count arrives through realistic
    input plumbing — an environment variable (``getenv`` + ``atoi``),
    the program's ``argc``, or a stream read routed through a helper —
    instead of a bare ``cin >> n``.  The vulnerable twins size the
    placement from the attacker-controlled value; the safe twins run
    the same plumbing but place a compile-time-constant count."""
    variant = rng.choice(("env", "argv", "stream"))
    if variant == "env":
        pool = rng.choice((16, 32, 64, 128))
        if vulnerable:
            body = (
                f"char pool[{pool}];\n"
                "void run() {\n"
                '  char *raw = getenv("PAYLOAD_LIMIT");\n'
                "  int n = atoi(raw);\n"
                "  char *buf = new (pool) char[n];\n}\n"
            )
            return GeneratedProgram(
                source=body,
                vulnerable=True,
                arena_size=pool,
                placed_size=pool + 1,  # attacker-sized via the env var
                shape="taint-source",
                stdin=(pool + 16,),
            )
        constant = rng.randint(1, pool)
        body = (
            f"char pool[{pool}];\n"
            "void run() {\n"
            '  char *raw = getenv("PAYLOAD_LIMIT");\n'
            "  int n = atoi(raw);\n"
            f"  char *buf = new (pool) char[{constant}];\n}}\n"
        )
        return GeneratedProgram(
            source=body,
            vulnerable=False,
            arena_size=pool,
            placed_size=constant,
            shape="taint-source",
            stdin=(2,),  # the plumbing still consumes one token
        )
    if variant == "argv":
        # The entry planner feeds scalar int parameters the constant 7,
        # standing in for an attacker-chosen argc.
        if vulnerable:
            pool = rng.choice((2, 4))
            body = (
                f"char pool[{pool}];\n"
                "void run(int argc) {\n"
                "  char *buf = new (pool) char[argc];\n}\n"
            )
            return GeneratedProgram(
                source=body,
                vulnerable=True,
                arena_size=pool,
                placed_size=7,  # the planner's scalar-int argument
                shape="taint-source",
            )
        pool = rng.choice((16, 32))
        constant = rng.randint(1, 8)
        body = (
            f"char pool[{pool}];\n"
            "void run(int argc) {\n"
            "  int copies = argc;\n"
            f"  char *buf = new (pool) char[{constant}];\n}}\n"
        )
        return GeneratedProgram(
            source=body,
            vulnerable=False,
            arena_size=pool,
            placed_size=constant,
            shape="taint-source",
        )
    # "stream": the tainted read is laundered through a helper call so
    # the taint must survive argument passing, not just a local cin.
    pool = rng.choice((16, 32, 64, 128))
    helper = (
        "int throttle(int raw) {\n  return raw;\n}\n"
    )
    if vulnerable:
        body = (
            f"char pool[{pool}];\n" + helper +
            "void run() {\n  int raw = 0;\n  cin >> raw;\n"
            "  int n = throttle(raw);\n"
            "  char *buf = new (pool) char[n];\n}\n"
        )
        return GeneratedProgram(
            source=body,
            vulnerable=True,
            arena_size=pool,
            placed_size=pool + 1,
            shape="taint-source",
            stdin=(pool + 16,),
        )
    constant = rng.randint(1, pool)
    body = (
        f"char pool[{pool}];\n" + helper +
        "void run() {\n  int raw = 0;\n  cin >> raw;\n"
        "  int n = throttle(raw);\n"
        f"  char *buf = new (pool) char[{constant}];\n}}\n"
    )
    return GeneratedProgram(
        source=body,
        vulnerable=False,
        arena_size=pool,
        placed_size=constant,
        shape="taint-source",
        stdin=(3,),
    )


def _leak_program(rng: random.Random, vulnerable: bool) -> GeneratedProgram:
    """Listing 21/22 family: a filled arena is re-used by a placement
    new and flows to an output sink; the safe twin sanitizes first."""
    pool = rng.choice((64, 128, 256))
    sanitize = "" if vulnerable else f"  memset(pool, 0, {pool});\n"
    body = (
        f"char pool[{pool}];\n"
        "void run() {\n"
        f'  readFile("/etc/passwd", pool, {pool});\n'
        + sanitize
        + f"  char *userdata = new (pool) char[{pool}];\n"
        "  store(userdata);\n"
        "}\n"
    )
    return GeneratedProgram(
        source=body,
        vulnerable=vulnerable,
        arena_size=pool,
        placed_size=pool,  # the placement fits; the bug is the residue
        shape="leak",
    )


def _dos_loop_program(rng: random.Random, vulnerable: bool) -> GeneratedProgram:
    """§4.4 family: the attacker writes a loop bound through a field
    that lies beyond the arena (vulnerable) or inside it but capped
    (safe); a huge bound spins the process past its step budget."""
    classes = (
        "class Tiny { public: int f0; };\n"
        "class Wide : public Tiny { public: int g0; int g1; };\n"
    )
    tiny_size = _layout_size(["int"])
    wide_size = _derived_size(["int"], ["int", "int"])
    bound = rng.choice((1 << 20, 1 << 24, 1 << 28))
    if vulnerable:
        body = (
            "void run() {\n"
            "  Tiny arena;\n"
            "  Wide *p = new (&arena) Wide();\n"
            "  cin >> p->g1;\n"
            "  int i = 0;\n"
            "  while (i < p->g1) {\n"
            "    i = i + 1;\n"
            "  }\n"
            "}\n"
        )
        arena_size, placed_size = tiny_size, wide_size
    else:
        body = (
            "void run() {\n"
            "  Wide arena;\n"
            "  Tiny *p = new (&arena) Tiny();\n"
            "  cin >> p->f0;\n"
            "  int i = 0;\n"
            "  while (i < p->f0 && i < 8) {\n"
            "    i = i + 1;\n"
            "  }\n"
            "}\n"
        )
        arena_size, placed_size = wide_size, tiny_size
    return GeneratedProgram(
        source=classes + body,
        vulnerable=vulnerable,
        arena_size=arena_size,
        placed_size=placed_size,
        shape="dos-loop",
        stdin=(bound,),
    )


def generate_corpus(
    seed: int, count: int, vulnerable_ratio: float = 0.5
) -> list:
    """A reproducible batch of generated programs."""
    rng = random.Random(seed)
    programs = []
    for index in range(count):
        vulnerable = rng.random() < vulnerable_ratio
        programs.append(generate_program(rng, vulnerable))
    return programs


def generate_package_corpus(seed: int, count: int) -> list:
    """A reproducible multi-package corpus for dependency scoring.

    Returns ``(name, imports, source)`` tuples.  Each package wraps one
    generated program (~35% vulnerable, drawn from every shape family)
    and imports a random subset of *earlier* packages, so the declared
    graph is a DAG by construction.  ``repro.score`` turns these into a
    :class:`~repro.score.PackageGraph`; ``corpus/packages/`` ships the
    rendering of seed 2026.
    """
    rng = random.Random(seed)
    packages = []
    names: list = []
    for index in range(count):
        vulnerable = rng.random() < 0.35
        shape = rng.choice(PACKAGE_SHAPES)
        program = generate_program(rng, vulnerable, shape)
        name = f"pkg-{index:02d}-{shape}"
        fanin = min(len(names), rng.randint(0, 3))
        imports = tuple(sorted(rng.sample(names, fanin))) if fanin else ()
        packages.append((name, imports, program.source))
        names.append(name)
    return packages


@dataclass(frozen=True)
class DetectorScore:
    """Precision/recall of one analyzer over a generated batch."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0


def score_detector(programs: list, flagger) -> DetectorScore:
    """Score ``flagger(source) -> bool`` against the ground truth."""
    tp = fp = tn = fn = 0
    for program in programs:
        flagged = flagger(program.source)
        if program.vulnerable and flagged:
            tp += 1
        elif program.vulnerable:
            fn += 1
        elif flagged:
            fp += 1
        else:
            tn += 1
    return DetectorScore(
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
    )

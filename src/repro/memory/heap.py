"""A dlmalloc-style free-list heap allocator for the simulated process.

``operator new`` without placement (Section 2 of the paper) bottoms out
here.  The allocator implements the classic boundary-tag design: each
block carries an 8-byte header (size + status) written *into simulated
memory*, blocks are split on allocation and coalesced with free
neighbours on free.  Keeping the metadata in-band matters: heap overflows
(Listing 12) clobber real allocator state, exactly as on glibc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import ApiMisuseError, DoubleFree, InvalidFree, OutOfMemory
from .address_space import AddressSpace
from .alignment import align_up
from .segments import SegmentKind

HEADER_SIZE = 8
#: Minimum payload so a freed block can always rejoin the free list.
MIN_PAYLOAD = 8
#: All payloads are 8-aligned, matching glibc's 2*sizeof(size_t) on i386.
PAYLOAD_ALIGNMENT = 8

_MAGIC_ALLOCATED = 0xA110C8ED
_MAGIC_FREE = 0xF4EEF4EE


@dataclass(frozen=True)
class BlockInfo:
    """Descriptor of one heap block, as read back from simulated memory."""

    header_address: int
    payload_address: int
    payload_size: int
    allocated: bool
    corrupted: bool = False

    @property
    def total_size(self) -> int:
        """Header plus payload."""
        return HEADER_SIZE + self.payload_size


class HeapAllocator:
    """First-fit free-list allocator with boundary tags and coalescing."""

    def __init__(self, space: AddressSpace) -> None:
        self._space = space
        segment = space.segment(SegmentKind.HEAP)
        self._base = segment.base
        self._end = segment.end
        # One giant free block spanning the whole segment.
        self._write_header(self._base, segment.size - HEADER_SIZE, allocated=False)
        self._allocated_payloads: set[int] = set()
        self._bytes_in_use = 0
        self._allocation_count = 0
        self._free_count = 0

    # -- header helpers ------------------------------------------------------

    def _write_header(self, header_addr: int, payload_size: int, allocated: bool) -> None:
        magic = _MAGIC_ALLOCATED if allocated else _MAGIC_FREE
        self._space.write_int(header_addr, payload_size, width=4, signed=False)
        self._space.write_int(header_addr + 4, magic, width=4, signed=False)

    def _read_header(self, header_addr: int) -> BlockInfo:
        payload_size = self._space.read_int(header_addr, width=4, signed=False)
        magic = self._space.read_int(header_addr + 4, width=4, signed=False)
        allocated = magic == _MAGIC_ALLOCATED
        corrupted = magic not in (_MAGIC_ALLOCATED, _MAGIC_FREE)
        return BlockInfo(
            header_address=header_addr,
            payload_address=header_addr + HEADER_SIZE,
            payload_size=payload_size,
            allocated=allocated,
            corrupted=corrupted,
        )

    def blocks(self) -> Iterator[BlockInfo]:
        """Walk the heap from the first block; stops at corruption.

        A heap overflow that tramples a header truncates this walk — the
        same way ``malloc_consolidate`` crashes a real process.
        """
        cursor = self._base
        while cursor + HEADER_SIZE <= self._end:
            info = self._read_header(cursor)
            if info.corrupted:
                yield info
                return
            yield info
            step = info.total_size
            if step <= 0 or cursor + step > self._end:
                return
            cursor += step

    # -- allocation api --------------------------------------------------------

    def allocate(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the payload address.

        Raises :class:`OutOfMemory` when no free block fits — the
        allocation failure placement-new users are trying to avoid
        (paper Section 1, advantage 2).
        """
        if size <= 0:
            raise ApiMisuseError(f"allocation size must be positive, got {size}")
        needed = align_up(max(size, MIN_PAYLOAD), PAYLOAD_ALIGNMENT)
        for block in self.blocks():
            if block.corrupted:
                break
            if block.allocated or block.payload_size < needed:
                continue
            self._carve(block, needed)
            self._allocated_payloads.add(block.payload_address)
            self._bytes_in_use += needed
            self._allocation_count += 1
            return block.payload_address
        raise OutOfMemory(f"heap cannot satisfy allocation of {size} bytes")

    def _carve(self, block: BlockInfo, needed: int) -> None:
        remainder = block.payload_size - needed
        if remainder >= HEADER_SIZE + MIN_PAYLOAD:
            # Split: new free block after the carved allocation.
            self._write_header(block.header_address, needed, allocated=True)
            tail_header = block.payload_address + needed
            self._write_header(
                tail_header, remainder - HEADER_SIZE, allocated=False
            )
        else:
            # Too small to split; hand over the whole block.
            self._write_header(
                block.header_address, block.payload_size, allocated=True
            )

    def free(self, payload_address: int) -> None:
        """Free a block previously returned by :meth:`allocate`.

        Detects double frees and wild frees by consulting both the
        in-band header and the allocator's own bookkeeping.
        """
        header_addr = payload_address - HEADER_SIZE
        if not self._space.is_mapped(header_addr, HEADER_SIZE):
            raise InvalidFree(payload_address)
        info = self._read_header(header_addr)
        if info.corrupted:
            raise InvalidFree(payload_address)
        if not info.allocated:
            raise DoubleFree(payload_address)
        if payload_address not in self._allocated_payloads:
            raise InvalidFree(payload_address)
        self._allocated_payloads.discard(payload_address)
        self._bytes_in_use -= info.payload_size
        self._free_count += 1
        self._write_header(header_addr, info.payload_size, allocated=False)
        self._coalesce()

    def _coalesce(self) -> None:
        """Merge adjacent free blocks (one full pass)."""
        merged = True
        while merged:
            merged = False
            previous: Optional[BlockInfo] = None
            for block in self.blocks():
                if block.corrupted:
                    return
                if (
                    previous is not None
                    and not previous.allocated
                    and not block.allocated
                ):
                    combined = (
                        previous.payload_size + HEADER_SIZE + block.payload_size
                    )
                    self._write_header(
                        previous.header_address, combined, allocated=False
                    )
                    merged = True
                    break
                previous = block

    # -- introspection -----------------------------------------------------

    @property
    def bytes_in_use(self) -> int:
        """Total payload bytes currently allocated."""
        return self._bytes_in_use

    @property
    def allocation_count(self) -> int:
        """Number of successful :meth:`allocate` calls."""
        return self._allocation_count

    @property
    def free_count(self) -> int:
        """Number of successful :meth:`free` calls."""
        return self._free_count

    def live_blocks(self) -> list[BlockInfo]:
        """Blocks currently allocated (per in-band headers)."""
        return [b for b in self.blocks() if b.allocated and not b.corrupted]

    def largest_free_block(self) -> int:
        """Payload size of the largest free block (0 if none)."""
        sizes = [
            b.payload_size for b in self.blocks() if not b.allocated and not b.corrupted
        ]
        return max(sizes, default=0)

    def is_corrupted(self) -> bool:
        """True if walking the heap encounters a trampled header."""
        return any(block.corrupted for block in self.blocks())

"""Scheduler semantics: priorities, timeouts, retries, drain, caching.

Custom test-only job kinds are registered in the worker registry so the
scheduler's control flow can be exercised without real analysis work
(thread backend only — exactly what these tests use).
"""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.service import (
    AnalyzeJob,
    HIGH_PRIORITY,
    Job,
    JobFailed,
    JobStatus,
    LOW_PRIORITY,
    MetricsRegistry,
    QueueFull,
    ResultCache,
    Scheduler,
    TransientWorkerError,
    WorkerPool,
    register_worker,
)


@dataclass(frozen=True)
class ProbeJob(Job):
    """Test-only job; ``token`` differentiates cache keys."""

    token: str = ""

    KIND = "test-probe"


@dataclass(frozen=True)
class SleepJob(Job):
    duration: float = 0.0
    token: str = ""

    KIND = "test-sleep"


@dataclass(frozen=True)
class FlakyJob(Job):
    token: str = ""

    KIND = "test-flaky"


@pytest.fixture(autouse=True)
def _workers(request):
    """(Re)register the test worker kinds with fresh per-test state."""
    state = {"ran": [], "flaky_failures": 2, "lock": threading.Lock()}

    def probe(payload):
        with state["lock"]:
            state["ran"].append(payload.get("token", ""))
        return {"token": payload.get("token", "")}

    def sleepy(payload):
        time.sleep(payload["duration"])
        return probe(payload)

    def flaky(payload):
        with state["lock"]:
            if state["flaky_failures"] > 0:
                state["flaky_failures"] -= 1
                raise TransientWorkerError("worker lost (simulated)")
        return probe(payload)

    register_worker("test-probe", probe)
    register_worker("test-sleep", sleepy)
    register_worker("test-flaky", flaky)
    if request.cls is not None:
        request.cls.state = state
    yield state


class TestSchedulerBasics:
    state: dict

    def test_submit_and_result(self):
        with Scheduler(pool=WorkerPool(max_workers=2)) as scheduler:
            handle = scheduler.submit(ProbeJob(token="a"))
            assert handle.result(timeout=5) == {"token": "a"}
            outcome = handle.outcome()
            assert outcome.status is JobStatus.SUCCEEDED
            assert outcome.attempts == 1
            assert not outcome.from_cache

    def test_map_preserves_order(self):
        with Scheduler(pool=WorkerPool(max_workers=4)) as scheduler:
            handles = scheduler.map(
                [ProbeJob(token=str(index)) for index in range(16)]
            )
            assert [h.result(timeout=5)["token"] for h in handles] == [
                str(index) for index in range(16)
            ]

    def test_priority_order_with_single_worker(self):
        release = threading.Event()

        def blocker(payload):
            release.wait(timeout=5)
            return {}

        register_worker("test-block", blocker)

        @dataclass(frozen=True)
        class BlockJob(Job):
            KIND = "test-block"

        with Scheduler(pool=WorkerPool(max_workers=1)) as scheduler:
            blocking = scheduler.submit(BlockJob())
            low = scheduler.submit(ProbeJob(token="low"), priority=LOW_PRIORITY)
            high = scheduler.submit(ProbeJob(token="high"), priority=HIGH_PRIORITY)
            release.set()
            low.result(timeout=5)
            high.result(timeout=5)
            blocking.result(timeout=5)
        assert self.state["ran"] == ["high", "low"]

    def test_bounded_queue_rejects_overflow(self):
        release = threading.Event()

        def blocker(payload):
            release.wait(timeout=5)
            return {}

        register_worker("test-block", blocker)

        @dataclass(frozen=True)
        class BlockJob(Job):
            token: str = ""

            KIND = "test-block"

        scheduler = Scheduler(pool=WorkerPool(max_workers=1), max_queue=2)
        try:
            # one job occupies the worker; two fill the queue
            scheduler.submit(BlockJob(token="busy"))
            time.sleep(0.05)  # let the dispatcher pick it up
            scheduler.submit(BlockJob(token="q1"))
            scheduler.submit(BlockJob(token="q2"))
            with pytest.raises(QueueFull):
                scheduler.submit(BlockJob(token="q3"))
        finally:
            release.set()
            scheduler.shutdown()


class TestTimeoutsAndRetries:
    state: dict

    def test_timeout_marks_job_timed_out(self):
        with Scheduler(pool=WorkerPool(max_workers=1)) as scheduler:
            handle = scheduler.submit(SleepJob(duration=5.0), timeout=0.05)
            outcome = handle.outcome(timeout=5)
            assert outcome.status is JobStatus.TIMED_OUT
            assert "0.05" in outcome.error
            with pytest.raises(JobFailed):
                handle.result()

    def test_transient_failures_retry_with_backoff(self):
        naps = []
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            backoff_base=0.05,
            backoff_cap=10.0,
            max_retries=3,
            backoff_jitter=False,
            sleep=naps.append,
        ) as scheduler:
            outcome = scheduler.submit(FlakyJob(token="f")).outcome(timeout=5)
        assert outcome.status is JobStatus.SUCCEEDED
        assert outcome.attempts == 3  # two transient failures, then success
        assert naps == [0.05, 0.1]  # exponential backoff (jitter disabled)

    def test_backoff_respects_cap(self):
        self.state["flaky_failures"] = 3
        naps = []
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            backoff_base=0.05,
            backoff_cap=0.07,
            max_retries=5,
            backoff_jitter=False,
            sleep=naps.append,
        ) as scheduler:
            scheduler.submit(FlakyJob(token="f")).result(timeout=5)
        assert naps == [0.05, 0.07, 0.07]

    def test_jitter_is_deterministic_per_key_and_spread_across_keys(self):
        def delays(token):
            self.state["flaky_failures"] = 2
            naps = []
            with Scheduler(
                pool=WorkerPool(max_workers=1),
                backoff_base=0.05,
                backoff_cap=10.0,
                max_retries=3,
                sleep=naps.append,
            ) as scheduler:
                scheduler.submit(FlakyJob(token=token)).result(timeout=5)
            return naps

        first = delays("alpha")
        assert first == delays("alpha")  # key-seeded: reproducible runs
        assert first != delays("beta")  # different keys break lockstep
        for attempt, delay in enumerate(first, start=1):
            base = 0.05 * 2 ** (attempt - 1)
            assert base * 0.5 <= delay <= base * 1.5

    def test_jitter_never_exceeds_cap(self):
        self.state["flaky_failures"] = 4
        naps = []
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            backoff_base=0.05,
            backoff_cap=0.08,
            max_retries=5,
            sleep=naps.append,
        ) as scheduler:
            scheduler.submit(FlakyJob(token="capped")).result(timeout=5)
        assert len(naps) == 4
        assert all(delay <= 0.08 for delay in naps)

    def test_retries_exhausted_fails(self):
        self.state["flaky_failures"] = 99
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            max_retries=1,
            sleep=lambda _: None,
        ) as scheduler:
            outcome = scheduler.submit(FlakyJob()).outcome(timeout=5)
        assert outcome.status is JobStatus.FAILED
        assert "TransientWorkerError" in outcome.error
        assert outcome.attempts == 2

    def test_worker_exception_fails_without_retry(self):
        def broken(payload):
            raise ValueError("bad payload")

        register_worker("test-broken", broken)

        @dataclass(frozen=True)
        class BrokenJob(Job):
            KIND = "test-broken"

        with Scheduler(pool=WorkerPool(max_workers=1)) as scheduler:
            outcome = scheduler.submit(BrokenJob()).outcome(timeout=5)
        assert outcome.status is JobStatus.FAILED
        assert outcome.attempts == 1
        assert "ValueError" in outcome.error


class TestLifecycleAndCache:
    state: dict

    def test_drain_waits_for_all(self):
        with Scheduler(pool=WorkerPool(max_workers=2)) as scheduler:
            handles = scheduler.map(
                [SleepJob(duration=0.01, token=str(i)) for i in range(8)]
            )
            scheduler.drain()
            assert all(handle.done() for handle in handles)

    def test_shutdown_without_wait_cancels_queued(self):
        release = threading.Event()

        def blocker(payload):
            release.wait(timeout=5)
            return {}

        register_worker("test-block", blocker)

        @dataclass(frozen=True)
        class BlockJob(Job):
            token: str = ""

            KIND = "test-block"

        scheduler = Scheduler(pool=WorkerPool(max_workers=1))
        running = scheduler.submit(BlockJob(token="run"))
        time.sleep(0.05)
        queued = scheduler.submit(BlockJob(token="queued"))
        release.set()
        scheduler.shutdown(wait=False)
        assert queued.outcome(timeout=5).status in (
            JobStatus.CANCELLED,
            JobStatus.SUCCEEDED,  # raced the dispatcher; either is legal
        )
        assert running.outcome(timeout=5).status is JobStatus.SUCCEEDED

    def test_submit_after_shutdown_rejected(self):
        scheduler = Scheduler(pool=WorkerPool(max_workers=1))
        scheduler.shutdown()
        with pytest.raises(RuntimeError):
            scheduler.submit(ProbeJob())

    def test_cache_short_circuits_second_submit(self):
        cache = ResultCache()
        with Scheduler(pool=WorkerPool(max_workers=1), cache=cache) as scheduler:
            first = scheduler.submit(ProbeJob(token="x")).outcome(timeout=5)
            second = scheduler.submit(ProbeJob(token="x")).outcome(timeout=5)
        assert not first.from_cache
        assert second.from_cache
        assert second.result == first.result
        assert self.state["ran"] == ["x"]  # worker ran exactly once

    def test_use_cache_false_bypasses(self):
        cache = ResultCache()
        with Scheduler(pool=WorkerPool(max_workers=1), cache=cache) as scheduler:
            scheduler.submit(ProbeJob(token="x")).result(timeout=5)
            outcome = scheduler.submit(
                ProbeJob(token="x"), use_cache=False
            ).outcome(timeout=5)
        assert not outcome.from_cache
        assert self.state["ran"] == ["x", "x"]

    def test_detector_version_bump_recomputes_analysis(self, tmp_path):
        source = "void f() {}"
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            cache=ResultCache(directory=str(tmp_path), version="d1"),
        ) as scheduler:
            scheduler.submit(AnalyzeJob(source=source)).result(timeout=5)
            warm = scheduler.submit(AnalyzeJob(source=source)).outcome(timeout=5)
            assert warm.from_cache
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            cache=ResultCache(directory=str(tmp_path), version="d2"),
        ) as scheduler:
            bumped = scheduler.submit(AnalyzeJob(source=source)).outcome(timeout=5)
        assert not bumped.from_cache  # version bump invalidated the entry

    def test_metrics_accounting(self):
        metrics = MetricsRegistry()
        cache = ResultCache()
        with Scheduler(
            pool=WorkerPool(max_workers=2), cache=cache, metrics=metrics
        ) as scheduler:
            for _ in range(2):
                scheduler.submit(ProbeJob(token="m")).result(timeout=5)
            scheduler.submit(SleepJob(duration=5.0), timeout=0.05).wait(5)
        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["scheduler.jobs_submitted"] == 3
        assert counters["scheduler.jobs_succeeded"] == 1
        assert counters["scheduler.cache_hits"] == 1
        assert counters["scheduler.jobs_timed_out"] == 1
        assert snapshot["histograms"]["scheduler.job_seconds"]["count"] == 1


class TestAbandonedWorkers:
    """Regression: consecutive timeouts must not starve the pool."""

    state: dict

    def test_consecutive_timeouts_still_let_fresh_jobs_complete(self):
        metrics = MetricsRegistry()
        pool = WorkerPool(max_workers=2)
        with Scheduler(pool=pool, metrics=metrics) as scheduler:
            # four back-to-back timeouts: every original pool slot is
            # held hostage by a sleeping worker at least once
            hung = scheduler.map(
                [SleepJob(duration=1.5, token=f"hang-{i}") for i in range(4)],
                timeout=0.05,
            )
            outcomes = [handle.outcome(timeout=5) for handle in hung]
            assert all(o.status is JobStatus.TIMED_OUT for o in outcomes)
            assert metrics.snapshot()["counters"][
                "scheduler.workers_abandoned_total"
            ] >= 2
            # fresh jobs must still complete promptly on replacements
            fresh = scheduler.map(
                [ProbeJob(token=f"fresh-{i}") for i in range(6)]
            )
            for handle in fresh:
                assert handle.outcome(timeout=5).status is JobStatus.SUCCEEDED
            scheduler.drain()  # must return, not wedge
            # once the stragglers finish, the loaned capacity is repaid
            deadline = time.monotonic() + 5
            while scheduler.abandoned_workers and time.monotonic() < deadline:
                time.sleep(0.05)
            assert scheduler.abandoned_workers == 0
            assert pool.extra_workers == 0

    def test_abandon_cap_marks_outcomes_degraded(self):
        with Scheduler(
            pool=WorkerPool(max_workers=1), max_abandoned=1
        ) as scheduler:
            outcomes = [
                scheduler.submit(
                    SleepJob(duration=1.0, token=f"d{i}"), timeout=0.05
                ).outcome(timeout=5)
                for i in range(3)
            ]
        assert all(o.status is JobStatus.TIMED_OUT for o in outcomes)
        assert any(o.detail.get("degraded") for o in outcomes)

    def test_abandon_cancels_pending_future(self):
        # a future that never started is cancelled outright: its slot
        # was never held, so no replacement capacity is loaned
        from concurrent.futures import Future

        with Scheduler(pool=WorkerPool(max_workers=1)) as scheduler:
            pending = Future()
            assert scheduler._abandon(pending) is False
            assert pending.cancelled()
            assert scheduler.abandoned_workers == 0
            assert scheduler.pool.extra_workers == 0


class TestTracing:
    state: dict

    def test_outcome_carries_full_span_record(self):
        with Scheduler(pool=WorkerPool(max_workers=1)) as scheduler:
            outcome = scheduler.submit(ProbeJob(token="tr")).outcome(timeout=5)
        stages = [span["stage"] for span in outcome.trace["spans"]]
        assert stages == [
            "submitted",
            "queued",
            "dispatched",
            "attempt",
            "resolved",
        ]
        assert outcome.trace["key"] == ProbeJob(token="tr").key()
        assert outcome.trace["trace_id"].startswith("t")
        ats = [span["at"] for span in outcome.trace["spans"]]
        assert ats == sorted(ats)

    def test_cache_hit_trace_and_buffer_lookup(self):
        cache = ResultCache()
        with Scheduler(pool=WorkerPool(max_workers=1), cache=cache) as scheduler:
            scheduler.submit(ProbeJob(token="warm")).result(timeout=5)
            warm = scheduler.submit(ProbeJob(token="warm")).outcome(timeout=5)
            key = ProbeJob(token="warm").key()
            buffered = scheduler.traces.get(key)
        stages = [span["stage"] for span in warm.trace["spans"]]
        assert stages == ["submitted", "cache-hit", "resolved"]
        # the buffer holds the latest submission's trace
        assert buffered is not None
        assert buffered.to_dict() == warm.trace

    def test_retry_and_failure_spans(self):
        self.state["flaky_failures"] = 99
        with Scheduler(
            pool=WorkerPool(max_workers=1),
            max_retries=1,
            sleep=lambda _: None,
        ) as scheduler:
            outcome = scheduler.submit(FlakyJob(token="sp")).outcome(timeout=5)
        stages = [span["stage"] for span in outcome.trace["spans"]]
        assert stages.count("attempt") == 2
        assert "retry" in stages
        assert stages[-2:] == ["failed", "resolved"]

"""Tests for the placement-new detector, legacy tools, and the CFG."""

import pytest

from repro.analysis import (
    Severity,
    SymbolTable,
    analyze_source,
    build_cfg,
    parse,
    placement_sites,
    simulated_tool_suite,
)
from repro.workloads.corpus import (
    CLASSIC_CORPUS,
    PLACEMENT_CORPUS,
    SAFE_CORPUS,
)


class TestSymbolTable:
    def test_sizeof_matches_simulator(self):
        from repro.workloads.corpus import LISTING_4

        symbols = SymbolTable(parse(LISTING_4.source))
        assert symbols.sizeof_name("Student") == 16
        assert symbols.sizeof_name("GradStudent") == 32
        assert symbols.sizeof_name("int") == 4
        assert symbols.sizeof_name("double") == 8

    def test_virtual_classes_grow_by_vptr(self):
        from repro.workloads.corpus import VTABLE_VARIANT

        symbols = SymbolTable(parse(VTABLE_VARIANT.source))
        assert symbols.sizeof_name("Student") == 24
        assert symbols.sizeof_name("GradStudent") == 40
        assert symbols.is_polymorphic("Student")

    def test_pointer_sizes(self):
        symbols = SymbolTable(parse("class A { public: int x; };"))
        assert symbols.sizeof_name("A*") == 4

    def test_unknown_type_is_none(self):
        symbols = SymbolTable(parse("class A { public: int x; };"))
        assert symbols.sizeof_name("Mystery") is None


class TestDetectorRules:
    @pytest.mark.parametrize(
        "program", PLACEMENT_CORPUS, ids=lambda p: p.key
    )
    def test_expected_rules_fire(self, program):
        report = analyze_source(program.source)
        fired = report.rules_fired()
        missing = set(program.expected_rules) - fired
        assert not missing, f"{program.key}: missing {missing}, fired {fired}"

    @pytest.mark.parametrize("program", SAFE_CORPUS, ids=lambda p: p.key)
    def test_no_false_positives_on_safe_code(self, program):
        report = analyze_source(program.source)
        noisy = report.at_least(Severity.WARNING)
        assert not noisy, [f.render() for f in noisy]

    def test_oversize_message_carries_sizes(self):
        from repro.workloads.corpus import LISTING_4

        report = analyze_source(LISTING_4.source)
        oversize = [f for f in report.findings if f.rule == "PN-OVERSIZE"]
        assert "32 bytes" in oversize[0].message
        assert "16" in oversize[0].message

    def test_findings_point_at_placement_lines(self):
        from repro.workloads.corpus import LISTING_4

        report = analyze_source(LISTING_4.source)
        source_lines = LISTING_4.source.splitlines()
        for finding in report.findings:
            assert "new" in source_lines[finding.line - 1]

    def test_sizeof_guard_makes_branch_dead(self):
        report = analyze_source(
            """
class A { public: double d; };
class B : public A { public: int extra[4]; };
A arena;
void f() {
  if (sizeof(B) <= sizeof(A)) {
    B *b = new (&arena) B();
  }
}
"""
        )
        assert "PN-OVERSIZE" not in report.rules_fired()

    def test_unguarded_variant_flagged(self):
        report = analyze_source(
            """
class A { public: double d; };
class B : public A { public: int extra[4]; };
A arena;
void f() {
  B *b = new (&arena) B();
}
"""
        )
        assert "PN-OVERSIZE" in report.rules_fired()

    def test_unknown_arena_is_info_grade(self):
        report = analyze_source(
            """
class A { public: double d; };
void f(char *p) {
  A *a = new (p) A();
}
"""
        )
        findings = [f for f in report.findings if f.rule == "PN-UNKNOWN-ARENA"]
        assert findings and findings[0].severity is Severity.INFO

    def test_pointer_arena_resolved_through_assignment(self):
        # "a pointer could have been assigned the address of a scalar
        # variable" — the must-alias the paper says is hard; we resolve
        # the easy flow-sensitive case.
        report = analyze_source(
            """
class A { public: double d; };
class B : public A { public: int extra[4]; };
void f() {
  A small;
  A *p = &small;
  B *b = new (p) B();
}
"""
        )
        assert "PN-OVERSIZE" in report.rules_fired()

    def test_tainted_count_via_parameter(self):
        report = analyze_source(
            """
char pool[64];
void f(int n) {
  char *buf = new (pool) char[n];
}
"""
        )
        assert "PN-TAINTED-COUNT" in report.rules_fired()

    def test_constant_count_within_arena_is_clean(self):
        report = analyze_source(
            """
char pool[64];
void f() {
  char *buf = new (pool) char[64];
}
"""
        )
        assert not report.at_least(Severity.WARNING)

    def test_constant_count_oversize_flagged(self):
        report = analyze_source(
            """
char pool[64];
void f() {
  char *buf = new (pool) char[65];
}
"""
        )
        assert "PN-OVERSIZE" in report.rules_fired()

    def test_memset_between_reuse_suppresses_leak(self):
        report = analyze_source(
            """
char pool[64];
void f() {
  readFile("/etc/passwd", pool, 64);
  memset(pool, 0, 64);
  char *userdata = new (pool) char[64];
  store(userdata);
}
"""
        )
        assert "PN-NO-SANITIZE" not in report.rules_fired()

    def test_misalignment_note(self):
        report = analyze_source(
            """
class A { public: double d; };
void f() {
  char c;
  A *a = new (&c) A();
}
"""
        )
        assert "PN-MISALIGNED" in report.rules_fired()
        assert "PN-OVERSIZE" in report.rules_fired()

    def test_report_renders(self):
        from repro.workloads.corpus import LISTING_11

        text = analyze_source(LISTING_11.source).render()
        assert "PN-OVERSIZE" in text


class TestLegacyTools:
    def test_zero_placement_detections(self):
        """The E13 headline: classic rule sets flag 0 of the paper's
        placement listings as errors."""
        strict, _, grep = simulated_tool_suite()
        for tool in (strict, grep):
            for program in PLACEMENT_CORPUS:
                report = tool.scan_source(program.source)
                errors = report.at_least(Severity.ERROR)
                assert not errors, (tool.name, program.key)

    def test_classic_corpus_caught(self):
        strict, audit, grep = simulated_tool_suite()
        for program in CLASSIC_CORPUS:
            assert strict.scan_source(program.source).flagged, program.key

    def test_audit_profile_flags_strncpy_review(self):
        # The one nuance: the audit profile asks to review Listing 19's
        # strncpy — but cannot name the placement-new root cause.
        from repro.workloads.corpus import LISTING_19

        _, audit, _ = simulated_tool_suite()
        report = audit.scan_source(LISTING_19.source)
        rules = report.rules_fired()
        assert rules == {"CLASSIC-BOUNDED-COPY-REVIEW"}

    def test_scanner_covers_methods(self):
        report = simulated_tool_suite()[0].scan_source(
            "class A { public: int x; void f(char *p) { char b[4]; strcpy(b, p); } };"
        )
        assert report.flagged


class TestCfg:
    def test_linear_function(self):
        cfg = build_cfg(parse("void f() { int a = 1; a = 2; }").function("f"))
        assert len(cfg.entry.statements) == 2
        assert cfg.exit_id in cfg.reachable_blocks()

    def test_if_creates_diamond(self):
        cfg = build_cfg(
            parse("void f(int a) { if (a) { a = 1; } else { a = 2; } }").function("f")
        )
        assert len(cfg.entry.successors) == 2

    def test_loop_back_edge(self):
        cfg = build_cfg(
            parse("void f(int a) { while (a) { a = a - 1; } }").function("f")
        )
        headers = [b for b in cfg.blocks.values() if b.label == "loop-header"]
        assert headers
        body = [b for b in cfg.blocks.values() if b.label == "loop-body"]
        assert headers[0].block_id in body[0].successors

    def test_code_after_return_unreachable(self):
        cfg = build_cfg(
            parse("void f(int a) { return; a = 1; }").function("f")
        )
        reachable = cfg.statements_reachable()
        from repro.analysis import ast_nodes as ast

        assert not any(isinstance(s, ast.Assign) for s in reachable)

    def test_placement_sites_found(self):
        from repro.workloads.corpus import LISTING_19

        cfg = build_cfg(parse(LISTING_19.source).function("sortAndAddUname"))
        assert len(placement_sites(cfg)) == 2

    def test_dot_export(self):
        cfg = build_cfg(parse("void f() { int a = 1; }").function("f"))
        dot = cfg.to_dot()
        assert dot.startswith("digraph") and "B0" in dot

"""Allocation tracking and leak accounting.

Section 4.5 of the paper shows placement new causing *memory leaks*: a
``GradStudent``-sized arena is re-labelled as a smaller ``Student`` and
the difference is never reclaimed — *"the amount of memory leaked per
iteration is the difference in the size"*.  The tracker provides the
ground truth for experiment E12: it records every live arena together
with the size the program *currently believes* it has, so leaked bytes
are measurable per iteration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional


class ArenaOrigin(enum.Enum):
    """How an arena came to exist."""

    HEAP_NEW = "heap-new"
    PLACEMENT = "placement"
    POOL = "pool"
    STACK = "stack"
    STATIC = "static"


@dataclass
class ArenaRecord:
    """One tracked arena: where it is, how big it really is, and how big
    the program currently thinks it is."""

    address: int
    true_size: int
    believed_size: int
    origin: ArenaOrigin
    label: str = ""
    freed: bool = False
    history: list[str] = field(default_factory=list)

    @property
    def leaked_bytes(self) -> int:
        """Bytes unreachable if the arena were freed at its believed size."""
        if self.freed:
            return max(self.true_size - self.believed_size, 0)
        return 0


#: Signature of an allocation-lifecycle observer.  ``event`` is one of
#: ``"record"`` / ``"relabel"`` / ``"forget"`` / ``"freed"``; runtime
#: defenses (the VRT bounds table, memory tagging) subscribe here so they
#: see every arena the moment the allocator does.  Observers run *after*
#: the tracker's own bookkeeping and may raise — a relabel that exceeds
#: the recorded bounds is exactly where the VRT faults.
AllocationObserver = Callable[[str, "ArenaRecord"], None]


class AllocationTracker:
    """Registry of arenas with leak accounting."""

    def __init__(self) -> None:
        self._records: dict[int, ArenaRecord] = {}
        self._freed_records: list[ArenaRecord] = []
        self._observers: list[AllocationObserver] = []

    # -- observers ----------------------------------------------------------

    def add_observer(self, observer: AllocationObserver) -> None:
        """Subscribe to arena lifecycle events."""
        self._observers.append(observer)

    def remove_observer(self, observer: AllocationObserver) -> None:
        """Unsubscribe a previously added observer."""
        self._observers.remove(observer)

    def _notify(self, event: str, record: ArenaRecord) -> None:
        for observer in self._observers:
            observer(event, record)

    def record(
        self,
        address: int,
        size: int,
        origin: ArenaOrigin,
        label: str = "",
    ) -> ArenaRecord:
        """Register a new arena (or re-register an address after free)."""
        record = ArenaRecord(
            address=address,
            true_size=size,
            believed_size=size,
            origin=origin,
            label=label,
        )
        record.history.append(f"allocated {size}B as {label or origin.value}")
        self._records[address] = record
        if self._observers:
            self._notify("record", record)
        return record

    def relabel(self, address: int, new_size: int, label: str = "") -> Optional[ArenaRecord]:
        """A placement new re-used ``address`` for a ``new_size`` object.

        The arena's *believed* size shrinks (or grows) while its true size
        is unchanged — the Listing 23 leak mechanism.
        """
        record = self._records.get(address)
        if record is None:
            return None
        record.believed_size = new_size
        record.history.append(f"relabelled to {new_size}B ({label})")
        if self._observers:
            self._notify("relabel", record)
        return record

    def forget(self, address: int) -> Optional[ArenaRecord]:
        """Remove a live record *without* leak accounting.

        Used when storage ceases to exist by scope exit (stack locals at
        frame pop) rather than by an explicit free — no deallocation
        happened, so Listing 23's believed-size arithmetic must not run.
        """
        record = self._records.pop(address, None)
        if record is not None and self._observers:
            self._notify("forget", record)
        return record

    def mark_freed(self, address: int) -> Optional[ArenaRecord]:
        """The program released the arena *at its believed size*."""
        record = self._records.pop(address, None)
        if record is None:
            return None
        record.freed = True
        record.history.append(
            f"freed at believed size {record.believed_size}B "
            f"(true {record.true_size}B)"
        )
        self._freed_records.append(record)
        if self._observers:
            self._notify("freed", record)
        return record

    # -- accounting ---------------------------------------------------------

    @property
    def live_records(self) -> tuple[ArenaRecord, ...]:
        """Arenas not yet freed."""
        return tuple(self._records.values())

    @property
    def freed_records(self) -> tuple[ArenaRecord, ...]:
        """Arenas that have been freed (with leak info)."""
        return tuple(self._freed_records)

    @property
    def live_bytes(self) -> int:
        """True bytes held by live arenas."""
        return sum(record.true_size for record in self._records.values())

    @property
    def leaked_bytes(self) -> int:
        """Bytes stranded by free-at-smaller-size (Listing 23)."""
        return sum(record.leaked_bytes for record in self._freed_records)

    @property
    def outstanding_arenas(self) -> int:
        """Count of live arenas (never-freed allocations leak too)."""
        return len(self._records)

    def lookup(self, address: int) -> Optional[ArenaRecord]:
        """The live record at ``address``, if any."""
        return self._records.get(address)

    def report(self) -> str:
        """Human-readable leak report."""
        lines = [
            f"live arenas: {self.outstanding_arenas} ({self.live_bytes}B)",
            f"leaked via undersized free: {self.leaked_bytes}B",
        ]
        for record in self._freed_records:
            if record.leaked_bytes:
                lines.append(
                    f"  {record.address:#010x} leaked {record.leaked_bytes}B "
                    f"({record.label or record.origin.value})"
                )
        return "\n".join(lines)

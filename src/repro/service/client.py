"""A small stdlib client for the ``repro-serve`` JSON API.

The transport is :mod:`http.client` rather than urllib so the connect
and read phases get *separate* timeouts: a shard that accepts the TCP
handshake but then stalls mid-response trips the read timeout instead
of hanging a CLI user forever.  Transient socket failures (connection
refused during shard startup, resets, timeouts) are retried a bounded
number of times with the scheduler's deterministic decorrelated-jitter
backoff; a server that *responds* with a non-2xx status is never
retried — that is a :class:`ServiceError` for the caller to interpret.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import time
from typing import Callable, Optional, Sequence
from urllib.parse import urlsplit


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: Seconds the server asked us to wait (429 responses), else None.
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """The service could not be reached after every retry attempt."""

    def __init__(self, url: str, attempts: int, cause: Exception):
        RuntimeError.__init__(
            self,
            f"service at {url} unreachable after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: {cause}",
        )
        self.status = 0
        self.message = str(cause)
        self.retry_after = None
        self.attempts = attempts


def backoff_delay(key: str, attempt: int, base: float, cap: float) -> float:
    """Exponential backoff with deterministic, key-seeded jitter.

    The same idiom as the scheduler's retry path: hashing
    ``key:attempt`` gives every (request, attempt) pair its own stable
    fraction in ``[0, 1)``, spreading retry herds across clients while
    staying byte-for-byte reproducible across runs and processes.
    """
    ceiling = min(base * (2 ** (attempt - 1)), cap)
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2**64
    return min(cap, ceiling * (0.5 + fraction))


class ServiceClient:
    """Typed wrappers over the service endpoints.

    ``timeout`` is the legacy single knob and remains the default for
    both phases; ``connect_timeout``/``read_timeout`` override it
    individually.  ``retries`` bounds re-attempts after transient
    socket errors (0 disables); ``sleep`` is injectable so tests can
    count backoff delays without waiting them out.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self.read_timeout = read_timeout if read_timeout is not None else timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        parsed = urlsplit(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported URL scheme '{parsed.scheme}'")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> dict:
        return json.loads(self._request_raw(method, path, body, headers))

    def _request_raw(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> bytes:
        data = json.dumps(body).encode() if body is not None else None
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._attempt(method, path, data, headers)
            except (OSError, http.client.HTTPException) as error:
                if attempts > self.retries:
                    raise ServiceUnavailable(
                        self.base_url + path, attempts, error
                    ) from error
                self._sleep(
                    backoff_delay(
                        f"{method} {path}",
                        attempts,
                        self.backoff_base,
                        self.backoff_cap,
                    )
                )

    def _attempt(
        self,
        method: str,
        path: str,
        data: Optional[bytes],
        headers: Optional[dict],
    ) -> bytes:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self.connect_timeout
        )
        try:
            connection.connect()
            if connection.sock is not None:
                # the connect deadline has been met; everything after
                # this point is governed by the read timeout
                connection.sock.settimeout(self.read_timeout)
            request_headers = {"Content-Type": "application/json"}
            if headers:
                request_headers.update(headers)
            connection.request(method, path, body=data, headers=request_headers)
            response = connection.getresponse()
            payload = response.read()
        finally:
            connection.close()
        if 200 <= response.status < 300:
            return payload
        try:
            document = json.loads(payload)
            message = document.get("error", response.reason)
            retry_after = document.get("retry_after")
        except (ValueError, AttributeError):
            message, retry_after = str(response.reason), None
        if retry_after is None:
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
        raise ServiceError(response.status, str(message), retry_after=retry_after)

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the metrics snapshot."""
        return self._request_raw("GET", "/metrics?format=prom").decode()

    def trace(self, key: str) -> dict:
        """The span record for job ``key`` (404 → :class:`ServiceError`)."""
        return self._request("GET", f"/trace/{key}")

    def traces(self) -> dict:
        """``{"keys": [...]}`` — every job key with a retained trace."""
        return self._request("GET", "/trace")

    def cache_get(self, key: str) -> Optional[dict]:
        """Probe the server's result cache: the cached result or ``None``.

        The cluster front-end's peer-fetch tier; a 404 (cache miss on
        the peer) is a normal outcome, not an error.
        """
        try:
            return self._request("GET", f"/cache/{key}")
        except ServiceError as error:
            if error.status == 404:
                return None
            raise

    def cache_put(self, key: str, result: dict) -> bool:
        """Warm the server's result cache with an externally computed result."""
        return bool(
            self._request("POST", f"/cache/{key}", {"result": result}).get("stored")
        )

    def analyze(
        self,
        source: Optional[str] = None,
        label: str = "",
        legacy: bool = False,
        corpus: bool = False,
    ) -> dict:
        body: dict = {"legacy": legacy}
        if corpus:
            body["corpus"] = True
        else:
            body["source"] = source
            body["label"] = label
        return self._request("POST", "/analyze", body)

    def attacks(self, attack: Optional[str] = None, env: str = "unprotected") -> dict:
        body: dict = {"env": env}
        if attack:
            body["attack"] = attack
        return self._request("POST", "/attacks", body)

    def matrix(
        self, attacks: Sequence[str] = (), defenses: Sequence[str] = ()
    ) -> dict:
        return self._request(
            "POST",
            "/matrix",
            {"attacks": list(attacks), "defenses": list(defenses)},
        )

    def execute(
        self,
        source: str,
        entry: str = "main",
        args: Sequence = (),
        stdin: Sequence = (),
        canary: bool = False,
        engine: str = "ast",
    ) -> dict:
        return self._request(
            "POST",
            "/exec",
            {
                "source": source,
                "entry": entry,
                "args": list(args),
                "stdin": list(stdin),
                "canary": canary,
                "engine": engine,
            },
        )

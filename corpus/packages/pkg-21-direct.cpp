// package: pkg-21-direct
class Small { public: char f0; int f1; int f2; };
class Big : public Small { public: char g0; char g1; short g2; char g3; };
void run() {
  Big arena;
  Small *p = new (&arena) Small();
}

"""Integration tests: the object/array overflow attacks (Sections 3–4)."""


from repro.attacks import (
    CHECKED_PLACEMENT,
    SHADOW_MEMORY,
    UNPROTECTED,
    BssArrayOverflowAttack,
    ConstructionOverflowAttack,
    CopyConstructorOverflowAttack,
    DataBssOverflowAttack,
    DataVariableAttack,
    HeapOverflowAttack,
    IndirectConstructionOverflowAttack,
    InternalOverflowAttack,
    MemberVariableAttack,
    RemoteObjectOverflowAttack,
    StackArrayOverflowAttack,
    StackLocalVariableAttack,
)


class TestObjectOverflowRoutes:
    """Sections 3.1–3.4: every route to an object overflow."""

    def test_construction_overflow(self):
        result = ConstructionOverflowAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["object_size"] == 32
        assert result.detail["arena_size"] == 16

    def test_remote_object_overflow_and_taint(self):
        result = RemoteObjectOverflowAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["remote_n"] == 8
        assert result.detail["sentinel_tainted"]

    def test_copy_constructor_overflow(self):
        result = CopyConstructorOverflowAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["copied_gpa"] == 2.2

    def test_indirect_construction_overflow(self):
        result = IndirectConstructionOverflowAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["intermediate_size"] > result.detail["arena_size"]

    def test_internal_overflow_contained(self):
        result = InternalOverflowAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["overflow_contained_in_host"]

    def test_checked_placement_blocks_construction(self):
        result = ConstructionOverflowAttack().run(CHECKED_PLACEMENT)
        assert not result.succeeded
        assert result.detected_by == "bounds-check"

    def test_shadow_memory_detects_construction(self):
        result = ConstructionOverflowAttack().run(SHADOW_MEMORY)
        assert not result.succeeded
        assert result.detected_by == "shadow-memory"


class TestDataBssOverflow:
    """Listing 11."""

    def test_neighbour_gpa_corrupted(self):
        result = DataBssOverflowAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["gpa_before"] == 3.5
        assert result.detail["gpa_after"] != 3.5

    def test_injected_bytes_land_in_gpa(self):
        result = DataBssOverflowAttack().run(UNPROTECTED)
        assert result.detail["matches_injected_bytes"]

    def test_ssn2_lands_in_year(self):
        result = DataBssOverflowAttack(ssn_inputs=(1, 2, 777)).run(UNPROTECTED)
        assert result.detail["year_after"] == 777


class TestHeapOverflow:
    """Listing 12."""

    def test_name_clobbered(self):
        result = HeapOverflowAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["name_before"] == "abcdefghijklmno"

    def test_heap_metadata_corrupted(self):
        result = HeapOverflowAttack().run(UNPROTECTED)
        assert result.detail["heap_metadata_corrupted"]

    def test_neighbour_separated_by_header_only(self):
        result = HeapOverflowAttack().run(UNPROTECTED)
        from repro.memory import HEADER_SIZE

        assert result.detail["overflow_gap"] == HEADER_SIZE


class TestVariableOverwrites:
    """Listings 14–15."""

    def test_global_counter_overwritten(self):
        result = DataVariableAttack(injected_count=123456).run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["count_before"] == 0
        assert result.detail["count_after"] == 123456

    def test_stack_local_overwritten_with_alignment(self):
        result = StackLocalVariableAttack(injected_n=9999).run(UNPROTECTED)
        assert result.succeeded
        # The paper's padding analysis, byte for byte:
        assert result.detail["padding_above_stud"] == 4
        assert result.detail["n_after_ssn0"] == 5
        assert result.detail["n_after_ssn1"] == 9999
        assert result.detail["ssn0_hit_padding"]


class TestMemberVariable:
    """Listing 16."""

    def test_first_gpa_overwritten(self):
        result = MemberVariableAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["gpa_before"] == 3.9
        assert result.detail["stud_to_first_gap"] == 0


class TestTwoStepArrayOverflow:
    """Listings 19–20."""

    def test_stack_variant_hijacks_return(self):
        result = StackArrayOverflowAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["hijacked"]
        assert result.detail["copy_len"] > result.detail["pool_size"]

    def test_step1_rewrites_size_after_validation(self):
        result = StackArrayOverflowAttack(n_students=8).run(UNPROTECTED)
        assert result.detail["n_unames_after_step1"] == 32  # 8 * 4

    def test_bss_variant_tramples_global(self):
        result = BssArrayOverflowAttack().run(UNPROTECTED)
        assert result.succeeded
        assert result.detail["n_staff_after"] != 25

    def test_checked_pools_block_step2(self):
        result = StackArrayOverflowAttack().run(CHECKED_PLACEMENT)
        assert not result.succeeded
        assert result.detected_by == "bounds-check"

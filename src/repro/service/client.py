"""A small stdlib client for the ``repro-serve`` JSON API."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional, Sequence


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Typed wrappers over the service endpoints."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        return json.loads(self._request_raw(method, path, body))

    def _request_raw(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> bytes:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read()).get("error", error.reason)
            except ValueError:
                message = str(error.reason)
            raise ServiceError(error.code, message) from None

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the metrics snapshot."""
        return self._request_raw("GET", "/metrics?format=prom").decode()

    def trace(self, key: str) -> dict:
        """The span record for job ``key`` (404 → :class:`ServiceError`)."""
        return self._request("GET", f"/trace/{key}")

    def traces(self) -> dict:
        """``{"keys": [...]}`` — every job key with a retained trace."""
        return self._request("GET", "/trace")

    def analyze(
        self,
        source: Optional[str] = None,
        label: str = "",
        legacy: bool = False,
        corpus: bool = False,
    ) -> dict:
        body: dict = {"legacy": legacy}
        if corpus:
            body["corpus"] = True
        else:
            body["source"] = source
            body["label"] = label
        return self._request("POST", "/analyze", body)

    def attacks(self, attack: Optional[str] = None, env: str = "unprotected") -> dict:
        body: dict = {"env": env}
        if attack:
            body["attack"] = attack
        return self._request("POST", "/attacks", body)

    def matrix(
        self, attacks: Sequence[str] = (), defenses: Sequence[str] = ()
    ) -> dict:
        return self._request(
            "POST",
            "/matrix",
            {"attacks": list(attacks), "defenses": list(defenses)},
        )

    def execute(
        self,
        source: str,
        entry: str = "main",
        args: Sequence = (),
        stdin: Sequence = (),
        canary: bool = False,
        engine: str = "ast",
    ) -> dict:
        return self._request(
            "POST",
            "/exec",
            {
                "source": source,
                "entry": entry,
                "args": list(args),
                "stdin": list(stdin),
                "canary": canary,
                "engine": engine,
            },
        )

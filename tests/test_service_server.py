"""End-to-end repro-serve round trips on an ephemeral port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    AnalyzeJob,
    ServiceClient,
    ServiceEngine,
    ServiceError,
    create_server,
)

VULN_SOURCE = """
class A { public: double d; };
class B : public A { public: int x[8]; };
void f() { A a; B *b = new (&a) B(); }
"""


@pytest.fixture(scope="module")
def service():
    with ServiceEngine(workers=2) as engine:
        server = create_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base_url = "http://127.0.0.1:%d" % server.server_address[1]
        try:
            yield ServiceClient(base_url), engine, base_url
        finally:
            server.shutdown()
            server.server_close()


class TestEndpoints:
    def test_healthz(self, service):
        client, engine, _ = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_analyze_round_trip(self, service):
        client, _, _ = service
        response = client.analyze(source=VULN_SOURCE, label="vuln")
        assert response["label"] == "vuln"
        assert "PN-OVERSIZE" in [f["rule"] for f in response["findings"]]

    def test_analyze_corpus(self, service):
        client, _, _ = service
        response = client.analyze(corpus=True)
        labels = [report["label"] for report in response["reports"]]
        assert "listing4-construction" in labels

    def test_attack_round_trip(self, service):
        client, _, _ = service
        response = client.attacks(attack="data-bss-overflow")
        assert response["summary"] == "ATTACK-WINS"

    def test_matrix_round_trip(self, service):
        client, _, _ = service
        response = client.matrix(
            attacks=["data-bss-overflow"], defenses=["none", "checked-placement"]
        )
        assert response["defenses"] == ["none", "checked-placement"]
        assert len(response["cells"]) == 2

    def test_exec_round_trip(self, service):
        client, _, _ = service
        response = client.execute("int main(int a, char b) { return 9; }")
        assert response["return_value"] == 9
        assert response["died"] is False
        assert response["engine"] == "ast"

    def test_exec_bytecode_engine(self, service):
        client, _, _ = service
        response = client.execute(
            "int main(int a, char b) { return 9; }", engine="bytecode"
        )
        assert response["return_value"] == 9
        assert response["engine"] == "bytecode"

    def test_metrics_include_http_and_cache(self, service):
        client, _, _ = service
        metrics = client.metrics()
        assert metrics["counters"]["http.requests"] >= 1
        assert "hit_rate" in metrics["cache"]

    def test_repeat_request_hits_cache(self, service):
        client, engine, _ = service
        client.analyze(source=VULN_SOURCE, label="warm")
        hits_before = engine.cache.hits
        client.analyze(source=VULN_SOURCE, label="warm")
        assert engine.cache.hits == hits_before + 1

    def test_metrics_prometheus_text(self, service):
        client, _, base_url = service
        client.healthz()  # ensure at least one counted request
        text = client.metrics_text()
        assert "# TYPE repro_http_requests_total counter" in text
        assert "repro_scheduler_queue_depth" in text
        assert "repro_cache_write_errors" in text
        # scraper-style Accept negotiation reaches the same renderer
        request = urllib.request.Request(
            base_url + "/metrics",
            headers={"Accept": "text/plain;version=0.0.4"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert "text/plain" in response.headers["Content-Type"]
            assert b"repro_scheduler_jobs_submitted_total" in response.read()

    def test_trace_endpoint_round_trip(self, service):
        client, _, _ = service
        client.analyze(source=VULN_SOURCE, label="traced")
        key = AnalyzeJob(source=VULN_SOURCE, label="traced").key()
        trace = client.trace(key)
        assert trace["key"] == key
        stages = [span["stage"] for span in trace["spans"]]
        assert stages[0] == "submitted"
        assert stages[-1] == "resolved"
        assert key in client.traces()["keys"]

    def test_trace_unknown_key_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.trace("analyze-0000000000000000dead")
        assert excinfo.value.status == 404


class TestCachePeerProtocol:
    """The /cache routes the cluster uses for peer fetch and warming."""

    def test_get_miss_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/cache/analyze-00000000000000000000")
        assert excinfo.value.status == 404

    def test_put_then_get_round_trips_through_mem_tier(self, service):
        client, engine, _ = service
        key = "analyze-cafecafecafecafecafe"
        assert client.cache_put(key, {"label": "peered"}) is True
        fetched = client.cache_get(key)
        assert fetched["result"] == {"label": "peered"}
        assert fetched["tier"] == "mem"
        assert engine.cache.get(key) == {"label": "peered"}

    def test_put_rejects_non_object_results(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/cache/analyze-1234", {"result": "nope"})
        assert excinfo.value.status == 400

    def test_computed_results_are_peer_fetchable(self, service):
        client, _, _ = service
        client.analyze(source=VULN_SOURCE, label="fetchable")
        key = AnalyzeJob(source=VULN_SOURCE, label="fetchable").key()
        assert client.cache_get(key)["result"]["label"] == "fetchable"


class TestErrorHandling:
    def test_unknown_path_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_missing_source_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/analyze", {})
        assert excinfo.value.status == 400

    def test_malformed_json_400(self, service):
        _, _, base_url = service
        request = urllib.request.Request(
            base_url + "/analyze",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as error:
            assert error.code == 400
            assert "JSON" in json.loads(error.read())["error"]

    def test_unknown_attack_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.attacks(attack="nope")
        assert excinfo.value.status == 400
        assert excinfo.value.message == "no attack named 'nope'"

    def test_unknown_matrix_defense_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.matrix(defenses=["bogus"])
        assert excinfo.value.status == 400
        assert "no defense named 'bogus'" in excinfo.value.message

    def test_unknown_matrix_attack_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.matrix(attacks=["bogus"])
        assert excinfo.value.status == 400

    def test_unknown_exec_engine_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST", "/exec", {"source": "int main() {}", "engine": "qemu"}
            )
        assert excinfo.value.status == 400
        assert "engine" in str(excinfo.value)

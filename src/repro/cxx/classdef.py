"""Class definitions for the simulated C++ object model.

A :class:`ClassDef` captures what a C++ compiler sees in a class
declaration: base classes, non-static data members, virtual methods, and
constructors.  Sizes and offsets are *not* stored here — they are
computed by :mod:`repro.cxx.layout`, the same separation a compiler
maintains between the AST and the record-layout pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..errors import ApiMisuseError, LayoutError
from .types import CType


@dataclass(frozen=True)
class Field:
    """One non-static data member."""

    name: str
    ctype: CType


@dataclass(frozen=True)
class VirtualMethod:
    """Declaration of a virtual method (implementation bound per class).

    ``implementation`` is a Python callable ``(machine, this_instance,
    *args) -> value`` standing in for the compiled method body.
    """

    name: str
    implementation: Optional[Callable] = None


#: A constructor body: ``(machine, instance, *args) -> None``.
Constructor = Callable[..., None]


@dataclass
class ClassDef:
    """A simulated C++ class declaration."""

    name: str
    bases: tuple["ClassDef", ...] = ()
    fields: tuple[Field, ...] = ()
    virtual_methods: tuple[VirtualMethod, ...] = ()
    constructor: Optional[Constructor] = None
    copy_constructor: Optional[Constructor] = None

    def __post_init__(self) -> None:
        seen = set()
        for member in self.fields:
            if member.name in seen:
                raise ApiMisuseError(
                    f"duplicate field '{member.name}' in class {self.name}"
                )
            seen.add(member.name)

    # -- queries -------------------------------------------------------------

    def is_polymorphic(self) -> bool:
        """True if this class or any base declares a virtual method."""
        if self.virtual_methods:
            return True
        return any(base.is_polymorphic() for base in self.bases)

    def all_bases(self) -> tuple["ClassDef", ...]:
        """Transitive bases, depth-first, each once."""
        result: list[ClassDef] = []
        seen: set[str] = set()

        def visit(cls: "ClassDef") -> None:
            for base in cls.bases:
                if base.name not in seen:
                    seen.add(base.name)
                    result.append(base)
                    visit(base)

        visit(self)
        return tuple(result)

    def is_subclass_of(self, other: "ClassDef") -> bool:
        """True for reflexive-or-transitive derivation."""
        if other.name == self.name:
            return True
        return any(base.name == other.name for base in self.all_bases())

    def find_field(self, name: str) -> tuple["ClassDef", Field]:
        """Resolve a field by name, searching this class then bases.

        Returns the declaring class together with the field, because the
        layout engine needs to know which subobject the field lives in.
        """
        for member in self.fields:
            if member.name == name:
                return self, member
        for base in self.bases:
            try:
                return base.find_field(name)
            except LayoutError:
                continue
        raise LayoutError(f"class {self.name} has no field '{name}'")

    def own_virtual_names(self) -> tuple[str, ...]:
        """Virtual method names declared directly on this class."""
        return tuple(method.name for method in self.virtual_methods)

    def virtual_slot_order(self) -> tuple[str, ...]:
        """The vtable slot order: inherited slots first, then new ones.

        Follows the Itanium ABI rule that a derived class appends its new
        virtual functions after the (overridden-in-place) base slots.
        """
        order: list[str] = []
        for base in self.bases:
            for slot in base.virtual_slot_order():
                if slot not in order:
                    order.append(slot)
        for method in self.virtual_methods:
            if method.name not in order:
                order.append(method.name)
        return tuple(order)

    def resolve_virtual(self, name: str) -> Optional[Callable]:
        """The most-derived implementation of virtual ``name`` for this
        class (C++ override semantics)."""
        for method in self.virtual_methods:
            if method.name == name and method.implementation is not None:
                return method.implementation
        for base in self.bases:
            found = base.resolve_virtual(name)
            if found is not None:
                return found
        return None

    def describe(self) -> str:
        """Short human-readable declaration summary."""
        base_part = (
            " : " + ", ".join(base.name for base in self.bases) if self.bases else ""
        )
        members = "; ".join(f"{m.ctype} {m.name}" for m in self.fields)
        virtuals = "; ".join(f"virtual {v.name}()" for v in self.virtual_methods)
        body = "; ".join(part for part in (virtuals, members) if part)
        return f"class {self.name}{base_part} {{ {body} }}"


def make_class(
    name: str,
    fields: Sequence[tuple[str, CType]] = (),
    bases: Sequence[ClassDef] = (),
    virtuals: Sequence[VirtualMethod] = (),
    constructor: Optional[Constructor] = None,
    copy_constructor: Optional[Constructor] = None,
) -> ClassDef:
    """Convenience factory used throughout tests and workloads."""
    return ClassDef(
        name=name,
        bases=tuple(bases),
        fields=tuple(Field(fname, ftype) for fname, ftype in fields),
        virtual_methods=tuple(virtuals),
        constructor=constructor,
        copy_constructor=copy_constructor,
    )

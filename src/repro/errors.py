"""Exception hierarchy for the simulated process and its tooling.

The simulator distinguishes *simulated program failures* (segmentation
faults, stack-smashing aborts, allocation failures — things the simulated
process would experience) from *API misuse* by the Python caller.  The
former derive from :class:`SimulatedProcessError`, the latter from
:class:`ReproError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ApiMisuseError(ReproError):
    """The Python caller used the library API incorrectly.

    This never corresponds to behaviour of the simulated process; it means
    the host program passed inconsistent arguments (e.g. a negative size).
    """


class LayoutError(ReproError):
    """A class or type layout could not be computed (e.g. unknown base)."""


class SimulatedProcessError(ReproError):
    """Base class for failures *inside* the simulated process.

    These model events the paper discusses: crashes, aborts, allocation
    failure.  Attack scenarios catch these to classify outcomes.
    """


class SegmentationFault(SimulatedProcessError):
    """Access to an unmapped address or a permission violation.

    Parameters mirror what a debugger would report: the faulting address
    and the kind of access (``"read"``, ``"write"`` or ``"execute"``).
    """

    def __init__(self, address: int, access: str, reason: str = "") -> None:
        self.address = address
        self.access = access
        self.reason = reason
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"segmentation fault: invalid {access} at {address:#010x}{detail}"
        )


class StackSmashingDetected(SimulatedProcessError):
    """StackGuard aborted the process: the canary was clobbered on return.

    Mirrors gcc's ``*** stack smashing detected ***`` abort.
    """

    def __init__(self, function: str, expected: int, found: int) -> None:
        self.function = function
        self.expected = expected
        self.found = found
        super().__init__(
            f"*** stack smashing detected ***: {function} terminated "
            f"(canary {found:#010x} != {expected:#010x})"
        )


class BoundsCheckViolation(SimulatedProcessError):
    """A *defended* placement new refused an out-of-bounds placement.

    Raised only by the checked placement-new of Section 5.1; the unchecked
    primitive (the paper's vulnerability) never raises this.
    """

    def __init__(self, arena_size: int, object_size: int, detail: str = "") -> None:
        self.arena_size = arena_size
        self.object_size = object_size
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"placement-new bounds check failed: object of {object_size} bytes "
            f"does not fit arena of {arena_size} bytes{suffix}"
        )


class RedZoneViolation(SimulatedProcessError):
    """The shadow-memory sanitizer observed a write into a red zone."""

    def __init__(self, address: int, size: int) -> None:
        self.address = address
        self.size = size
        super().__init__(
            f"red-zone violation: {size}-byte write touching {address:#010x}"
        )


class OutOfMemory(SimulatedProcessError):
    """The simulated heap or stack is exhausted."""


class StackOverflowError_(OutOfMemory):
    """The simulated call stack ran past its segment."""


class DoubleFree(SimulatedProcessError):
    """``delete`` / ``free`` called twice on the same block."""

    def __init__(self, address: int) -> None:
        self.address = address
        super().__init__(f"double free of block at {address:#010x}")


class InvalidFree(SimulatedProcessError):
    """``delete`` / ``free`` called on a pointer that is not a live block."""

    def __init__(self, address: int) -> None:
        self.address = address
        super().__init__(f"invalid free of {address:#010x}")


class BusError(SimulatedProcessError):
    """Misaligned scalar access on a strict-alignment target (SIGBUS).

    Models the paper's §2.5 warning that placement new "does not enforce
    any checking of alignment [which] may lead to incorrect semantics,
    and to program termination" — on strict targets, termination is a
    bus error at the first misaligned load/store.
    """

    def __init__(self, address: int, alignment: int, access: str) -> None:
        self.address = address
        self.alignment = alignment
        self.access = access
        super().__init__(
            f"bus error: {access} of {alignment}-aligned scalar at "
            f"misaligned address {address:#010x}"
        )


class IllegalInstruction(SimulatedProcessError):
    """Control flow reached bytes that do not decode to an instruction."""

    def __init__(self, address: int, byte: int) -> None:
        self.address = address
        self.byte = byte
        super().__init__(
            f"illegal instruction {byte:#04x} at {address:#010x}"
        )


class NonExecutableMemory(SimulatedProcessError):
    """Control flow reached a page without execute permission (NX)."""

    def __init__(self, address: int) -> None:
        self.address = address
        super().__init__(
            f"attempted execution of non-executable memory at {address:#010x}"
        )


class SimulatedTimeout(SimulatedProcessError):
    """A simulated loop exceeded its instruction budget (DoS outcome)."""

    def __init__(self, budget: int) -> None:
        self.budget = budget
        super().__init__(f"simulated execution exceeded budget of {budget} steps")


class ParseError(ReproError):
    """MiniC++ source could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class AnalysisError(ReproError):
    """The static analyzer hit an internal inconsistency."""

"""The simulated program's linked-in functions ("libc" and friends).

Arc injection (Section 3.6.2) needs *existing* functions worth returning
to — "the address of a method that makes a system call in a privileged
mode".  This module registers the standard cast into a machine's text
image: ``system`` (the classic return-to-libc target), ``exit``, an
admin-only account routine (the function-pointer-subterfuge payoff of
Listing 17), and the benign landing pad legitimate returns go to.
"""

from __future__ import annotations

from typing import Any

CALLER_SYMBOL = "__caller__"


def _caller(machine: Any, *args: Any) -> None:
    """Landing pad representing the legitimate caller's resume point."""
    machine.record_event("returned-to-caller")


def _system(machine: Any, *args: Any) -> str:
    """libc ``system()`` — the canonical arc-injection target."""
    machine.record_event("system() invoked")
    machine.syscalls.append("spawn_shell")
    return "/bin/sh"


def _exit(machine: Any, *args: Any) -> None:
    """libc ``exit()``."""
    machine.record_event("exit() invoked")


def _create_student_account(machine: Any, *args: Any) -> bool:
    """The guarded routine of Listing 17 — must only run via a non-NULL,
    legitimately assigned function pointer."""
    machine.record_event("createStudentAccount() invoked")
    return True


def _grant_admin(machine: Any, *args: Any) -> bool:
    """A privileged routine never referenced by the victim's code paths:
    reachable only through pointer subterfuge."""
    machine.record_event("admin access granted")
    machine.syscalls.append("setuid")
    return True


def _log_audit(machine: Any, *args: Any) -> None:
    """A harmless routine, useful as a 'wrong but safe' transfer target."""
    machine.record_event("audit log written")


def install_standard_library(machine: Any) -> None:
    """Register the standard functions into ``machine``'s text image."""
    text = machine.text
    text.register_function(CALLER_SYMBOL, _caller, description="legit return target")
    text.register_function(
        "system", _system, privileged=True, description="libc system()"
    )
    text.register_function("exit", _exit, description="libc exit()")
    text.register_function(
        "createStudentAccount",
        _create_student_account,
        description="guarded account-creation routine (Listing 17)",
    )
    text.register_function(
        "grantAdminAccess",
        _grant_admin,
        privileged=True,
        description="privileged routine reachable only by subterfuge",
    )
    text.register_function("logAudit", _log_audit, description="benign audit hook")

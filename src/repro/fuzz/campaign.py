"""Campaign orchestration: the coverage-guided differential fuzz loop.

:class:`DifferentialFuzzer` is the single-threaded core — seed, pick,
mutate, run both oracles, promote on new coverage, dedup divergences.
:func:`run_batch` is the same loop packaged as a service-worker payload
(one *batch* of iterations against a corpus/coverage snapshot), and
:func:`run_campaign` drives whole campaigns either sequentially or as
rounds of :class:`~repro.service.jobs.FuzzCampaignJob` batches fanned
out over a :class:`~repro.service.ServiceEngine` worker pool, with
per-batch timeouts and deterministic in-order merging — the report is
byte-identical across runs for a fixed seed, at any worker count, and
across kill/resume cycles through :mod:`repro.fuzz.checkpoint`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from .checkpoint import (
    CheckpointError,
    CheckpointStore,
    checkpoint_from_fuzzer,
    restore_fuzzer,
)
from .coverage import CoverageMap, coverage_keys
from .divergence import (
    Divergence,
    auto_triage,
    divergence_from,
    fingerprint_of,
    normalized_events,
)
from .minimize import minimize_input
from .mutator import mutate
from .oracles import DEFAULT_STEP_BUDGET, OracleConfig, run_oracles
from .report import CampaignReport
from .seeds import FuzzInput, seed_inputs


@dataclass(frozen=True)
class FuzzConfig:
    """Deterministic knobs for one campaign."""

    seed: int = 1
    iterations: int = 200
    step_budget: int = DEFAULT_STEP_BUDGET
    canary: bool = True
    minimize: bool = True
    max_corpus: int = 256
    #: Execution engine: "ast", "bytecode", or "both" (see
    #: :class:`~repro.fuzz.oracles.OracleConfig.engine`).
    engine: str = "ast"

    def oracle_config(self) -> OracleConfig:
        return OracleConfig(
            step_budget=self.step_budget, canary=self.canary, engine=self.engine
        )


class CampaignInterrupted(RuntimeError):
    """A campaign stopped at a round boundary before finishing.

    Raised after the in-flight round has fully drained and (when a
    checkpoint directory is configured) a final checkpoint has been
    published — ``checkpoint_path`` names it, so the caller can print a
    resume hint.  The campaign report is intentionally *not* produced:
    a partial report would be indistinguishable from a finished one.
    """

    def __init__(self, round_index: int, remaining: int, checkpoint_path=None):
        self.round_index = round_index
        self.remaining = remaining
        self.checkpoint_path = checkpoint_path
        detail = (
            f"campaign interrupted at round {round_index} with "
            f"{remaining} iteration(s) remaining"
        )
        if checkpoint_path is not None:
            detail += f"; checkpoint written to {checkpoint_path}"
        super().__init__(detail)


class DifferentialFuzzer:
    """The sequential fuzzing core; every data structure is
    deterministic for a fixed seed and iteration count."""

    def __init__(self, config: FuzzConfig, metrics=None, store=None) -> None:
        self.config = config
        self.metrics = metrics
        #: Optional :class:`repro.regress.RegressionStore`; when set,
        #: :meth:`finalize` records every (minimized) divergence so the
        #: disagreement survives the campaign as a replayable bundle.
        self.store = store
        self.coverage = CoverageMap()
        self.corpus: list = []
        self.promoted: list = []  # inputs promoted *this* session
        self.divergences: dict = {}  # fingerprint → Divergence
        self.families: dict = {}  # family → {"static","dynamic"} reach
        self.execs = 0
        self.invalid = 0
        self.discarded = 0
        self.seeds = 0
        self.batches_failed = 0
        self.iterations_lost = 0
        self.saturations = 0
        self.record_errors = 0  # divergences that failed to persist
        self.compile_errors = 0  # sources the bytecode compiler crashed on
        self.first_compile_error = ""  # "compile-error:<hash>" of the first
        self.engine_drift = 0  # both-mode verdicts where the engines split
        self._seen: set = set()  # every key ever evaluated or enrolled
        self._corpus_keys: set = set()  # keys currently in the corpus
        self._protected = 0  # leading corpus entries exempt from eviction
        self._oracle_config = config.oracle_config()

    # -- corpus ------------------------------------------------------------

    def add_corpus(self, fuzz_input: FuzzInput, protected: bool = False) -> bool:
        """Add an input as mutation material (dedup by content).

        Corpus membership is tracked separately from the evaluated set:
        a mutant whose key is already in ``_seen`` (it was just
        executed) can still be promoted.  When the corpus is saturated,
        the oldest non-protected entry is evicted deterministically so
        the campaign keeps learning — seeds (``protected=True``) are
        never evicted, and the dropped candidate's key still enters
        ``_seen`` so it is not re-evaluated later.
        """
        key = fuzz_input.key()
        if key in self._corpus_keys:
            return False
        self._seen.add(key)
        if len(self.corpus) >= self.config.max_corpus:
            self.saturations += 1
            if self.metrics is not None:
                self.metrics.counter("fuzz.corpus_saturated").inc()
            if self._protected >= len(self.corpus):
                return False  # nothing evictable: the cap is all seeds
            evicted = self.corpus.pop(self._protected)
            self._corpus_keys.discard(evicted.key())
        self._corpus_keys.add(key)
        self.corpus.append(fuzz_input)
        if protected:
            self._protected += 1
        return True

    # -- the loop ----------------------------------------------------------

    def observe(self, fuzz_input: FuzzInput, promote: bool = True):
        """Run both oracles over one input and fold in the outcome."""
        observation = run_oracles(
            fuzz_input.source, fuzz_input.stdin, self._oracle_config
        )
        self.execs += 1
        if self.metrics is not None:
            self.metrics.counter("fuzz.execs_total").inc()
        note = observation.dynamic.engine_note
        if note.startswith("compile-error:"):
            self.compile_errors += 1
            if not self.first_compile_error:
                self.first_compile_error = note
            if self.metrics is not None:
                self.metrics.counter("bytecode.compile_errors").inc()
        if observation.dynamic.engine_drift:
            self.engine_drift += 1
            if self.metrics is not None:
                self.metrics.counter("fuzz.engine_drift").inc()
        if fuzz_input.label == "vulnerable":
            reach = self.families.setdefault(
                fuzz_input.family, {"static": False, "dynamic": False}
            )
            reach["static"] = reach["static"] or observation.static.vulnerable
            reach["dynamic"] = reach["dynamic"] or (
                observation.valid and observation.dynamic.vulnerable
            )
        if not observation.valid:
            self.invalid += 1
            return observation
        fresh = self.coverage.observe(coverage_keys(observation))
        if fresh and promote and self.add_corpus(fuzz_input):
            self.promoted.append(fuzz_input)
        div = divergence_from(observation, fuzz_input)
        if div is not None:
            known = self.divergences.get(div.fingerprint)
            if known is None:
                self.divergences[div.fingerprint] = div
                if self.metrics is not None:
                    self.metrics.counter("fuzz.divergences_total").inc()
            else:
                known.occurrences += 1
        return observation

    def run_seeds(self) -> None:
        """Evaluate and enroll the deterministic seed set."""
        for fuzz_input in seed_inputs(self.config.seed):
            self.add_corpus(fuzz_input, protected=True)
            self.observe(fuzz_input, promote=False)
            self.seeds += 1

    def fuzz(self, rng: random.Random, iterations: int) -> None:
        """``iterations`` mutate-and-observe steps over the live corpus."""
        for _ in range(iterations):
            parent = self.corpus[rng.randrange(len(self.corpus))]
            mutant = mutate(rng, parent)
            if mutant is None or mutant.key() in self._seen:
                self.discarded += 1
                continue
            self._seen.add(mutant.key())
            self.observe(mutant)

    # -- wrap-up -----------------------------------------------------------

    def _same_divergence(self, div):
        """Predicate used by the minimizer: same fingerprint survives."""

        def predicate(candidate: FuzzInput) -> bool:
            observation = run_oracles(
                candidate.source, candidate.stdin, self._oracle_config
            )
            kind = observation.divergence_kind
            if kind != div.kind:
                return False
            return (
                fingerprint_of(
                    kind,
                    observation.static.rules,
                    normalized_events(observation.dynamic.events),
                )
                == div.fingerprint
            )

        return predicate

    def finalize(self) -> CampaignReport:
        """Minimize, auto-triage, and assemble the campaign report."""
        finished = []
        for fingerprint in sorted(self.divergences):
            div = self.divergences[fingerprint]
            if self.config.minimize:
                smallest = minimize_input(
                    FuzzInput(source=div.source, stdin=div.stdin),
                    self._same_divergence(div),
                )
                div = replace(
                    div,
                    minimized_source=smallest.source,
                    minimized_stdin=smallest.stdin,
                )
            finished.append(auto_triage(div))
        if self.store is not None:
            for div in finished:
                try:
                    self.store.record_divergence(
                        div,
                        self._oracle_config,
                        meta={
                            "seed": self.config.seed,
                            "recorded_by": "fuzz-campaign",
                        },
                    )
                except (OSError, TypeError, ValueError):
                    # One bad disk write must not kill the campaign: the
                    # divergence still reaches the report; only its
                    # regression bundle is lost, and the loss is counted.
                    self.record_errors += 1
                    if self.metrics is not None:
                        self.metrics.counter("fuzz.record_errors").inc()
        if self.metrics is not None:
            self.metrics.gauge("fuzz.coverage_size").set(len(self.coverage))
            self.metrics.gauge("fuzz.corpus_size").set(len(self.corpus))
        report = CampaignReport(
            seed=self.config.seed,
            iterations=self.config.iterations,
            execs=self.execs,
            invalid=self.invalid,
            seeds=self.seeds,
            mutants_discarded=self.discarded,
            corpus_size=len(self.corpus),
            coverage=self.coverage.sorted_keys(),
            families=self.families,
        )
        report.divergences = finished
        report.batches_failed = self.batches_failed
        report.iterations_lost = self.iterations_lost
        report.corpus_saturated = self.saturations
        # Advisory only, never serialized: record failures depend on the
        # machine's disk, and the report bytes must not.
        report.record_errors = self.record_errors
        # Advisory too: which engine ran, whether the bytecode compiler
        # crashed on any source (and the first failing source hash), and
        # whether the both-mode shadow runs ever disagreed.  Kept out of
        # to_dict() so report bytes stay engine-independent.
        report.engine = self.config.engine
        report.compile_errors = self.compile_errors
        report.first_compile_error = self.first_compile_error
        report.engine_drift = self.engine_drift
        return report


# -- the service-worker batch ------------------------------------------------


def batch_rng(seed: int, round_index: int, batch_index: int) -> random.Random:
    """The deterministic RNG for one batch of one campaign."""
    return random.Random(f"fuzz/{seed}/round{round_index}/batch{batch_index}")


def run_batch(payload: dict) -> dict:
    """Worker entry: one batch of iterations against a snapshot.

    The payload carries the campaign seed, the round/batch coordinates,
    the corpus and coverage snapshots, and the oracle knobs; the result
    carries only the *deltas* (new coverage keys, promoted inputs,
    divergences) so the driver can merge batches in submission order.
    """
    config = FuzzConfig(
        seed=payload["seed"],
        iterations=payload["iterations"],
        step_budget=payload.get("step_budget", DEFAULT_STEP_BUDGET),
        canary=payload.get("canary", True),
        max_corpus=payload.get("max_corpus", 256),
        engine=payload.get("engine", "ast"),
    )
    fuzzer = DifferentialFuzzer(config)
    baseline = frozenset(payload.get("coverage", ()))
    fuzzer.coverage = CoverageMap(baseline)
    protected = payload.get("protected", 0)
    for index, entry in enumerate(payload.get("corpus", ())):
        source, stdin, family, label = entry
        fuzzer.add_corpus(
            FuzzInput(
                source=source, stdin=tuple(stdin), family=family, label=label
            ),
            # The driver's seed prefix stays immortal inside the batch
            # too; driver-promoted entries may be evicted locally when
            # the batch saturates, exactly as they may be in the driver.
            protected=index < protected,
        )
    rng = batch_rng(payload["seed"], payload["round"], payload["batch"])
    fuzzer.fuzz(rng, payload["iterations"])
    return {
        "execs": fuzzer.execs,
        "invalid": fuzzer.invalid,
        "discarded": fuzzer.discarded,
        "saturations": fuzzer.saturations,
        "compile_errors": fuzzer.compile_errors,
        "first_compile_error": fuzzer.first_compile_error,
        "engine_drift": fuzzer.engine_drift,
        "new_coverage": sorted(
            key for key in fuzzer.coverage.sorted_keys() if key not in baseline
        ),
        "new_inputs": [
            [inp.source, list(inp.stdin), inp.family, inp.label]
            for inp in fuzzer.promoted
        ],
        "divergences": [
            fuzzer.divergences[f].to_dict()
            for f in sorted(fuzzer.divergences)
        ],
    }


# -- the campaign driver -----------------------------------------------------

#: Batches submitted per round.  A fixed constant — never derived from
#: the pool size — so the batch partition, the per-batch RNG streams,
#: and therefore the report bytes are identical for any worker count.
BATCHES_PER_ROUND = 4


def _merge_batch(fuzzer: DifferentialFuzzer, result: dict) -> None:
    fuzzer.execs += result["execs"]
    fuzzer.invalid += result["invalid"]
    fuzzer.discarded += result["discarded"]
    fuzzer.saturations += result.get("saturations", 0)
    fuzzer.compile_errors += result.get("compile_errors", 0)
    if not fuzzer.first_compile_error:
        fuzzer.first_compile_error = result.get("first_compile_error", "")
    fuzzer.engine_drift += result.get("engine_drift", 0)
    if fuzzer.metrics is not None:
        fuzzer.metrics.counter("fuzz.execs_total").inc(result["execs"])
        if result.get("saturations"):
            fuzzer.metrics.counter("fuzz.corpus_saturated").inc(
                result["saturations"]
            )
        if result.get("compile_errors"):
            fuzzer.metrics.counter("bytecode.compile_errors").inc(
                result["compile_errors"]
            )
        if result.get("engine_drift"):
            fuzzer.metrics.counter("fuzz.engine_drift").inc(
                result["engine_drift"]
            )
    fuzzer.coverage.observe(result["new_coverage"])
    for source, stdin, family, label in result["new_inputs"]:
        fuzzer.add_corpus(
            FuzzInput(
                source=source, stdin=tuple(stdin), family=family, label=label
            )
        )
    for entry in result["divergences"]:
        div = Divergence.from_dict(entry)
        known = fuzzer.divergences.get(div.fingerprint)
        if known is None:
            fuzzer.divergences[div.fingerprint] = div
            if fuzzer.metrics is not None:
                fuzzer.metrics.counter("fuzz.divergences_total").inc()
        else:
            known.occurrences += div.occurrences


def _save_checkpoint(
    checkpoints, fuzzer, batch_size: int, round_index: int, remaining: int
):
    """Publish one round-boundary checkpoint (no-op without a store)."""
    if checkpoints is None:
        return None
    path = checkpoints.save(
        checkpoint_from_fuzzer(
            fuzzer,
            batch_size=batch_size,
            round_index=round_index,
            remaining=remaining,
        )
    )
    if fuzzer.metrics is not None:
        fuzzer.metrics.counter("fuzz.checkpoints_written").inc()
        fuzzer.metrics.gauge("fuzz.checkpoint_round").set(round_index)
    return path


def run_campaign(
    config: FuzzConfig,
    engine=None,
    batch_size: int = 50,
    batch_timeout: float = 120.0,
    store=None,
    checkpoint_dir=None,
    resume: bool = False,
    skip_version_check: bool = False,
    stop_event=None,
    stop_after_rounds=None,
) -> CampaignReport:
    """Run a whole campaign as deterministic rounds of batches.

    Sequential (``engine=None``) and fanned-out campaigns execute the
    *same* round/batch partition — the only difference is whether
    :func:`run_batch` runs inline or as :class:`FuzzCampaignJob` over
    the service worker pool — so the report is byte-identical at any
    worker count, including zero.  With ``store`` (a
    :class:`repro.regress.RegressionStore`) every minimized divergence
    is recorded as a replayable regression bundle.

    ``checkpoint_dir`` persists a resumable checkpoint after the seed
    pass and after every completed round; ``resume=True`` continues
    from the newest loadable checkpoint there instead of starting over
    (the checkpoint's config and batch size win over the arguments —
    anything else would fork the deterministic batch partition).  A
    checkpoint recorded under different oracle versions is refused
    unless ``skip_version_check``.

    A graceful stop — ``stop_event`` set, or ``stop_after_rounds``
    completed rounds in this invocation — drains the in-flight round,
    writes a final checkpoint, and raises :class:`CampaignInterrupted`.
    """
    metrics = engine.metrics if engine is not None else None
    checkpoints = (
        CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
    )
    if resume:
        if checkpoints is None:
            raise CheckpointError("resume requires a checkpoint directory")
        checkpoint = checkpoints.latest()
        if checkpoint is None:
            raise CheckpointError(
                f"no usable checkpoint under {checkpoints.directory}"
            )
        stale = checkpoint.stale_versions()
        if stale and not skip_version_check:
            detail = ", ".join(
                f"{key}: {recorded!r} -> {live!r}"
                for key, (recorded, live) in sorted(stale.items())
            )
            raise CheckpointError(
                f"checkpoint was recorded under different oracle versions "
                f"({detail}); restart the campaign or skip the version check"
            )
        fuzzer = restore_fuzzer(checkpoint, metrics=metrics, store=store)
        config = fuzzer.config
        batch_size = checkpoint.batch_size
        round_index = checkpoint.round_index
        remaining = checkpoint.remaining
        if metrics is not None:
            metrics.counter("fuzz.checkpoint_resumes").inc()
    else:
        fuzzer = DifferentialFuzzer(config, metrics=metrics, store=store)
        fuzzer.run_seeds()
        round_index, remaining = 0, config.iterations
        # The post-seed baseline: even a kill during round 0 resumes
        # without re-running the seed pass.
        _save_checkpoint(checkpoints, fuzzer, batch_size, round_index, remaining)

    if engine is not None:
        from ..service.jobs import NORMAL_PRIORITY, FuzzCampaignJob
        from ..service.scheduler import JobFailed

    rounds_done = 0
    while remaining > 0:
        if (stop_event is not None and stop_event.is_set()) or (
            stop_after_rounds is not None and rounds_done >= stop_after_rounds
        ):
            path = _save_checkpoint(
                checkpoints, fuzzer, batch_size, round_index, remaining
            )
            raise CampaignInterrupted(round_index, remaining, path)
        corpus_snapshot = tuple(
            (inp.source, inp.stdin, inp.family, inp.label)
            for inp in fuzzer.corpus
        )
        coverage_snapshot = fuzzer.coverage.sorted_keys()
        payloads = []
        for batch_index in range(BATCHES_PER_ROUND):
            if remaining <= 0:
                break
            size = min(batch_size, remaining)
            remaining -= size
            payloads.append(
                {
                    "seed": config.seed,
                    "round": round_index,
                    "batch": batch_index,
                    "iterations": size,
                    "corpus": corpus_snapshot,
                    "coverage": coverage_snapshot,
                    "protected": fuzzer._protected,
                    "step_budget": config.step_budget,
                    "canary": config.canary,
                    "max_corpus": config.max_corpus,
                    "engine": config.engine,
                }
            )
        if engine is None:
            for payload in payloads:
                _merge_batch(fuzzer, run_batch(payload))
        else:
            handles = [
                (
                    payload["iterations"],
                    engine.scheduler.submit(
                        FuzzCampaignJob(**payload),
                        priority=NORMAL_PRIORITY,
                        timeout=batch_timeout,
                    ),
                )
                for payload in payloads
            ]
            for size, handle in handles:
                try:
                    _merge_batch(fuzzer, handle.result())
                except JobFailed:
                    # The batch's iterations are gone, not silently
                    # absorbed: the report carries the shortfall so
                    # "N iterations" claims stay honest.
                    fuzzer.batches_failed += 1
                    fuzzer.iterations_lost += size
                    if fuzzer.metrics is not None:
                        fuzzer.metrics.counter("fuzz.iterations_lost").inc(
                            size
                        )
        round_index += 1
        rounds_done += 1
        _save_checkpoint(checkpoints, fuzzer, batch_size, round_index, remaining)
    return fuzzer.finalize()

"""Tests for segments and the flat address space."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ApiMisuseError, SegmentationFault
from repro.memory import AddressSpace, Permissions, Segment, SegmentKind


@pytest.fixture
def space():
    return AddressSpace()


class TestSegment:
    def test_contains(self):
        seg = Segment(SegmentKind.HEAP, base=0x1000, size=0x100)
        assert seg.contains(0x1000)
        assert seg.contains(0x10FF)
        assert not seg.contains(0x1100)
        assert seg.contains(0x1000, 0x100)
        assert not seg.contains(0x1000, 0x101)

    def test_read_write_roundtrip(self):
        seg = Segment(SegmentKind.HEAP, base=0x1000, size=0x100)
        seg.write(0x1010, b"hello")
        assert seg.read(0x1010, 5) == b"hello"

    def test_write_past_end_faults(self):
        seg = Segment(SegmentKind.HEAP, base=0x1000, size=0x10)
        with pytest.raises(SegmentationFault):
            seg.write(0x100C, b"12345")

    def test_unwritable_segment_faults(self):
        seg = Segment(
            SegmentKind.TEXT,
            base=0x1000,
            size=0x10,
            permissions=Permissions(read=True, write=False, execute=True),
        )
        with pytest.raises(SegmentationFault):
            seg.write(0x1000, b"x")

    def test_fill(self):
        seg = Segment(SegmentKind.BSS, base=0, size=16)
        seg.fill(4, 8, 0xAA)
        assert seg.read(4, 8) == b"\xaa" * 8
        assert seg.read(0, 4) == b"\x00" * 4

    def test_fill_rejects_bad_byte(self):
        seg = Segment(SegmentKind.BSS, base=0, size=16)
        with pytest.raises(ApiMisuseError):
            seg.fill(0, 4, 300)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ApiMisuseError):
            Segment(SegmentKind.BSS, base=0, size=0)
        with pytest.raises(ApiMisuseError):
            Segment(SegmentKind.BSS, base=-4, size=16)

    def test_describe_maps_style(self):
        seg = Segment(SegmentKind.STACK, base=0xBFFF0000, size=0x10000)
        assert seg.describe() == "bfff0000-c0000000 rwx stack"


class TestAddressSpace:
    def test_default_segments_present(self, space):
        kinds = {seg.kind for seg in space.segments}
        assert kinds == set(SegmentKind)

    def test_segments_do_not_overlap(self, space):
        ordered = sorted(space.segments, key=lambda s: s.base)
        for before, after in zip(ordered, ordered[1:]):
            assert before.end <= after.base

    def test_unmapped_read_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.read(0x1000, 4)

    def test_unmapped_write_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.write(0x1000, b"\x00")

    def test_cross_segment_write_faults(self, space):
        bss = space.segment(SegmentKind.BSS)
        with pytest.raises(SegmentationFault):
            space.write(bss.end - 2, b"\x00" * 8)

    def test_nx_stack_configuration(self):
        space = AddressSpace(nx_stack=True)
        assert not space.segment(SegmentKind.STACK).permissions.execute
        assert AddressSpace().segment(SegmentKind.STACK).permissions.execute

    def test_typed_int_roundtrip(self, space):
        base = space.segment(SegmentKind.BSS).base
        space.write_int(base, -42)
        assert space.read_int(base) == -42

    def test_typed_double_roundtrip(self, space):
        base = space.segment(SegmentKind.BSS).base
        space.write_double(base, 3.9)
        assert space.read_double(base) == 3.9

    def test_typed_pointer_roundtrip(self, space):
        base = space.segment(SegmentKind.BSS).base
        space.write_pointer(base, 0x08048000)
        assert space.read_pointer(base) == 0x08048000

    def test_c_string_roundtrip(self, space):
        base = space.segment(SegmentKind.HEAP).base
        space.write_c_string(base, "alice")
        assert space.read_c_string(base) == "alice"

    def test_strncpy_copies_exactly_count(self, space):
        base = space.segment(SegmentKind.BSS).base
        space.write(base, b"\xff" * 16)
        space.strncpy(base, "ab", 8)
        assert space.read(base, 8) == b"ab\x00\x00\x00\x00\x00\x00"
        assert space.read(base + 8, 8) == b"\xff" * 8

    def test_memmove(self, space):
        base = space.segment(SegmentKind.HEAP).base
        space.write(base, b"abcdef")
        space.memmove(base + 8, base, 6)
        assert space.read(base + 8, 6) == b"abcdef"

    def test_access_hooks_observe_writes(self, space):
        seen = []
        space.add_access_hook(lambda addr, data, w: seen.append((addr, data, w)))
        base = space.segment(SegmentKind.BSS).base
        space.write(base, b"hi")
        space.read(base, 2)
        assert (base, b"hi", True) in seen
        assert (base, b"hi", False) in seen

    def test_hook_removal(self, space):
        seen = []
        hook = lambda addr, data, w: seen.append(addr)
        space.add_access_hook(hook)
        space.remove_access_hook(hook)
        space.write(space.segment(SegmentKind.BSS).base, b"x")
        assert not seen

    def test_is_mapped(self, space):
        bss = space.segment(SegmentKind.BSS)
        assert space.is_mapped(bss.base, bss.size)
        assert not space.is_mapped(bss.base, bss.size + 1)
        assert not space.is_mapped(0)

    def test_negative_read_rejected(self, space):
        with pytest.raises(ApiMisuseError):
            space.read(space.segment(SegmentKind.BSS).base, -1)

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=1000))
    def test_write_read_roundtrip_property(self, data, offset):
        space = AddressSpace()
        base = space.segment(SegmentKind.HEAP).base + offset
        space.write(base, data)
        assert space.read(base, len(data)) == data

    def test_describe_contains_all_segments(self, space):
        text = space.describe()
        for kind in SegmentKind:
            assert kind.value in text

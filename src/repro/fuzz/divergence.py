"""Divergences: capture, normalized fingerprints, and triage.

A divergence is one concrete input on which the static and dynamic
oracles disagree.  Its *fingerprint* hashes only the normalized
disagreement — the kind, the rule ids, and the vulnerability-relevant
event kinds — never addresses or source text, so a campaign reports
each distinct disagreement once no matter how many mutants reach it.

Some disagreements are inherent to comparing a whole-input-space static
judgment with a single concrete run; :func:`auto_triage` labels those
known-benign classes so a campaign can insist on *zero silent*
disagreements while still surfacing anything new.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from .oracles import VULNERABLE_EVENTS, Observation
from .seeds import FuzzInput

#: Rules whose ERROR-grade claim quantifies over attacker inputs.
_TAINT_RULES = frozenset(
    {"PN-TAINTED-COUNT", "PN-TAINTED-FIELD", "PN-TAINTED-COPY-LOOP"}
)

#: Faults that indicate resource exhaustion rather than memory abuse.
_RESOURCE_FAULTS = frozenset({"fault:OutOfMemory", "fault:StackOverflowError_"})


def normalized_events(events: tuple) -> tuple:
    """The vulnerability-relevant event kinds, sorted.

    ``placement-fit`` is kept even though it is benign: triage rules
    use its absence to recognize runs with no placement activity at
    all (wild-pointer faults, plain crashes).
    """
    return tuple(
        sorted(
            kind
            for kind in events
            if kind in VULNERABLE_EVENTS
            or kind == "placement-fit"
            or kind.startswith("fault:")
        )
    )


def fingerprint_of(kind: str, rules: tuple, events: tuple) -> str:
    """Stable id of one normalized disagreement."""
    text = "|".join((kind, ",".join(sorted(rules)), ",".join(sorted(events))))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class Divergence:
    """One deduplicated oracle disagreement."""

    fingerprint: str
    kind: str  # "static-only" | "dynamic-only"
    static_rules: tuple
    dynamic_events: tuple  # normalized
    family: str
    entry: str
    source: str
    stdin: tuple
    minimized_source: str = ""
    minimized_stdin: tuple = ()
    triage: str = ""  # non-empty = known-benign, with the reason
    occurrences: int = 1

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "static_rules": list(self.static_rules),
            "dynamic_events": list(self.dynamic_events),
            "family": self.family,
            "entry": self.entry,
            "source": self.source,
            "stdin": list(self.stdin),
            "minimized_source": self.minimized_source,
            "minimized_stdin": list(self.minimized_stdin),
            "triage": self.triage,
            "occurrences": self.occurrences,
            "status": "known-benign" if self.triage else "open",
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Divergence":
        return cls(
            fingerprint=data["fingerprint"],
            kind=data["kind"],
            static_rules=tuple(data["static_rules"]),
            dynamic_events=tuple(data["dynamic_events"]),
            family=data.get("family", ""),
            entry=data.get("entry", ""),
            source=data["source"],
            stdin=tuple(data.get("stdin", ())),
            minimized_source=data.get("minimized_source", ""),
            minimized_stdin=tuple(data.get("minimized_stdin", ())),
            triage=data.get("triage", ""),
            occurrences=data.get("occurrences", 1),
        )


def divergence_from(observation: Observation, fuzz_input: FuzzInput):
    """Build a :class:`Divergence` when the observation disagrees."""
    kind = observation.divergence_kind
    if kind is None:
        return None
    events = normalized_events(observation.dynamic.events)
    rules = observation.static.rules
    return Divergence(
        fingerprint=fingerprint_of(kind, rules, events),
        kind=kind,
        static_rules=rules,
        dynamic_events=events,
        family=fuzz_input.family,
        entry=observation.entry,
        source=fuzz_input.source,
        stdin=fuzz_input.stdin,
    )


# -- triage ------------------------------------------------------------------


def _triage_taint_quantifier(div: Divergence) -> bool:
    """Static taint rules claim "some attacker input overflows"; a run
    whose concrete stdin stayed in bounds is not a refutation."""
    errors = set(div.static_rules) & _TAINT_RULES
    return div.kind == "static-only" and bool(errors)


def _triage_latent_exposure(div: Divergence) -> bool:
    """Warning-grade exposure rules (leak/no-sanitize) describe residue
    that leaks only when secret bytes are actually present; a mutant
    that lost its fill or sink path goes runtime-clean."""
    return (
        div.kind == "static-only"
        and bool(div.static_rules)
        and set(div.static_rules) <= {"PN-NO-SANITIZE", "PN-LEAK", "PN-MISALIGNED", "PN-UNKNOWN-ARENA", "PN-VPTR-RISK"}
    )


def _triage_unbounded_loop(div: Divergence) -> bool:
    """A mutated loop bound spins forever without any placement abuse;
    generic termination is outside the placement-new detector's scope."""
    return (
        div.kind == "dynamic-only"
        and "dos-timeout" in div.dynamic_events
        and "placement-overflow" not in div.dynamic_events
    )


def _triage_resource_exhaustion(div: Divergence) -> bool:
    """Mutated allocation sizes exhaust the simulated heap/stack —
    resource sizing, not the paper's memory-error class."""
    faults = {e for e in div.dynamic_events if e.startswith("fault:")}
    return (
        div.kind == "dynamic-only"
        and bool(faults)
        and faults <= _RESOURCE_FAULTS
        and "placement-overflow" not in div.dynamic_events
    )


def _triage_unexercised_confusion(div: Divergence) -> bool:
    """PN-TYPE-CONFUSION marks a mis-typed binding whose far-field
    writes *would* overflow; a run that never performs such a write
    stays clean without refuting the claim."""
    return div.kind == "static-only" and "PN-TYPE-CONFUSION" in div.static_rules


def _triage_wild_pointer(div: Divergence) -> bool:
    """A mutant faults through an uninitialized/dangling pointer with no
    placement new anywhere in the run; that memory error is real but
    not in the placement-new class the detector targets."""
    faults = {e for e in div.dynamic_events if e.startswith("fault:")}
    other = set(div.dynamic_events) - faults
    return (
        div.kind == "dynamic-only"
        and bool(faults)
        and faults <= {"fault:SegmentationFault", "fault:BusError"}
        and other <= {"segment-faulted"}
    )


#: (label, predicate, reason) — first match wins.
TRIAGE_RULES = (
    (
        "taint-quantifier",
        _triage_taint_quantifier,
        "static taint rules quantify over all attacker inputs; this "
        "run's concrete stdin stayed within bounds",
    ),
    (
        "unexercised-confusion",
        _triage_unexercised_confusion,
        "the mis-typed binding makes far-field writes overflow, but "
        "this concrete run never wrote past the allocation",
    ),
    (
        "latent-exposure",
        _triage_latent_exposure,
        "warning-grade exposure (residue/alignment) needs secret bytes "
        "and a live sink path; this input has neither at runtime",
    ),
    (
        "unbounded-loop",
        _triage_unbounded_loop,
        "loop spins past the step budget without any placement abuse; "
        "generic non-termination is outside the detector's scope",
    ),
    (
        "resource-exhaustion",
        _triage_resource_exhaustion,
        "allocation sizes exhaust the simulated heap/stack; resource "
        "sizing is outside the placement-new bug class",
    ),
    (
        "wild-pointer",
        _triage_wild_pointer,
        "segmentation fault through a wild/uninitialized pointer with "
        "no placement-new activity in the run; outside the detector's "
        "bug class",
    ),
)


def auto_triage(div: Divergence) -> Divergence:
    """Label ``div`` known-benign when a triage rule recognizes it."""
    if div.triage:
        return div
    for label, predicate, reason in TRIAGE_RULES:
        if predicate(div):
            return replace(div, triage=f"{label}: {reason}")
    return div

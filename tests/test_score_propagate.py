"""Tests for blast-radius propagation and the corpus score report."""

import json

import pytest

from repro.score import (
    DEFAULT_ATTENUATION,
    Package,
    PackageGraph,
    analyze_package_source,
    demo_graph,
    diff_score_reports,
    score_graph,
    score_packages,
)


def _chain_graph():
    return PackageGraph(
        [
            Package(name="base", source=""),
            Package(name="mid", source="", imports=("base",)),
            Package(name="top", source="", imports=("mid",)),
        ]
    )


def _risk(score):
    return {"score": score, "line": 1, "trigger": "PN-OVERSIZE"}


class TestPropagationMath:
    def test_blast_radius_attenuates_by_depth(self):
        risks = {"base": [_risk(8)], "mid": [], "top": []}
        score = score_packages(_chain_graph(), risks)
        # 8 * (1 + 0.5 for mid at depth 1 + 0.25 for top at depth 2)
        assert score.entry("base").blast_radius == 8 * 1.75
        assert score.entry("mid").blast_radius == 0.0

    def test_exposure_flows_down_the_import_chain(self):
        risks = {"base": [_risk(8)], "mid": [], "top": []}
        score = score_packages(_chain_graph(), risks)
        assert score.entry("mid").exposure == 8 * 0.5
        assert score.entry("top").exposure == 8 * 0.25

    def test_leaf_blast_equals_intrinsic(self):
        risks = {"base": [], "mid": [], "top": [_risk(6)]}
        score = score_packages(_chain_graph(), risks)
        assert score.entry("top").blast_radius == 6.0

    def test_zero_attenuation_stops_propagation(self):
        risks = {"base": [_risk(8)], "mid": [], "top": []}
        score = score_packages(_chain_graph(), risks, attenuation=0.0)
        assert score.entry("base").blast_radius == 8.0
        assert score.entry("mid").exposure == 0.0

    def test_bad_attenuation_is_rejected(self):
        with pytest.raises(ValueError, match="attenuation"):
            score_packages(_chain_graph(), {}, attenuation=1.5)

    def test_missing_package_risks_are_rejected(self):
        with pytest.raises(ValueError, match="no risks"):
            score_packages(_chain_graph(), {"base": []})


class TestDemoGraph:
    """The acceptance example: propagation reorders the ranking."""

    def test_blast_ranking_differs_from_flat_ranking(self):
        score = score_graph(demo_graph())
        assert score.ranking != score.flat_ranking
        assert score.flat_ranking[0] == "tool-report"
        assert score.ranking[0] == "core-pool"

    def test_core_pool_numbers(self):
        score = score_graph(demo_graph())
        entry = score.entry("core-pool")
        assert entry.intrinsic == 5
        assert entry.dependents == 5
        assert entry.blast_radius == 15.0

    def test_totals(self):
        totals = score_graph(demo_graph()).totals
        assert totals["packages"] == 7
        assert totals["flawed_packages"] == 2
        assert totals["max_blast_radius"] == 15.0


class TestReport:
    def test_to_json_is_byte_stable(self):
        first = score_graph(demo_graph()).to_json()
        second = score_graph(demo_graph()).to_json()
        assert first == second
        document = json.loads(first)
        assert list(document) == sorted(document)

    def test_report_carries_fingerprint(self):
        from repro.score import scoring_versions

        document = json.loads(score_graph(demo_graph()).to_json())
        assert document["fingerprint"] == scoring_versions()
        assert document["attenuation"] == DEFAULT_ATTENUATION

    def test_render_lists_ranking(self):
        text = score_graph(demo_graph()).render()
        lines = text.splitlines()
        assert lines[1].startswith("core-pool")
        assert "2/7 packages flawed" in lines[-1]

    def test_render_top_truncates(self):
        text = score_graph(demo_graph()).render(top=2)
        assert len(text.splitlines()) == 4  # header + 2 rows + totals


class TestAnalyzePackageSource:
    def test_risks_are_sorted_and_jsonable(self):
        source = demo_graph().package("core-pool").source
        risks = analyze_package_source(source, "core-pool")
        assert [r["trigger"] for r in risks] == ["PN-NO-SANITIZE", "PN-LEAK"]
        assert json.dumps(risks)

    def test_clean_source_has_no_risks(self):
        assert analyze_package_source("void f() { int x = 1; }\n") == []


class TestDiff:
    def test_identical_reports_have_no_differences(self):
        document = score_graph(demo_graph()).to_dict()
        assert diff_score_reports(document, document) == []

    def test_score_and_ranking_changes_are_reported(self):
        before = score_graph(demo_graph()).to_dict()
        after = score_graph(demo_graph(), attenuation=0.0).to_dict()
        lines = diff_score_reports(before, after)
        assert any("core-pool blast_radius" in line for line in lines)
        assert any(line.startswith("ranking:") for line in lines)

    def test_fingerprint_drift_is_reported_first(self):
        before = score_graph(demo_graph()).to_dict()
        after = json.loads(json.dumps(before))
        after["fingerprint"]["threat_registry"] = "something-else"
        lines = diff_score_reports(before, after)
        assert lines[0].startswith("fingerprint threat_registry")

    def test_package_set_changes_are_reported(self):
        before = score_graph(demo_graph()).to_dict()
        after = json.loads(json.dumps(before))
        after["packages"] = [
            p for p in after["packages"] if p["name"] != "tool-report"
        ]
        lines = diff_score_reports(before, after)
        assert "package removed: tool-report" in lines

"""Memory leaks from placement new — Section 4.5, Listing 23.

Each loop iteration heap-allocates a ``GradStudent`` (32 bytes), places a
``Student`` over it, and releases the arena *at the Student's size* —
"the amount of memory leaked per iteration is the difference in the
size".  The scenario measures exactly that, and optionally pushes the
loop until the heap is gone, the paper's DoS-by-leak endgame.
"""

from __future__ import annotations

from ..core.new_expr import new_object
from ..errors import OutOfMemory
from ..workloads.classes import make_student_classes
from .base import AttackResult, AttackScenario, Environment


class MemoryLeakAttack(AttackScenario):
    """Listing 23: leak = sizeof(GradStudent) − sizeof(Student) per pass."""

    name = "memory-leak"
    paper_ref = "§4.5, Listing 23"
    description = "arena freed at believed (smaller) size leaks the delta"

    def __init__(self, iterations: int = 100, until_exhaustion: bool = False) -> None:
        self.iterations = iterations
        self.until_exhaustion = until_exhaustion

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        grad_size = machine.sizeof(grad_cls)
        student_size = machine.sizeof(student_cls)
        expected_per_iteration = grad_size - student_size

        completed = 0
        exhausted = False
        limit = 10**9 if self.until_exhaustion else self.iterations
        if self.until_exhaustion:
            # The server has been up a while: most of the heap is in
            # legitimate use, so the leak's endgame arrives within a
            # realistic number of requests (keeps the loop — and the
            # allocator's first-fit walk — small).
            ballast = machine.heap.largest_free_block() - 8192
            if ballast > 0:
                machine.heap.allocate(ballast)
        try:
            for _ in range(limit):
                stud = new_object(machine, grad_cls)
                st = env.place(
                    machine, stud.address, student_cls, arena_size=grad_size
                )
                # The program frees "the memory of st" — i.e. it returns
                # only sizeof(Student) bytes to its own pool accounting.
                machine.tracker.mark_freed(st.address)
                machine.heap.free(st.address)
                # ... but the heap block was grad-sized; model the
                # program-level pool fragmentation by immediately
                # re-reserving the leaked tail so it is never reusable.
                machine.heap.allocate(expected_per_iteration)
                completed += 1
        except OutOfMemory:
            exhausted = True

        leaked = completed * expected_per_iteration
        return self.result(
            env,
            succeeded=(leaked > 0 and (exhausted or completed == self.iterations)),
            machine=machine,
            iterations=completed,
            leak_per_iteration=expected_per_iteration,
            total_leaked=leaked,
            heap_exhausted=exhausted,
        )


class TrackedLeakMeasurement(AttackScenario):
    """The same loop, measured through the allocation tracker (the
    cleaner accounting used by experiment E12)."""

    name = "memory-leak-tracked"
    paper_ref = "§4.5, Listing 23"
    description = "tracker-based leak accounting per iteration"

    def __init__(self, iterations: int = 50) -> None:
        self.iterations = iterations

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()

        per_iteration: list[int] = []
        for _ in range(self.iterations):
            before = machine.tracker.leaked_bytes
            arena = new_object(machine, grad_cls)
            env.place(machine, arena.address, student_cls, arena_size=arena.size)
            machine.tracker.mark_freed(arena.address)
            machine.heap.free(arena.address)
            per_iteration.append(machine.tracker.leaked_bytes - before)

        expected = machine.sizeof(grad_cls) - machine.sizeof(student_cls)
        uniform = all(delta == expected for delta in per_iteration)
        return self.result(
            env,
            succeeded=(uniform and machine.tracker.leaked_bytes > 0),
            machine=machine,
            leak_per_iteration=expected,
            total_leaked=machine.tracker.leaked_bytes,
            uniform=uniform,
        )

"""E8 — function- and variable-pointer subterfuge (§3.9–3.10).

Claims: a NULL-guarded function pointer is rewritten *and thereby
enabled* (Listing 17); a ``char*`` global is redirected to an attacker
address, changing what later code reads or crashing it (Listing 18).
"""

from repro.attacks import (
    UNPROTECTED,
    FunctionPointerAttack,
    VariablePointerAttack,
)

from conftest import print_table


def run_experiment():
    fn = FunctionPointerAttack().run(UNPROTECTED)
    var_secret = VariablePointerAttack(redirect_to_secret=True).run(UNPROTECTED)
    var_crash = VariablePointerAttack(redirect_to_secret=False).run(UNPROTECTED)
    print_table(
        "E8: pointer subterfuge (Listings 17-18)",
        ["attack", "pointer after", "effect"],
        [
            ("function pointer", fn.detail["pointer_value"], f"invoked {fn.detail['invoked']}"),
            ("variable pointer → secret", var_secret.detail["pointer_after"], var_secret.detail["dereference"]),
            ("variable pointer → garbage", var_crash.detail["pointer_after"], var_crash.detail["dereference"]),
        ],
    )
    return fn, var_secret, var_crash


def test_e8_shape(benchmark):
    fn, var_secret, var_crash = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    assert fn.succeeded and fn.detail["invoked"] == "grantAdminAccess"
    assert fn.detail["guard_blocked_before"]  # was NULL: never callable
    assert var_secret.succeeded
    assert var_secret.detail["dereference"] == "TOPSECRETTOKEN"
    assert var_crash.detail["dereference"] == "SIGSEGV"

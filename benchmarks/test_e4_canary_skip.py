"""E4 — the StackGuard experiment (§3.6.1 + §5.2).

Claim: the naive smash aborts with "stack smashing detected"; the
selective overwrite — non-positive inputs skipping the canary and FP —
reaches the attacker's target with the canary intact.
"""

from repro.attacks import STACKGUARD, UNPROTECTED, naive_smash, selective_overwrite

from conftest import print_table


def run_experiment():
    rows = []
    outcomes = {}
    for env in (UNPROTECTED, STACKGUARD):
        for build in (naive_smash, lambda: selective_overwrite(env)):
            attack = build()
            result = attack.run(env)
            outcomes[(env.label, attack.name)] = result
            rows.append(
                (
                    env.label,
                    attack.name,
                    "yes" if result.succeeded else "no",
                    result.detected_by or "-",
                    result.detail.get("canary_intact", "-"),
                )
            )
    print_table(
        "E4: naive vs selective overwrite under StackGuard (§5.2)",
        ["build", "attack", "shell?", "detected by", "canary intact"],
        rows,
    )
    return outcomes


def test_e4_shape(benchmark):
    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Unprotected: both variants win.
    assert outcomes[("unprotected", "stack-naive-smash")].succeeded
    assert outcomes[("unprotected", "stack-selective-overwrite")].succeeded
    # StackGuard: naive detected, selective evades with canary intact.
    naive = outcomes[("stackguard", "stack-naive-smash")]
    selective = outcomes[("stackguard", "stack-selective-overwrite")]
    assert naive.detected_by == "stackguard"
    assert selective.succeeded
    assert selective.detail["canary_intact"] is True

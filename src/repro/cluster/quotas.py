"""Per-tenant token-bucket quotas for the cluster front-end.

Each tenant (the ``X-Tenant`` request header; ``"anon"`` when absent)
gets its own :class:`TokenBucket`: ``capacity`` tokens that refill at
``refill_rate`` tokens/second.  A request costs one token per job it
submits (a 50-source sweep costs 50), so burst size and sustained rate
are controlled by two independent knobs.  Buckets are fully isolated —
one tenant draining its bucket never throttles another — and the
manager's clock is injectable, so quota edge cases are tested with a
deterministic fake clock instead of sleeps.

When a bucket cannot cover a request the manager answers with the
exact ``retry_after`` seconds until enough tokens exist; the HTTP
layer surfaces that as ``429`` with a ``Retry-After`` header and a
``retry_after`` JSON field the async client honors.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

#: Tenant assumed when a request carries no ``X-Tenant`` header.
DEFAULT_TENANT = "anon"


class TokenBucket:
    """One tenant's refillable budget.  Not thread-safe on its own."""

    def __init__(self, capacity: float, refill_rate: float, now: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if refill_rate <= 0:
            raise ValueError("refill_rate must be > 0")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.tokens = float(capacity)
        self.updated = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.refill_rate)
        self.updated = now

    def try_take(self, now: float, cost: float = 1.0) -> Tuple[bool, float]:
        """``(granted, retry_after)`` for a request costing ``cost`` tokens.

        A cost above ``capacity`` can never be granted; its
        ``retry_after`` is the time to a *full* bucket, after which the
        caller's best move is splitting the request.
        """
        self._refill(now)
        if self.tokens >= cost or cost <= 0:
            self.tokens -= cost
            return True, 0.0
        missing = min(cost, self.capacity) - self.tokens
        return False, missing / self.refill_rate


class QuotaManager:
    """Thread-safe tenant → bucket map with admission accounting."""

    def __init__(
        self,
        capacity: float = 64.0,
        refill_rate: float = 16.0,
        overrides: Optional[Dict[str, Tuple[float, float]]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity = capacity
        self.refill_rate = refill_rate
        #: tenant → (capacity, refill_rate) exceptions to the defaults.
        self.overrides = dict(overrides or {})
        self.clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.granted = 0
        self.throttled = 0

    def _bucket(self, tenant: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            capacity, rate = self.overrides.get(
                tenant, (self.capacity, self.refill_rate)
            )
            bucket = TokenBucket(capacity, rate, now=now)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, cost: float = 1.0) -> Tuple[bool, float]:
        """Charge ``tenant`` for a request; ``(granted, retry_after)``."""
        tenant = tenant or DEFAULT_TENANT
        now = self.clock()
        with self._lock:
            granted, retry_after = self._bucket(tenant, now).try_take(now, cost)
            if granted:
                self.granted += 1
            else:
                self.throttled += 1
            return granted, retry_after

    def stats(self) -> dict:
        """Accounting snapshot folded into the cluster metrics document."""
        with self._lock:
            now = self.clock()
            tenants = {}
            for tenant in sorted(self._buckets):
                bucket = self._buckets[tenant]
                bucket._refill(now)
                tenants[tenant] = {
                    "capacity": bucket.capacity,
                    "refill_rate": bucket.refill_rate,
                    "tokens": round(bucket.tokens, 4),
                }
            return {
                "granted": self.granted,
                "throttled": self.throttled,
                "tenants": tenants,
            }


def parse_override(spec: str) -> Tuple[str, Tuple[float, float]]:
    """One ``tenant=capacity:rate`` CLI clause → an overrides entry.

    Raises :class:`ValueError` on malformed clauses so the CLI can
    reject them with exit code 2.
    """
    tenant, _, budget = spec.partition("=")
    capacity_text, _, rate_text = budget.partition(":")
    if not tenant or not capacity_text or not rate_text:
        raise ValueError(
            f"malformed quota override '{spec}' (want tenant=capacity:rate)"
        )
    capacity, rate = float(capacity_text), float(rate_text)
    if capacity <= 0 or rate <= 0:
        raise ValueError(f"quota override '{spec}' must be positive")
    return tenant, (capacity, rate)

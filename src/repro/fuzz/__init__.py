"""repro.fuzz: coverage-guided differential fuzzing campaigns.

Generates and mutates MiniC++ programs, runs each through both the
static placement-new detector and the dynamic interpreter + simulated
address space, and treats *disagreement between the two oracles* as the
signal.  Coverage feedback (detector rule ids ∪ simulator event kinds)
decides which mutants join the live corpus; divergences are minimized,
fingerprinted, auto-triaged, and written to a deterministic campaign
report.  See docs/FUZZING.md for the campaign lifecycle.
"""

from .campaign import (
    CampaignInterrupted,
    DifferentialFuzzer,
    FuzzConfig,
    batch_rng,
    run_batch,
    run_campaign,
)
from .checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    CheckpointStore,
    checkpoint_from_fuzzer,
    restore_fuzzer,
)
from .coverage import CoverageMap, coverage_keys
from .divergence import (
    TRIAGE_RULES,
    Divergence,
    auto_triage,
    divergence_from,
    fingerprint_of,
    normalized_events,
)
from .minimize import minimize_input
from .mutator import mutate
from .oracles import (
    VULNERABLE_EVENTS,
    DynamicVerdict,
    Observation,
    OracleConfig,
    StaticVerdict,
    dynamic_verdict,
    run_oracles,
    static_verdict,
)
from .report import CampaignReport
from .seeds import FuzzInput, corpus_seeds, generator_seeds, seed_inputs

__all__ = [
    "CampaignCheckpoint",
    "CampaignInterrupted",
    "CampaignReport",
    "CheckpointError",
    "CheckpointStore",
    "CoverageMap",
    "DifferentialFuzzer",
    "Divergence",
    "DynamicVerdict",
    "FuzzConfig",
    "FuzzInput",
    "Observation",
    "OracleConfig",
    "StaticVerdict",
    "TRIAGE_RULES",
    "VULNERABLE_EVENTS",
    "auto_triage",
    "batch_rng",
    "checkpoint_from_fuzzer",
    "corpus_seeds",
    "coverage_keys",
    "divergence_from",
    "dynamic_verdict",
    "fingerprint_of",
    "generator_seeds",
    "minimize_input",
    "mutate",
    "normalized_events",
    "restore_fuzzer",
    "run_batch",
    "run_campaign",
    "run_oracles",
    "seed_inputs",
    "static_verdict",
]

// package: pkg-06-leak
char pool[128];
void run() {
  readFile("/etc/passwd", pool, 128);
  memset(pool, 0, 128);
  char *userdata = new (pool) char[128];
  store(userdata);
}

"""Memory pools — the idiom placement new exists to serve.

The paper motivates placement new with memory pools (Section 1: *"the
program can make use of memory pools and is more efficient"*; Section 4:
*"a memory pool is already created and any new buffer needed is created
out of that memory pool using placement new"*).  A :class:`MemoryPool` is
a fixed arena carved out of any segment; placement allocations inside it
are plain bump allocations with **no enforcement** that the request fits
— enforcing that is the *programmer's* job, which is the whole
vulnerability.

:class:`CheckedMemoryPool` is the Section 5.1 corrected version.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ApiMisuseError, BoundsCheckViolation
from .address_space import AddressSpace
from .alignment import align_up


@dataclass(frozen=True)
class PoolStats:
    """Counters describing a pool's usage."""

    capacity: int
    reserved: int
    placements: int
    oversize_placements: int

    @property
    def available(self) -> int:
        """Bytes the pool believes remain (may be negative after abuse)."""
        return self.capacity - self.reserved


class MemoryPool:
    """A fixed arena supporting unchecked placement-style suballocation."""

    def __init__(
        self,
        space: AddressSpace,
        base: int,
        capacity: int,
        name: str = "pool",
    ) -> None:
        if capacity <= 0:
            raise ApiMisuseError(f"pool capacity must be positive, got {capacity}")
        if not space.is_mapped(base, 1):
            raise ApiMisuseError(f"pool base {base:#010x} is unmapped")
        self._space = space
        self._base = base
        self._capacity = capacity
        self._name = name
        self._cursor = base
        self._placements = 0
        self._oversize = 0

    @property
    def base(self) -> int:
        """First address of the arena."""
        return self._base

    @property
    def capacity(self) -> int:
        """Declared size of the arena in bytes."""
        return self._capacity

    @property
    def end(self) -> int:
        """One past the declared end of the arena."""
        return self._base + self._capacity

    @property
    def name(self) -> str:
        """Human-readable label for diagnostics."""
        return self._name

    def reserve(self, size: int, alignment: int = 1) -> int:
        """Bump-allocate ``size`` bytes from the pool — *unchecked*.

        Deliberately does **not** verify that the reservation fits inside
        the pool: like ``new (pool) char[n]``, it trusts the caller's
        size.  A reservation running past :attr:`end` is recorded in
        :attr:`stats` but succeeds, handing back a pointer whose use will
        overflow whatever neighbours the pool.
        """
        if size <= 0:
            raise ApiMisuseError(f"reservation size must be positive, got {size}")
        address = align_up(self._cursor, alignment)
        self._cursor = address + size
        self._placements += 1
        if self._cursor > self.end:
            self._oversize += 1
        return address

    def reset(self) -> None:
        """Rewind the pool for reuse (contents are *not* sanitized —
        the Listing 21/22 information-leak precondition)."""
        self._cursor = self._base

    def sanitize(self, byte: int = 0) -> None:
        """memset the whole arena (the Section 5.1 leak countermeasure)."""
        self._space.fill(self._base, self._capacity, byte)

    @property
    def stats(self) -> PoolStats:
        """Usage counters, including how many placements overran."""
        return PoolStats(
            capacity=self._capacity,
            reserved=self._cursor - self._base,
            placements=self._placements,
            oversize_placements=self._oversize,
        )


class CheckedMemoryPool(MemoryPool):
    """Section 5.1 "correct coding": refuse oversize placements.

    The corrected discipline — at each placement point *"it has to be
    enforced that the size of the new object or array B being placed in a
    memory arena of another object/array A should never be larger"*.
    """

    def reserve(self, size: int, alignment: int = 1) -> int:
        address = align_up(self._cursor, alignment)
        if size <= 0:
            raise ApiMisuseError(f"reservation size must be positive, got {size}")
        if address + size > self.end:
            raise BoundsCheckViolation(
                arena_size=self.end - address if self.end > address else 0,
                object_size=size,
                detail=f"pool '{self.name}' rejected oversize placement",
            )
        return super().reserve(size, alignment)


def pool_in_segment(
    space: AddressSpace,
    segment_base: int,
    capacity: int,
    name: str = "pool",
    checked: bool = False,
    offset: int = 0,
) -> MemoryPool:
    """Convenience constructor placing a pool at ``segment_base+offset``."""
    cls = CheckedMemoryPool if checked else MemoryPool
    return cls(space, segment_base + offset, capacity, name=name)

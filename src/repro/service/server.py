"""``repro-serve``: a stdlib-only JSON API over the service engine.

Endpoints (all responses are ``application/json``):

``GET /healthz``
    Liveness: engine version, worker count, cache state.
``GET /metrics``
    The full metrics snapshot (scheduler counters/histograms, cache
    accounting, pool shape, fault-injection counts).  JSON by default;
    ``?format=prom`` — or an ``Accept`` header asking for ``text/plain``
    / OpenMetrics, as Prometheus scrapers send — switches to the
    Prometheus text exposition format.
``GET /trace/<key>``
    The span record (trace id + per-stage spans) of the most recent
    submission of job ``<key>``; ``GET /trace`` lists traced keys.
``GET /cache/<key>`` / ``POST /cache/<key>``
    The shard-local result-cache peer protocol used by the cluster
    front-end (:mod:`repro.cluster`): GET probes this process's cache
    without computing (200 with ``{"key", "tier", "result"}`` or 404),
    POST ``{"result": {...}}`` warms it with a result computed on
    another shard.
``POST /analyze``
    ``{"source": "..."}`` or ``{"corpus": true}`` — detector findings.
    Optional ``label`` and ``legacy`` fields.
``POST /attacks``
    ``{"attack": "name", "env": "label"}`` — one attack; omit
    ``attack`` to run the whole gallery in parallel.
``POST /matrix``
    ``{"attacks": [...], "defenses": [...]}`` (both optional) — the E14
    matrix, decomposed into parallel per-cell jobs.
``POST /exec``
    ``{"source": "...", "entry": "main", "args": [], "stdin": [],
    "canary": false, "engine": "ast"}`` — run on the simulated machine
    (``"engine": "bytecode"`` runs the compiled VM, falling back to
    the interpreter for uncompilable sources).

Requests are executed through the engine's scheduler, so repeated
identical requests are served from the result cache, and the server
stays responsive under load: ``ThreadingHTTPServer`` handles sockets
while the bounded work queue sheds excess load as HTTP 503.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .engine import ServiceEngine
from .scheduler import JobFailed, QueueFull


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the engine for its handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], engine: ServiceEngine):
        super().__init__(address, _ServiceHandler)
        self.engine = engine


class _ServiceHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # requests are accounted in metrics, not stderr

    def _send_json(self, status: int, body: dict) -> None:
        data = json.dumps(body, sort_keys=True).encode()
        self._send_bytes(status, data, "application/json")

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_bytes(status, text.encode(), content_type)

    def _send_bytes(self, status: int, data: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except ValueError:
            return None
        return body if isinstance(body, dict) else None

    @property
    def engine(self) -> ServiceEngine:
        return self.server.engine

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        self.engine.metrics.counter("http.requests").inc()
        parts = urlsplit(self.path)
        path = parts.path
        if path == "/healthz":
            self._send_json(200, self.engine.health())
        elif path == "/metrics":
            if self._wants_prometheus(parts.query):
                # types=0: omit "# TYPE" lines so the cluster front-end
                # can concatenate per-shard renders into one scrape
                emit_types = parse_qs(parts.query).get("types", ["1"])[0] != "0"
                self._send_text(
                    200,
                    self.engine.metrics_prometheus(emit_types=emit_types),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_json(200, self.engine.metrics_snapshot())
        elif path == "/trace" or path == "/trace/":
            self._send_json(200, {"keys": self.engine.traces.keys()})
        elif path.startswith("/trace/"):
            key = path[len("/trace/"):]
            trace = self.engine.trace(key)
            if trace is None:
                self._send_json(404, {"error": f"no trace recorded for job '{key}'"})
            else:
                self._send_json(200, trace)
        elif path.startswith("/cache/"):
            key = path[len("/cache/"):]
            value, tier = self.engine.cache_lookup(key)
            if value is None:
                self._send_json(404, {"error": f"no cached result for '{key}'"})
            else:
                self._send_json(200, {"key": key, "tier": tier, "result": value})
        else:
            self.engine.metrics.counter("http.not_found").inc()
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def _wants_prometheus(self, query: str) -> bool:
        """Prometheus text via ``?format=prom`` or scraper Accept headers."""
        requested = parse_qs(query).get("format", [""])[0]
        if requested:
            return requested in ("prom", "prometheus", "text")
        accept = self.headers.get("Accept", "")
        return "text/plain" in accept or "openmetrics" in accept

    def do_POST(self) -> None:  # noqa: N802
        self.engine.metrics.counter("http.requests").inc()
        body = self._read_body()
        if body is None:
            self.engine.metrics.counter("http.bad_request").inc()
            self._send_json(400, {"error": "request body must be a JSON object"})
            return
        try:
            if self.path == "/analyze":
                self._send_json(200, self._analyze(body))
            elif self.path == "/attacks":
                self._send_json(200, self._attacks(body))
            elif self.path == "/matrix":
                self._send_json(
                    200,
                    self.engine.matrix(
                        attacks=tuple(body.get("attacks") or ()),
                        defenses=tuple(body.get("defenses") or ()),
                    ),
                )
            elif self.path == "/exec":
                if not isinstance(body.get("source"), str):
                    raise ValueError("'source' must be a string")
                engine_name = body.get("engine", "ast")
                if engine_name not in ("ast", "bytecode"):
                    raise ValueError(
                        "'engine' must be one of: ast, bytecode"
                    )
                self._send_json(
                    200,
                    self.engine.execute(
                        source=body["source"],
                        entry=body.get("entry", "main"),
                        args=tuple(body.get("args") or ()),
                        stdin=tuple(body.get("stdin") or ()),
                        canary=bool(body.get("canary")),
                        engine=engine_name,
                    ),
                )
            elif self.path.startswith("/cache/"):
                key = self.path[len("/cache/"):]
                result = body.get("result")
                if not isinstance(result, dict):
                    raise ValueError("'result' must be a JSON object")
                stored = self.engine.cache_store(key, result)
                self._send_json(200, {"key": key, "stored": stored})
            else:
                self.engine.metrics.counter("http.not_found").inc()
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except (KeyError, TypeError, ValueError) as error:
            self.engine.metrics.counter("http.bad_request").inc()
            # KeyError's str() wraps its message in an extra repr layer
            message = (
                error.args[0]
                if isinstance(error, KeyError) and error.args
                else str(error)
            )
            self._send_json(400, {"error": str(message)})
        except QueueFull as error:
            self.engine.metrics.counter("http.overloaded").inc()
            self._send_json(503, {"error": str(error)})
        except JobFailed as error:
            self.engine.metrics.counter("http.job_failed").inc()
            self._send_json(500, {"error": str(error)})

    def _analyze(self, body: dict) -> dict:
        legacy = bool(body.get("legacy"))
        if body.get("corpus"):
            return {"reports": self.engine.corpus_sweep(legacy=legacy)}
        source = body.get("source")
        if not isinstance(source, str):
            raise ValueError("'source' must be a string (or pass corpus=true)")
        return self.engine.analyze(
            source=source, label=body.get("label", ""), legacy=legacy
        )

    def _attacks(self, body: dict) -> dict:
        from ..attacks import attack_by_name, environment_by_label

        env = body.get("env", "unprotected")
        environment_by_label(env)  # validate before queueing (KeyError → 400)
        if body.get("attack"):
            attack_by_name(body["attack"])
            return self.engine.attack(body["attack"], env=env)
        return {"results": self.engine.gallery(env=env)}


def create_server(
    engine: ServiceEngine, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind (but do not start) the API server; ``port=0`` picks a free one."""
    return ServiceHTTPServer((host, port), engine)

"""Randomized MiniC++ program generation for analyzer stress-testing.

The hand-written corpus pins down the paper's listings; the generator
produces *families* of placement-new programs with known ground truth —
random class shapes, random arena/placement pairings, optionally wrapped
in helper functions or guarded by the §5.1 ``sizeof`` idiom.  Tests
measure the detector's precision/recall over hundreds of generated
programs, and the benchmarks measure its throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_SCALARS = ("int", "double", "char", "short", "float")

#: Per-type sizes/alignments on the ILP32 target (matching symbols.py).
_SIZES = {"int": 4, "double": 8, "char": 1, "short": 2, "float": 4}
_ALIGNS = {"int": 4, "double": 8, "char": 1, "short": 2, "float": 4}


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated program with its ground truth."""

    source: str
    vulnerable: bool
    arena_size: int
    placed_size: int
    shape: str  # "direct" | "helper" | "guarded" | "tainted-array"

    @property
    def oversize(self) -> int:
        return max(self.placed_size - self.arena_size, 0)


def _layout_size(fields: list) -> int:
    """Mirror the layout engine: offsets with natural alignment, size
    rounded to the max alignment."""
    offset = 0
    max_align = 1
    for type_name in fields:
        align = _ALIGNS[type_name]
        size = _SIZES[type_name]
        offset = (offset + align - 1) // align * align + size
        max_align = max(max_align, align)
    if offset == 0:
        offset = 1
    return (offset + max_align - 1) // max_align * max_align


def _derived_size(base_fields: list, extra_fields: list) -> int:
    """Size of a derived class: the padded base subobject comes first,
    then the new members (matching the real layout pass)."""
    offset = _layout_size(base_fields)
    max_align = max((_ALIGNS[t] for t in base_fields), default=1)
    for type_name in extra_fields:
        align = _ALIGNS[type_name]
        size = _SIZES[type_name]
        offset = (offset + align - 1) // align * align + size
        max_align = max(max_align, align)
    return (offset + max_align - 1) // max_align * max_align


def _class_decl(name: str, fields: list) -> str:
    members = " ".join(
        f"{type_name} f{i};" for i, type_name in enumerate(fields)
    )
    return f"class {name} {{ public: {members} }};"


def _random_fields(rng: random.Random, count: int) -> list:
    return [rng.choice(_SCALARS) for _ in range(count)]


def generate_program(
    rng: random.Random, vulnerable: bool, shape: str | None = None
) -> GeneratedProgram:
    """Generate one program whose vulnerability status is known.

    ``shape`` picks the structural family; by default one is drawn at
    random.  ``vulnerable=True`` guarantees an oversize (or tainted)
    placement reachable at runtime; ``vulnerable=False`` guarantees the
    placement fits (or is guarded / constant-bounded).
    """
    chosen = shape or rng.choice(("direct", "helper", "guarded", "tainted-array"))
    if chosen == "tainted-array":
        return _tainted_array_program(rng, vulnerable)
    # Build two classes whose relative sizes encode the ground truth.
    small_fields = _random_fields(rng, rng.randint(1, 4))
    extra_fields = _random_fields(rng, rng.randint(1, 4))
    small_size = _layout_size(small_fields)
    big_size = _derived_size(small_fields, extra_fields)
    while big_size <= small_size:
        extra_fields.append(rng.choice(("int", "double")))
        big_size = _derived_size(small_fields, extra_fields)

    classes = (
        _class_decl("Small", small_fields)
        + "\n"
        + f"class Big : public Small {{ public: "
        + " ".join(f"{t} g{i};" for i, t in enumerate(extra_fields))
        + " };"
    )
    if vulnerable:
        arena_type, placed_type = "Small", "Big"
        arena_size, placed_size = small_size, big_size
    else:
        arena_type, placed_type = "Big", "Small"
        arena_size, placed_size = big_size, small_size

    if chosen == "direct":
        body = (
            f"void run() {{\n  {arena_type} arena;\n"
            f"  {placed_type} *p = new (&arena) {placed_type}();\n}}\n"
        )
    elif chosen == "helper":
        body = (
            f"{placed_type} *helper({arena_type} *where) {{\n"
            f"  {placed_type} *p = new (where) {placed_type}();\n"
            f"  return p;\n}}\n"
            f"void run() {{\n  {arena_type} arena;\n"
            f"  {placed_type} *p = helper(&arena);\n}}\n"
        )
    elif chosen == "guarded":
        if vulnerable:
            # A guard that does NOT protect: it compares the wrong way.
            condition = f"sizeof({placed_type}) >= sizeof({arena_type})"
        else:
            condition = f"sizeof({placed_type}) <= sizeof({arena_type})"
        body = (
            f"void run() {{\n  {arena_type} arena;\n"
            f"  if ({condition}) {{\n"
            f"    {placed_type} *p = new (&arena) {placed_type}();\n"
            f"  }}\n}}\n"
        )
    else:  # pragma: no cover - exhaustive
        raise ValueError(chosen)
    return GeneratedProgram(
        source=classes + "\n" + body,
        vulnerable=vulnerable,
        arena_size=arena_size,
        placed_size=placed_size,
        shape=chosen,
    )


def _tainted_array_program(
    rng: random.Random, vulnerable: bool
) -> GeneratedProgram:
    pool = rng.choice((32, 64, 128, 256))
    if vulnerable:
        body = (
            f"char pool[{pool}];\n"
            "void run() {\n  int n = 0;\n  cin >> n;\n"
            "  char *buf = new (pool) char[n];\n}\n"
        )
        placed = pool + 1  # unknown at compile time; attacker-sized
    else:
        constant = rng.randint(1, pool)
        body = (
            f"char pool[{pool}];\n"
            "void run() {\n"
            f"  char *buf = new (pool) char[{constant}];\n}}\n"
        )
        placed = constant
    return GeneratedProgram(
        source=body,
        vulnerable=vulnerable,
        arena_size=pool,
        placed_size=placed,
        shape="tainted-array",
    )


def generate_corpus(
    seed: int, count: int, vulnerable_ratio: float = 0.5
) -> list:
    """A reproducible batch of generated programs."""
    rng = random.Random(seed)
    programs = []
    for index in range(count):
        vulnerable = rng.random() < vulnerable_ratio
        programs.append(generate_program(rng, vulnerable))
    return programs


@dataclass(frozen=True)
class DetectorScore:
    """Precision/recall of one analyzer over a generated batch."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0


def score_detector(programs: list, flagger) -> DetectorScore:
    """Score ``flagger(source) -> bool`` against the ground truth."""
    tp = fp = tn = fn = 0
    for program in programs:
        flagged = flagger(program.source)
        if program.vulnerable and flagged:
            tp += 1
        elif program.vulnerable:
            fn += 1
        elif flagged:
            fp += 1
        else:
            tn += 1
    return DetectorScore(
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
    )

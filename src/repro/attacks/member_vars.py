"""Modification of objects — Section 3.8, Listings 16 and 10.

Listing 16 overwrites a *neighbouring object's member*
(``first.gpa`` ← ``gs->ssn[0..1]``); Listing 10 is the internal variant,
where the overflowed arena and the corrupted state live inside the same
host object (``MobilePlayer``).
"""

from __future__ import annotations

from ..workloads.classes import make_mobile_player, make_student_classes
from .base import AttackResult, AttackScenario, Environment


class MemberVariableAttack(AttackScenario):
    """Listing 16: overflow of ``stud`` rewrites ``first.gpa``."""

    name = "member-variable-overwrite"
    paper_ref = "§3.8.1, Listing 16"
    description = "adjacent stack object's gpa member rewritten via ssn[]"

    def __init__(self, ssn_words: tuple[int, int] = (0x33333333, 0x40400000)) -> None:
        self.ssn_words = ssn_words

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        machine.stdin.feed(*self.ssn_words)

        frame = machine.push_frame("addStudent")
        first = frame.local_object(student_cls, "first")
        env.place(machine, first, student_cls, 3.9, 2008, 2)
        stud = frame.local_object(student_cls, "stud")
        env.protect(machine, stud.address, stud.size)

        gpa_before = first.get("gpa")
        gs = env.place(machine, stud, grad_cls)
        gs.set_element("ssn", 0, machine.stdin.read_int())
        gs.set_element("ssn", 1, machine.stdin.read_int())
        gpa_after = first.get("gpa")

        machine.pop_frame(frame)
        adjacency = first.address - stud.end
        return self.result(
            env,
            succeeded=(gpa_after != gpa_before),
            machine=machine,
            gpa_before=gpa_before,
            gpa_after=gpa_after,
            stud_to_first_gap=adjacency,
        )


class InternalOverflowAttack(AttackScenario):
    """Listing 10: placement into ``this->stud1`` corrupts ``this->stud2``
    — the overflow never leaves the host object."""

    name = "internal-overflow"
    paper_ref = "§3.4, Listing 10"
    description = "MobilePlayer.stud1 overflow corrupts MobilePlayer.stud2"

    def execute(self, env: Environment) -> AttackResult:
        machine = env.make_machine()
        student_cls, grad_cls = make_student_classes()
        player_cls = make_mobile_player(student_cls)

        player = machine.static_object(player_cls, "player")
        from ..core.new_expr import construct

        construct(machine, player_cls, player.address)
        stud2 = player.nested("stud2")
        env.place(machine, stud2, student_cls, 3.2, 2011, 2)
        gpa_before = stud2.get("gpa")

        stud1 = player.nested("stud1")
        env.protect(machine, stud1.address, stud1.size)
        st = env.place(machine, stud1, grad_cls)
        st.set_element("ssn", 0, 0xBADC0DE)
        st.set_element("ssn", 1, 0x1)

        gpa_after = stud2.get("gpa")
        # The damage stays inside the host object's extent.
        internal = (
            stud1.address >= player.address
            and st.element_address("ssn", 2) + 4 <= player.address + player.size
        )
        return self.result(
            env,
            succeeded=(gpa_after != gpa_before),
            machine=machine,
            gpa_before=gpa_before,
            gpa_after=gpa_after,
            overflow_contained_in_host=internal,
        )

"""E23 — cluster scaling: sweep throughput at 1, 2, and 4 shards.

The claim behind docs/CLUSTER.md: the consistent-hash front-end turns
shard count into throughput.  Analyze sweeps (the detector corpus plus
generated programs) and fuzz-batch sweeps are pushed through a live
:class:`~repro.cluster.router.ClusterRouter` at 1/2/4 one-worker
shards with caching disabled, so every round pays full compute and the
only variable is the ring fan-out.  Each run records ``jobs_per_s``
and ``scaling_efficiency`` (rate relative to perfect linear scaling
over the 1-shard baseline) as ``extra_info`` riders for the BENCH
trajectory.

On hosts with ≥4 cores (CI runners) the acceptance thresholds are
asserted: ≥1.6x analyze throughput at 2 shards and ≥2.5x at 4 shards
over 1 shard; a single-core box records the numbers without the strict
assertion, since shards cannot buy parallelism the hardware lacks.  A
separate test pins the failure-path determinism number: a sweep with a
shard killed mid-flight produces bytes identical to a no-fault run.
"""

import asyncio
import json
import os

import pytest
from conftest import print_table

from repro.cluster import ClusterRouter, InProcessShard
from repro.fuzz import seed_inputs
from repro.service.jobs import AnalyzeJob, FuzzCampaignJob
from repro.workloads import corpus_sources

SHARD_COUNTS = (1, 2, 4)
GENERATED = 24  # analyze sweep: paper corpus + generated programs
FUZZ_BATCHES = 8
FUZZ_ITERATIONS = 12
ROUNDS = 3

_CORES = os.cpu_count() or 1
_BACKEND = "process" if _CORES >= max(SHARD_COUNTS) else "thread"

#: 1-shard baseline rates, filled in shard-count order by the
#: parametrized runs so later counts can report scaling efficiency.
_BASELINES: dict = {}


def _analyze_jobs():
    return [
        AnalyzeJob(source=source, label=label)
        for label, source in corpus_sources(generated=GENERATED)
    ]


def _fuzz_jobs():
    corpus = tuple(
        (inp.source, tuple(inp.stdin), inp.family, inp.label)
        for inp in seed_inputs(2011)
    )
    return [
        FuzzCampaignJob(
            seed=2011,
            batch=index,
            iterations=FUZZ_ITERATIONS,
            corpus=corpus,
            protected=len(corpus),
            step_budget=20_000,
            engine="bytecode",
        )
        for index in range(FUZZ_BATCHES)
    ]


class _Cluster:
    """A live router on a private event loop, caching disabled."""

    def __init__(self, shard_count: int):
        self.loop = asyncio.new_event_loop()
        self.router = self.loop.run_until_complete(self._build(shard_count))

    @staticmethod
    async def _build(shard_count: int) -> ClusterRouter:
        shards = [
            InProcessShard(
                f"s{index}", workers=1, backend=_BACKEND, use_cache=False
            )
            for index in range(shard_count)
        ]
        return ClusterRouter(shards, vnodes=64)

    def sweep(self, jobs):
        return self.loop.run_until_complete(self.router.sweep(jobs))

    def close(self):
        self.loop.run_until_complete(self.router.close())
        self.loop.close()


def _record_scaling(benchmark, workload: str, shard_count: int, job_count: int):
    rate = job_count / benchmark.stats.stats.mean
    if shard_count == min(SHARD_COUNTS):
        _BASELINES[workload] = rate
    baseline = _BASELINES.get(workload, rate)
    speedup = rate / baseline if baseline else 1.0
    efficiency = speedup / shard_count
    benchmark.extra_info["shards"] = shard_count
    benchmark.extra_info["jobs"] = job_count
    benchmark.extra_info["jobs_per_s"] = round(rate, 2)
    benchmark.extra_info["speedup_vs_1"] = round(speedup, 3)
    benchmark.extra_info["scaling_efficiency"] = round(efficiency, 3)
    return speedup


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_e23_analyze_sweep_scaling(benchmark, shard_count):
    """Cold analyze-sweep throughput as the ring fans out."""
    jobs = _analyze_jobs()
    cluster = _Cluster(shard_count)
    try:
        benchmark.pedantic(
            cluster.sweep, args=(jobs,), rounds=ROUNDS, warmup_rounds=1
        )
    finally:
        cluster.close()

    speedup = _record_scaling(benchmark, "analyze", shard_count, len(jobs))
    print_table(
        f"E23 analyze sweep ({len(jobs)} jobs, {shard_count} shards x 1 "
        f"{_BACKEND} worker, {_CORES} cores)",
        ["metric", "value"],
        [
            ["jobs/s", f"{benchmark.extra_info['jobs_per_s']:.2f}"],
            ["speedup vs 1 shard", f"{speedup:.2f}x"],
            ["scaling efficiency", f"{benchmark.extra_info['scaling_efficiency']:.2f}"],
        ],
    )
    if _CORES >= max(SHARD_COUNTS):
        floor = {1: 0.0, 2: 1.6, 4: 2.5}[shard_count]
        assert speedup >= floor, (
            f"{shard_count} shards reached only {speedup:.2f}x over 1 shard "
            f"(floor {floor}x) on {_CORES} cores"
        )


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_e23_fuzz_sweep_scaling(benchmark, shard_count):
    """Fuzz-batch sweep throughput: uncacheable jobs over the ring."""
    jobs = _fuzz_jobs()
    cluster = _Cluster(shard_count)
    try:
        benchmark.pedantic(
            cluster.sweep, args=(jobs,), rounds=ROUNDS, warmup_rounds=1
        )
    finally:
        cluster.close()

    speedup = _record_scaling(benchmark, "fuzz", shard_count, len(jobs))
    print_table(
        f"E23 fuzz sweep ({len(jobs)} batches x {FUZZ_ITERATIONS} iters, "
        f"{shard_count} shards)",
        ["metric", "value"],
        [
            ["batches/s", f"{benchmark.extra_info['jobs_per_s']:.2f}"],
            ["speedup vs 1 shard", f"{speedup:.2f}x"],
        ],
    )
    assert benchmark.extra_info["jobs_per_s"] > 0


def test_e23_kill_one_shard_keeps_report_bytes():
    """The acceptance determinism number: a 3-shard sweep with one
    shard killed mid-flight is byte-identical to the no-fault run."""
    jobs = _analyze_jobs()

    control_cluster = _Cluster(1)
    try:
        control = json.dumps(control_cluster.sweep(jobs), sort_keys=True)
    finally:
        control_cluster.close()

    cluster = _Cluster(3)
    try:

        async def killed_sweep():
            async def kill_soon():
                await asyncio.sleep(0.02)
                cluster.router.kill_shard("s1")

            reports, _ = await asyncio.gather(
                cluster.router.sweep(jobs), kill_soon()
            )
            return reports

        survived = json.dumps(
            cluster.loop.run_until_complete(killed_sweep()), sort_keys=True
        )
        redispatched = cluster.router.metrics.snapshot()["counters"].get(
            "cluster.redispatches", 0
        )
    finally:
        cluster.close()

    print_table(
        "E23 failover determinism",
        ["metric", "value"],
        [
            ["report bytes", f"{len(survived)}"],
            ["identical to no-fault run", str(survived == control)],
            ["jobs re-dispatched", str(redispatched)],
        ],
    )
    assert survived == control

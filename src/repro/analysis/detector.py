"""The placement-new vulnerability detector — the paper's future-work tool.

A flow-sensitive abstract interpreter over MiniC++ functions (and class
methods) that tracks taint, constants and points-to sets
(:mod:`dataflow`) and fires the rules below at placement sites and their
downstream uses:

=====================  ========  ==============================================
rule                   severity  fires when
=====================  ========  ==============================================
``PN-OVERSIZE``        error     sizeof(placed) > size of the resolved arena
``PN-TAINTED-COUNT``   error     placement ``new[]`` whose length is tainted
``PN-TAINTED-FIELD``   error     tainted input written through a field of an
                                 oversize placement (``cin >> st->ssn[i]``)
``PN-TAINTED-COPY-     error     same, inside a loop whose bound is tainted
LOOP``                           (the Listing 6 copy loop)
``PN-TYPE-CONFUSION``  error     a placement/heap allocation bound to a
                                 pointer of a *larger* type — well-typed
                                 member writes land past the allocation
``PN-VPTR-RISK``       warning   oversize placement involving polymorphic
                                 classes (vtable-subterfuge exposure)
``PN-NO-SANITIZE``     warning   a reused, never-sanitized arena flows to an
                                 output sink (information leak); a partial
                                 ``memset`` does not clear this
``PN-LEAK``            warning   an undersized placement's heap arena pointer
                                 is dropped without delete (Listing 23)
``PN-UNKNOWN-ARENA``   info      the arena's extent cannot be determined —
                                 the paper's "just an address" caveat
``PN-MISALIGNED``      info      arena alignment below the placed type's
=====================  ========  ==============================================

Branch feasibility uses constant folding, so the Section 5.1 guarded
idiom (``if (sizeof(B) <= sizeof(A)) ...``) analyzes clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import ast_nodes as ast
from .cache import cached_report
from .dataflow import TOP, AbstractValue, Env, PointerTarget, root_name
from .reports import AnalysisReport, Finding, Severity
from .symbols import SymbolTable

#: Revision of the detector's rule set and dataflow semantics.  Bump on
#: any change that can alter findings — the service result cache keys on
#: it, so stale cached analyses are invalidated automatically.
DETECTOR_VERSION = "2"

#: Calls treated as output sinks (exfiltration points for leak residue).
SINK_CALLS = {"store", "send", "printf", "write", "log", "serialize", "transmit"}
#: Calls that sanitize their first argument.
SANITIZE_CALLS = {"memset", "bzero", "explicit_bzero"}
#: Calls whose pointer arguments become "filled" with external data.
FILL_HINT_CALLS = {"readFile", "read", "mmap", "recv", "fread", "strncpy", "memcpy", "strcpy", "gets", "sprintf"}
#: Call results that are attacker-tainted at the source.
TAINT_SOURCE_CALLS = {"getNames", "getStudent", "receive", "recv", "getenv", "atoi"}

_LOOP_FIXPOINT_LIMIT = 6


@dataclass
class _ArenaState:
    """Flow state attached to a reusable arena (keyed by root variable)."""

    filled: bool = False
    shrunk_by_placement: bool = False
    placement_line: int = 0


class PlacementNewDetector:
    """Analyzes one parsed program."""

    tool_name = "placement-analyzer"
    #: Maximum inline depth for interprocedural analysis (paper §3.3:
    #: the data-flow path may be "intra-procedural or inter-procedural").
    max_inline_depth = 3

    def __init__(self, program: ast.Program, interprocedural: bool = True) -> None:
        self.program = program
        self.symbols = SymbolTable(program)
        self.report = AnalysisReport(tool=self.tool_name)
        self.interprocedural = interprocedural
        self._current_function = ""
        self._loop_taint_stack: list[frozenset] = []
        self._arena_states: dict[str, _ArenaState] = {}
        self._reused_unsanitized: dict[str, int] = {}  # var -> placement line
        self._call_stack: list[str] = []

    # -- entry points ----------------------------------------------------------

    @classmethod
    def analyze_source(cls, source: str) -> AnalysisReport:
        """Parse and analyze source text.

        Memoized on source content via :mod:`.cache`, keyed by the
        concrete class and :data:`DETECTOR_VERSION`, so warm re-analysis
        skips lex + parse + the abstract interpretation entirely.
        """
        return cached_report(
            f"detector:{cls.__module__}.{cls.__qualname__}",
            DETECTOR_VERSION,
            source,
            lambda program: cls(program).analyze(),
        )

    def analyze(self) -> AnalysisReport:
        """Analyze every function and every class method with a body."""
        global_env = Env()
        for decl in self.program.globals:
            self._exec_statement(decl, global_env)
        self._global_env = global_env
        for function in self.program.functions:
            env = global_env.copy()
            for param in function.params:
                env.set(
                    param.name,
                    AbstractValue(
                        taint=frozenset({f"param:{param.name}"}),
                        declared=param.type,
                    ),
                )
            self._analyze_body(function.name, function.body, env)
        for cls in self.program.classes:
            for method in cls.methods:
                if method.body is None or method.name == cls.name:
                    continue
                env = global_env.copy()
                for field in cls.fields:
                    env.set(field.name, AbstractValue(declared=field.type))
                for param in method.params:
                    env.set(
                        param.name,
                        AbstractValue(
                            taint=frozenset({f"param:{param.name}"}),
                            declared=param.type,
                        ),
                    )
                self._analyze_body(f"{cls.name}::{method.name}", method.body, env)
        return self.report

    def _analyze_body(self, name: str, body: ast.Block, env: Env) -> None:
        self._current_function = name
        self._loop_taint_stack.clear()
        self._exec_statement(body, env)

    # -- findings -------------------------------------------------------------

    def _emit(self, rule: str, severity: Severity, message: str, line: int) -> None:
        self.report.add(
            Finding(
                rule=rule,
                severity=severity,
                message=message,
                line=line,
                function=self._current_function,
                tool=self.tool_name,
            )
        )

    # -- statements -----------------------------------------------------------

    def _exec_statement(self, stmt: ast.Stmt, env: Env) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._exec_statement(inner, env)
        elif isinstance(stmt, ast.VarDecl):
            self._exec_vardecl(stmt, env)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.CinRead):
            self._exec_cin(stmt, env)
        elif isinstance(stmt, ast.CoutWrite):
            for value in stmt.values:
                self._check_sink_value(value, env, stmt.line)
                self._eval(value, env)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.DeleteStmt):
            name = root_name(stmt.target)
            if name is not None:
                state = self._arena_states.get(name)
                if state is not None:
                    state.shrunk_by_placement = False
            self._eval(stmt.target, env)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env)
        elif isinstance(stmt, ast.While):
            self._exec_loop(stmt.cond, stmt.body, env, line=stmt.line)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._exec_statement(stmt.init, env)
            self._exec_loop(stmt.cond, stmt.body, env, step=stmt.step, line=stmt.line)

    def _exec_vardecl(self, stmt: ast.VarDecl, env: Env) -> None:
        if stmt.type.array_size is not None:
            self._eval(stmt.type.array_size, env)
        value = AbstractValue(declared=stmt.type)
        if stmt.init is not None:
            init_value = self._eval(stmt.init, env)
            value = AbstractValue(
                taint=init_value.taint,
                const=init_value.const,
                targets=init_value.targets,
                declared=stmt.type,
            )
            self._check_leak_on_overwrite(stmt.name, stmt.line)
        env.set(stmt.name, value)
        self._propagate_exposure(stmt.name, value)
        if stmt.init is not None:
            self._check_type_confusion(stmt.name, stmt.type, value, stmt.line)

    def _exec_assign(self, stmt: ast.Assign, env: Env) -> None:
        value = self._eval(stmt.value, env)
        target_root = root_name(stmt.target)
        if isinstance(stmt.target, ast.Name):
            self._check_leak_on_overwrite(stmt.target.ident, stmt.line)
            declared = env.get(stmt.target.ident).declared
            env.set(
                stmt.target.ident,
                AbstractValue(
                    taint=value.taint,
                    const=value.const,
                    targets=value.targets,
                    declared=declared,
                ),
            )
            self._propagate_exposure(stmt.target.ident, value)
            self._check_type_confusion(
                stmt.target.ident, declared, value, stmt.line
            )
            return
        # Write through a member/element/deref lvalue.
        if value.tainted and target_root is not None:
            self._check_tainted_write(stmt.target, env, stmt.line)
        self._eval(stmt.target, env)

    def _exec_cin(self, stmt: ast.CinRead, env: Env) -> None:
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                declared = env.get(target.ident).declared
                env.set(
                    target.ident,
                    AbstractValue(taint=frozenset({"stdin"}), declared=declared),
                )
            else:
                self._check_tainted_write(target, env, stmt.line)

    def _exec_if(self, stmt: ast.If, env: Env) -> None:
        cond_value = self._eval(stmt.cond, env)
        feasible_then = cond_value.const_int != 0 or cond_value.const_int is None
        feasible_else = (
            cond_value.const_int == 0 or cond_value.const_int is None
        ) or cond_value.const is TOP
        if cond_value.const is TOP:
            feasible_then = feasible_else = True
        then_env = env.copy()
        else_env = env.copy()
        if feasible_then:
            self._exec_statement(stmt.then_body, then_env)
        if stmt.else_body is not None and feasible_else:
            self._exec_statement(stmt.else_body, else_env)
        if feasible_then and feasible_else:
            merged = then_env.join_with(else_env)
        elif feasible_then:
            merged = then_env
        else:
            merged = else_env
        env._values = merged._values  # type: ignore[attr-defined]

    def _exec_loop(
        self,
        cond: Optional[ast.Expr],
        body: ast.Block,
        env: Env,
        step: Optional[ast.Stmt] = None,
        line: int = 0,
    ) -> None:
        cond_taint: frozenset = frozenset()
        if cond is not None:
            cond_taint = self._eval(cond, env).taint
        self._loop_taint_stack.append(cond_taint)
        try:
            current = env
            for _ in range(_LOOP_FIXPOINT_LIMIT):
                iteration = current.copy()
                self._exec_statement(body, iteration)
                if step is not None:
                    self._exec_statement(step, iteration)
                if cond is not None:
                    self._eval(cond, iteration)
                merged = current.join_with(iteration)
                if merged.equivalent(current):
                    break
                current = merged
            env._values = current._values  # type: ignore[attr-defined]
        finally:
            self._loop_taint_stack.pop()

    # -- rule helpers -----------------------------------------------------------

    def _check_tainted_write(self, target: ast.Expr, env: Env, line: int) -> None:
        """Tainted data written through a member/element lvalue: is the
        base an oversize placement?"""
        name = root_name(target)
        if name is None:
            return
        base = env.get(name)
        oversize_targets = [
            t for t in base.targets if t.kind == "placement" and t.oversize
        ]
        if not oversize_targets:
            return
        in_tainted_loop = any(self._loop_taint_stack)
        rule = "PN-TAINTED-COPY-LOOP" if in_tainted_loop else "PN-TAINTED-FIELD"
        placed = oversize_targets[0]
        self._emit(
            rule,
            Severity.ERROR,
            (
                f"attacker-controlled value written through {name} "
                f"({placed.describe()} placed at line {placed.placement_line}); "
                "the write lands beyond the arena"
            ),
            line,
        )

    def _check_leak_on_overwrite(self, var: str, line: int) -> None:
        """A pointer holding a shrunk heap arena is being overwritten."""
        state = self._arena_states.get(var)
        if state is not None and state.shrunk_by_placement:
            self._emit(
                "PN-LEAK",
                Severity.WARNING,
                (
                    f"pointer '{var}' to a heap arena shrunk by a placement "
                    f"new (line {state.placement_line}) is overwritten without "
                    "delete; the size difference leaks each time"
                ),
                line,
            )
            state.shrunk_by_placement = False

    def _propagate_exposure(self, name: str, value: AbstractValue) -> None:
        """A variable bound to a placement over an unsanitized arena is
        itself an exposure point (Listing 21's ``userdata``)."""
        for target in value.targets:
            if (
                target.kind == "placement"
                and target.var_name in self._reused_unsanitized
            ):
                self._reused_unsanitized[name] = target.placement_line

    def _check_type_confusion(
        self,
        name: str,
        declared: Optional[ast.TypeRef],
        value: AbstractValue,
        line: int,
    ) -> None:
        """Binding an allocation to a pointer of a *larger* type re-opens
        the overflow even when the placement itself fits: every
        well-typed member write through the pointer can land past the
        allocation (``GradStudent* gs = new (&stud) Student()``)."""
        if declared is None or not declared.is_pointer:
            return
        pointee_size = (
            4  # pointee is itself a pointer
            if declared.pointer_depth > 1
            else self.symbols.sizeof_name(declared.name)
        )
        if pointee_size is None:
            return
        for target in value.targets:
            if target.kind not in ("placement", "heap"):
                continue
            if target.size is not None and target.size < pointee_size:
                self._emit(
                    "PN-TYPE-CONFUSION",
                    Severity.ERROR,
                    (
                        f"pointer '{name}' of type {declared.name}* "
                        f"({pointee_size}-byte pointee) binds a "
                        f"{target.size}-byte allocation of "
                        f"{target.type_name}; well-typed member writes "
                        "reach past the allocation"
                    ),
                    line,
                )
                return

    def _check_sink_value(self, expr: ast.Expr, env: Env, line: int) -> None:
        name = root_name(expr)
        if name is None:
            return
        if name in self._reused_unsanitized:
            self._emit(
                "PN-NO-SANITIZE",
                Severity.WARNING,
                (
                    f"'{name}' exposes a re-used arena that was never "
                    f"sanitized (placement at line "
                    f"{self._reused_unsanitized[name]}); previous contents leak"
                ),
                line,
            )

    # -- expressions -----------------------------------------------------------

    def _eval(self, expr: Optional[ast.Expr], env: Env) -> AbstractValue:
        if expr is None:
            return AbstractValue()
        if isinstance(expr, ast.IntLit):
            return AbstractValue(const=expr.value)
        if isinstance(expr, ast.FloatLit):
            return AbstractValue()
        if isinstance(expr, (ast.StrLit, ast.NullLit)):
            return AbstractValue(const=0 if isinstance(expr, ast.NullLit) else None)
        if isinstance(expr, ast.BoolLit):
            return AbstractValue(const=int(expr.value))
        if isinstance(expr, ast.Name):
            return self._eval_name(expr, env)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Member):
            base = self._eval(expr.obj, env)
            return AbstractValue(taint=base.taint)
        if isinstance(expr, ast.Index):
            base = self._eval(expr.base, env)
            index = self._eval(expr.index, env)
            return AbstractValue(taint=base.taint | index.taint)
        if isinstance(expr, ast.SizeOf):
            return self._eval_sizeof(expr, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.NewExpr):
            return self._eval_new(expr, env)
        return AbstractValue()

    def _eval_name(self, expr: ast.Name, env: Env) -> AbstractValue:
        value = env.get(expr.ident)
        declared = value.declared
        if declared is not None and declared.is_array and not value.targets:
            # Arrays decay to a pointer at their own storage.
            size = self.symbols.sizeof_type_ref(declared)
            return AbstractValue(
                taint=value.taint,
                targets=frozenset(
                    {
                        PointerTarget(
                            kind="var",
                            type_name=declared.name,
                            size=size,
                            var_name=expr.ident,
                        )
                    }
                ),
                declared=declared,
            )
        return value

    def _eval_unary(self, expr: ast.Unary, env: Env) -> AbstractValue:
        if expr.op == "&":
            name = root_name(expr.operand)
            if isinstance(expr.operand, ast.Name) and name is not None:
                declared = env.get(name).declared
                size = (
                    self.symbols.sizeof_type_ref(declared)
                    if declared is not None
                    else None
                )
                type_name = declared.name if declared is not None else ""
                return AbstractValue(
                    targets=frozenset(
                        {
                            PointerTarget(
                                kind="var",
                                type_name=type_name,
                                size=size,
                                var_name=name,
                            )
                        }
                    )
                )
            inner = self._eval(expr.operand, env)
            return AbstractValue(taint=inner.taint)
        inner = self._eval(expr.operand, env)
        if expr.op in ("++", "post++"):
            const = inner.const_int + 1 if inner.const_int is not None else TOP
            result = AbstractValue(taint=inner.taint, const=const, declared=inner.declared)
            if isinstance(expr.operand, ast.Name):
                env.set(expr.operand.ident, result)
            return result
        if expr.op in ("--", "post--"):
            const = inner.const_int - 1 if inner.const_int is not None else TOP
            result = AbstractValue(taint=inner.taint, const=const, declared=inner.declared)
            if isinstance(expr.operand, ast.Name):
                env.set(expr.operand.ident, result)
            return result
        if expr.op == "-":
            const = -inner.const_int if inner.const_int is not None else None
            return AbstractValue(taint=inner.taint, const=const)
        if expr.op == "!":
            const = (
                int(inner.const_int == 0) if inner.const_int is not None else None
            )
            return AbstractValue(taint=inner.taint, const=const)
        # '*' dereference and others: propagate taint.
        return AbstractValue(taint=inner.taint, targets=inner.targets)

    _FOLDABLE = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a // b if b else None,
        "%": lambda a, b: a % b if b else None,
        "<": lambda a, b: int(a < b),
        ">": lambda a, b: int(a > b),
        "<=": lambda a, b: int(a <= b),
        ">=": lambda a, b: int(a >= b),
        "==": lambda a, b: int(a == b),
        "!=": lambda a, b: int(a != b),
        "&&": lambda a, b: int(bool(a) and bool(b)),
        "||": lambda a, b: int(bool(a) or bool(b)),
    }

    def _eval_binary(self, expr: ast.Binary, env: Env) -> AbstractValue:
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        const = None
        if (
            left.const_int is not None
            and right.const_int is not None
            and expr.op in self._FOLDABLE
        ):
            const = self._FOLDABLE[expr.op](left.const_int, right.const_int)
        return AbstractValue(taint=left.taint | right.taint, const=const)

    def _eval_sizeof(self, expr: ast.SizeOf, env: Env) -> AbstractValue:
        if expr.type_name is not None:
            return AbstractValue(const=self.symbols.sizeof_name(expr.type_name))
        if isinstance(expr.expr, ast.Name):
            declared = env.get(expr.expr.ident).declared
            if declared is not None:
                return AbstractValue(const=self.symbols.sizeof_type_ref(declared))
        return AbstractValue()

    def _eval_call(self, expr: ast.Call, env: Env) -> AbstractValue:
        arg_values = [self._eval(arg, env) for arg in expr.args]
        if expr.receiver is not None:
            self._eval(expr.receiver, env)
        inlined = self._try_inline(expr, arg_values)
        if inlined is not None:
            return inlined
        # Output sinks: leak check on every pointer argument.
        if expr.func in SINK_CALLS:
            for arg in expr.args:
                self._check_sink_value(arg, env, expr.line)
            return AbstractValue()
        if expr.func in SANITIZE_CALLS and expr.args:
            name = root_name(expr.args[0])
            if name is not None and self._sanitize_covers(expr, arg_values, env):
                self._arena_states.setdefault(name, _ArenaState()).filled = False
                self._reused_unsanitized.pop(name, None)
            return AbstractValue()
        # Constructor-style call of a known class: Student(3.9, ...) —
        # a value, nothing to track.
        if self.symbols.is_class(expr.func):
            taint = frozenset().union(*(v.taint for v in arg_values)) if arg_values else frozenset()
            return AbstractValue(taint=taint)
        # Any other call may fill the buffers passed to it.
        for arg in expr.args:
            name = root_name(arg)
            if name is None:
                continue
            value = env.get(name)
            is_buffer = (
                (value.declared is not None and (value.declared.is_array or value.declared.is_pointer))
                or bool(value.targets)
            )
            if is_buffer:
                self._arena_states.setdefault(name, _ArenaState()).filled = True
        if expr.func in TAINT_SOURCE_CALLS:
            return AbstractValue(taint=frozenset({f"call:{expr.func}"}))
        taint = frozenset()
        for value in arg_values:
            taint |= value.taint
        return AbstractValue(taint=taint)

    def _sanitize_covers(
        self, expr: ast.Call, arg_values: list, env: Env
    ) -> bool:
        """memset/bzero wipe an arena only when the length provably
        covers the buffer; a partial wipe leaves the upper bytes live."""
        length_index = 1 if expr.func in ("bzero", "explicit_bzero") else 2
        if len(arg_values) <= length_index:
            return True
        length = arg_values[length_index].const_int
        if length is None:
            return True  # unknown length keeps the classic full-wipe reading
        value = env.get(root_name(expr.args[0]))
        buffer_size = (
            self.symbols.sizeof_type_ref(value.declared)
            if value.declared is not None and not value.declared.is_pointer
            else None
        )
        if buffer_size is None:
            sizes = [t.size for t in value.targets if t.size is not None]
            buffer_size = min(sizes) if sizes else None
        return buffer_size is None or length >= buffer_size

    def _try_inline(
        self, expr: ast.Call, arg_values: list
    ) -> Optional[AbstractValue]:
        """Interprocedural step: analyze a program-defined callee with
        the caller's argument facts bound to its parameters.

        This is what turns "placement at a bare pointer" inside a helper
        into a decided verdict: the caller knows the arena the pointer
        refers to.  Depth-bounded; recursion falls back to the opaque
        treatment.
        """
        if not self.interprocedural or expr.receiver is not None:
            return None
        try:
            callee = self.program.function(expr.func)
        except KeyError:
            return None
        if (
            expr.func in self._call_stack
            or len(self._call_stack) >= self.max_inline_depth
        ):
            return None
        callee_env = getattr(self, "_global_env", Env()).copy()
        for param, value in zip(callee.params, arg_values):
            callee_env.set(
                param.name,
                AbstractValue(
                    taint=value.taint,
                    const=value.const,
                    targets=value.targets,
                    declared=param.type,
                ),
            )
        caller_name = self._current_function
        self._call_stack.append(expr.func)
        self._current_function = expr.func
        try:
            self._exec_statement(callee.body, callee_env)
        finally:
            self._call_stack.pop()
            self._current_function = caller_name
        taint = frozenset()
        for value in arg_values:
            taint |= value.taint
        return AbstractValue(taint=taint)

    # -- new expressions ----------------------------------------------------

    def _eval_new(self, expr: ast.NewExpr, env: Env) -> AbstractValue:
        for arg in expr.args:
            self._eval(arg, env)
        if expr.placement is None:
            return self._eval_heap_new(expr, env)
        return self._eval_placement_new(expr, env)

    def _eval_heap_new(self, expr: ast.NewExpr, env: Env) -> AbstractValue:
        if expr.is_array:
            count_value = self._eval(expr.array_count, env)
            element = self.symbols.element_size(expr.type_name)
            size = (
                element * count_value.const_int
                if element is not None and count_value.const_int is not None
                else None
            )
        else:
            size = self.symbols.sizeof_name(expr.type_name)
        target = PointerTarget(kind="heap", type_name=expr.type_name, size=size)
        return AbstractValue(targets=frozenset({target}))

    def _placed_size(self, expr: ast.NewExpr, env: Env) -> tuple[Optional[int], AbstractValue]:
        if expr.is_array:
            count_value = self._eval(expr.array_count, env)
            element = self.symbols.element_size(expr.type_name)
            if element is not None and count_value.const_int is not None:
                return element * count_value.const_int, count_value
            return None, count_value
        return self.symbols.sizeof_name(expr.type_name), AbstractValue()

    def _eval_placement_new(self, expr: ast.NewExpr, env: Env) -> AbstractValue:
        arena_value = self._eval(expr.placement, env)
        placed_size, count_value = self._placed_size(expr, env)

        arena_sizes = [t.size for t in arena_value.targets if t.size is not None]
        arena_known = bool(arena_sizes)
        arena_size = min(arena_sizes) if arena_sizes else None
        arena_names = [t.var_name for t in arena_value.targets if t.var_name]

        oversize = (
            placed_size is not None
            and arena_size is not None
            and placed_size > arena_size
        )
        if oversize:
            self._emit(
                "PN-OVERSIZE",
                Severity.ERROR,
                (
                    f"placement new of {expr.type_name} "
                    f"({placed_size} bytes) into an arena of {arena_size} "
                    "bytes overflows the arena"
                ),
                expr.line,
            )
            self._check_vptr_risk(expr, arena_value, expr.line)
        if expr.is_array and count_value.tainted:
            sources = ", ".join(sorted(count_value.taint))
            self._emit(
                "PN-TAINTED-COUNT",
                Severity.ERROR,
                (
                    f"placement new[] of {expr.type_name} uses an "
                    f"attacker-influenced length ({sources}); size is not "
                    + (
                        f"provably within the {arena_size}-byte arena"
                        if arena_size is not None
                        else "checkable against the arena"
                    )
                ),
                expr.line,
            )
        if not arena_known:
            self._emit(
                "PN-UNKNOWN-ARENA",
                Severity.INFO,
                (
                    "placement address is a bare pointer whose arena size "
                    "cannot be determined (placement new 'just operates on "
                    "an address')"
                ),
                expr.line,
            )
        self._check_alignment(expr, arena_value, placed_size)
        arena_key = (
            arena_names[0]
            if arena_names
            else (root_name(expr.placement) or "")
        )
        self._track_reuse_and_leak(
            expr, arena_value, placed_size, arena_key, env
        )

        target = PointerTarget(
            kind="placement",
            type_name=expr.type_name,
            size=placed_size,
            oversize=oversize,
            placement_line=expr.line,
            var_name=arena_key,
        )
        return AbstractValue(targets=frozenset({target}))

    def _check_vptr_risk(
        self, expr: ast.NewExpr, arena_value: AbstractValue, line: int
    ) -> None:
        placed_poly = self.symbols.is_polymorphic(expr.type_name)
        arena_poly = any(
            self.symbols.is_polymorphic(t.type_name)
            for t in arena_value.targets
            if t.type_name
        )
        if placed_poly or arena_poly:
            self._emit(
                "PN-VPTR-RISK",
                Severity.WARNING,
                (
                    "oversize placement involves polymorphic classes; the "
                    "overflow can rewrite a neighbouring object's vtable "
                    "pointer (subterfuge)"
                ),
                line,
            )

    def _check_alignment(
        self,
        expr: ast.NewExpr,
        arena_value: AbstractValue,
        placed_size: Optional[int],
    ) -> None:
        if expr.is_array:
            return
        decl = self.symbols.class_decl(expr.type_name)
        if decl is None:
            return
        needs_eight = any(field.type.name == "double" for field in decl.fields)
        for target in arena_value.targets:
            if target.kind == "var" and target.type_name in ("char", "short", "int"):
                if needs_eight:
                    self._emit(
                        "PN-MISALIGNED",
                        Severity.INFO,
                        (
                            f"placing {expr.type_name} (8-byte-aligned members) "
                            f"over '{target.var_name}' of type {target.type_name} "
                            "may violate alignment"
                        ),
                        expr.line,
                    )
                    return

    def _track_reuse_and_leak(
        self,
        expr: ast.NewExpr,
        arena_value: AbstractValue,
        placed_size: Optional[int],
        arena_key: str,
        env: Env,
    ) -> None:
        if not arena_key:
            return
        state = self._arena_states.setdefault(arena_key, _ArenaState())
        for target in arena_value.targets:
            # Heap class arenas count as filled: the previous object's
            # state (Listing 22's SSNs) is still there.
            previously_filled = state.filled or (
                target.kind == "heap" and self.symbols.is_class(target.type_name)
            )
            if previously_filled:
                self._reused_unsanitized[arena_key] = expr.line
            if (
                target.kind == "heap"
                and placed_size is not None
                and target.size is not None
                and placed_size < target.size
            ):
                state.shrunk_by_placement = True
                state.placement_line = expr.line


def analyze_source(source: str) -> AnalysisReport:
    """Convenience wrapper: parse + analyze."""
    return PlacementNewDetector.analyze_source(source)

"""Dynamic execution of MiniC++ programs on the simulated machine.

The dynamic complement to :mod:`repro.analysis`: the same sources the
static detector flags are *run* here, so every report can be validated
against observed memory corruption.
"""

from .interpreter import (
    DEFAULT_STEP_BUDGET,
    ExecutionError,
    FunctionOutcome,
    Interpreter,
    run_source,
)
from .values import LValue, Scope, Variable, truthy

__all__ = [
    "DEFAULT_STEP_BUDGET",
    "ExecutionError",
    "FunctionOutcome",
    "Interpreter",
    "LValue",
    "Scope",
    "Variable",
    "run_source",
    "truthy",
]

"""Byte-accurate simulated process memory.

This package is the foundation substrate: a 32-bit little-endian address
space with ELF-style segments, a boundary-tag heap, a downward-growing
stack, memory pools, shadow memory and allocation tracking.  Everything
above it (the C++ object model, placement new, the attacks) manipulates
bytes exclusively through these primitives.
"""

from .address_space import DEFAULT_LAYOUT, AddressSpace
from .alignment import align_down, align_up, is_aligned, is_power_of_two, padding_for
from .encoding import (
    BOOL_SIZE,
    CHAR_SIZE,
    DOUBLE_ALIGN,
    DOUBLE_SIZE,
    FLOAT_SIZE,
    INT_SIZE,
    LONG_LONG_SIZE,
    POINTER_SIZE,
    SHORT_SIZE,
    decode_c_string,
    decode_double,
    decode_float,
    decode_int,
    decode_pointer,
    encode_c_string,
    encode_double,
    encode_float,
    encode_int,
    encode_pointer,
)
from .events import MemoryEventTap
from .heap import HEADER_SIZE, BlockInfo, HeapAllocator
from .pool import CheckedMemoryPool, MemoryPool, PoolStats, pool_in_segment
from .segments import DEFAULT_PERMISSIONS, Permissions, Segment, SegmentKind
from .shadow import RedZonePair, ShadowMemory, ShadowState
from .stack import LocalAreaPlanner, StackAllocation, StackRegion
from .tracker import AllocationTracker, ArenaOrigin, ArenaRecord
from .watchpoints import WatchHit, WatchpointManager

__all__ = [
    "AddressSpace",
    "DEFAULT_LAYOUT",
    "DEFAULT_PERMISSIONS",
    "AllocationTracker",
    "ArenaOrigin",
    "ArenaRecord",
    "BlockInfo",
    "BOOL_SIZE",
    "CHAR_SIZE",
    "CheckedMemoryPool",
    "DOUBLE_ALIGN",
    "DOUBLE_SIZE",
    "FLOAT_SIZE",
    "HEADER_SIZE",
    "HeapAllocator",
    "INT_SIZE",
    "LONG_LONG_SIZE",
    "LocalAreaPlanner",
    "MemoryEventTap",
    "MemoryPool",
    "Permissions",
    "POINTER_SIZE",
    "PoolStats",
    "RedZonePair",
    "Segment",
    "SegmentKind",
    "ShadowMemory",
    "ShadowState",
    "SHORT_SIZE",
    "StackAllocation",
    "StackRegion",
    "WatchHit",
    "WatchpointManager",
    "align_down",
    "align_up",
    "decode_c_string",
    "decode_double",
    "decode_float",
    "decode_int",
    "decode_pointer",
    "encode_c_string",
    "encode_double",
    "encode_float",
    "encode_int",
    "encode_pointer",
    "is_aligned",
    "is_power_of_two",
    "padding_for",
    "pool_in_segment",
]

"""``python -m repro.score`` — the repro-score front end."""

import sys

from ..cli import score_main

if __name__ == "__main__":
    sys.exit(score_main())

"""``repro-cluster``: the asyncio HTTP front-end over the shard router.

A single event loop accepts connections, admits each request against
the tenant's token bucket, and routes jobs through the
:class:`~repro.cluster.router.ClusterRouter`.  The HTTP surface is
hand-parsed HTTP/1.1 with ``Connection: close`` (one request per
connection), matching the zero-dependency rule of the rest of the repo.

Endpoints (all JSON unless noted):

``GET /healthz``
    Liveness: live shard count, version, topology mode.
``GET /metrics``
    Cluster counters, per-tier cache stats, quota accounting, and each
    shard's full snapshot keyed by ``shard_id``; ``?format=prom``
    returns the concatenated per-shard Prometheus exposition, every
    sample labelled with its ``shard_id``.
``GET /cluster``
    Ring + shard topology (vnodes, membership, per-shard state).
``POST /analyze``
    ``{"source": ..., "label": ..., "legacy": ...}`` for one job, or
    ``{"sources": [[label, source], ...]}`` for an ordered sweep.
``POST /attacks`` / ``POST /exec``
    As on ``repro-serve``, routed to the owning shard.
``POST /admin/drain`` / ``POST /admin/kill``
    ``{"shard": id}`` — graceful drain (queue finishes, keys remap) or
    brutal kill (in-flight work re-dispatches to the ring successor).

Every request may carry ``X-Tenant``; absent means tenant ``"anon"``.
A request whose tenant bucket cannot cover its job count is answered
``429`` with both a ``Retry-After`` header and the exact float in the
``retry_after`` JSON field.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from ..service.client import ServiceError
from ..service.jobs import AnalyzeJob, AttackJob, ExecJob
from ..service.scheduler import JobFailed, QueueFull
from .quotas import DEFAULT_TENANT, QuotaManager
from .router import ClusterError, ClusterRouter

_MAX_BODY = 32 * 1024 * 1024  # refuse absurd request bodies outright


class _BadRequest(ValueError):
    """Maps to HTTP 400 with the message as the error field."""


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, dict, dict]:
    """``(method, path, headers, body)`` for one HTTP/1.1 request."""
    request_line = await reader.readline()
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ConnectionError(f"malformed request line {request_line!r}")
    method, path = parts[0].upper(), parts[1]
    headers: dict = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length") or 0)
    if length > _MAX_BODY:
        raise _BadRequest(f"request body over {_MAX_BODY} bytes")
    body: dict = {}
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw)
        except ValueError:
            raise _BadRequest("request body must be valid JSON") from None
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
    return method, path, headers, body


class ClusterServer:
    """The asyncio server; create via :func:`create_cluster_server`."""

    def __init__(
        self,
        router: ClusterRouter,
        quotas: Optional[QuotaManager] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.router = router
        self.quotas = quotas or QuotaManager()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "ClusterServer":
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.router.close()

    # -- connection handling -----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, headers, body = await _read_request(reader)
            except _BadRequest as error:
                await self._respond(writer, 400, {"error": str(error)})
                return
            except (ConnectionError, asyncio.IncompleteReadError, ValueError):
                return  # client hung up or sent garbage; nothing to answer
            self.router.metrics.counter("cluster.http_requests").inc()
            status, payload, extra_headers = await self._route(
                method, path, headers, body
            )
            await self._respond(writer, status, payload, extra_headers)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        extra_headers: Optional[dict] = None,
    ) -> None:
        if isinstance(payload, (dict, list)):
            data = json.dumps(payload, sort_keys=True).encode()
            content_type = "application/json"
        else:
            data = str(payload).encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + data)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _route(
        self, method: str, path: str, headers: dict, body: dict
    ) -> Tuple[int, object, Optional[dict]]:
        try:
            if method == "GET":
                return await self._route_get(path)
            if method == "POST":
                return await self._route_post(path, headers, body)
            return 400, {"error": f"unsupported method {method}"}, None
        except (KeyError, TypeError, ValueError) as error:
            self.router.metrics.counter("cluster.http_bad_request").inc()
            message = (
                error.args[0]
                if isinstance(error, KeyError) and error.args
                else str(error)
            )
            return 400, {"error": str(message)}, None
        except QueueFull as error:
            return 503, {"error": str(error)}, None
        except ClusterError as error:
            self.router.metrics.counter("cluster.http_unavailable").inc()
            return 503, {"error": str(error)}, None
        except (JobFailed, ServiceError) as error:
            self.router.metrics.counter("cluster.http_job_failed").inc()
            return 500, {"error": str(error)}, None

    async def _route_get(self, path: str) -> Tuple[int, object, Optional[dict]]:
        bare, _, query = path.partition("?")
        if bare == "/healthz":
            from .. import __version__

            return 200, {
                "status": "ok",
                "version": __version__,
                "shards_live": len(self.router.ring),
                "shards": sorted(self.router.ring.shards),
            }, None
        if bare == "/metrics":
            if "format=prom" in query or "format=text" in query:
                return 200, await self.router.metrics_prometheus(), None
            document = await self.router.metrics_document()
            document["quotas"] = self.quotas.stats()
            return 200, document, None
        if bare == "/cluster":
            return 200, self.router.topology(), None
        self.router.metrics.counter("cluster.http_not_found").inc()
        return 404, {"error": f"unknown path {path}"}, None

    async def _route_post(
        self, path: str, headers: dict, body: dict
    ) -> Tuple[int, object, Optional[dict]]:
        if path == "/admin/drain":
            report = await self.router.drain_shard(str(body.get("shard") or ""))
            return 200, {"drained": report}, None
        if path == "/admin/kill":
            self.router.kill_shard(str(body.get("shard") or ""))
            return 200, {"killed": body.get("shard")}, None

        jobs = self._jobs_for(path, body)
        if jobs is None:
            self.router.metrics.counter("cluster.http_not_found").inc()
            return 404, {"error": f"unknown path {path}"}, None
        tenant = headers.get("x-tenant", "") or DEFAULT_TENANT
        granted, retry_after = self.quotas.admit(tenant, cost=len(jobs))
        if not granted:
            self.router.metrics.counter("cluster.http_throttled").inc()
            self.router.metrics.counter(f"cluster.throttled.{tenant}").inc()
            retry_after = round(retry_after, 6)
            return (
                429,
                {
                    "error": f"tenant '{tenant}' over quota",
                    "retry_after": retry_after,
                },
                # float Retry-After: non-standard but widely accepted,
                # and the exact value also rides in the JSON body
                {"Retry-After": str(retry_after)},
            )
        if len(jobs) == 1 and "sources" not in body:
            return 200, await self.router.submit_job(jobs[0]), None
        results = await self.router.sweep(jobs)
        # match the repro-serve payload shape for each collection route
        wrapper = "results" if path == "/attacks" else "reports"
        return 200, {wrapper: results}, None

    def _jobs_for(self, path: str, body: dict):
        """The job list a POST implies, or ``None`` for unknown paths."""
        if path == "/analyze":
            legacy = bool(body.get("legacy"))
            if "sources" in body:
                pairs = body["sources"]
                if not isinstance(pairs, list) or not all(
                    isinstance(pair, (list, tuple)) and len(pair) == 2
                    for pair in pairs
                ):
                    raise _BadRequest(
                        "'sources' must be a list of [label, source] pairs"
                    )
                return [
                    AnalyzeJob(source=str(source), label=str(label), legacy=legacy)
                    for label, source in pairs
                ]
            source = body.get("source")
            if not isinstance(source, str):
                raise _BadRequest(
                    "'source' must be a string (or pass a 'sources' list)"
                )
            return [
                AnalyzeJob(
                    source=source, label=str(body.get("label", "")), legacy=legacy
                )
            ]
        if path == "/attacks":
            from ..attacks import attack_by_name, environment_by_label

            env = str(body.get("env", "unprotected"))
            environment_by_label(env)  # unknown env → KeyError → 400
            if body.get("attack"):
                attack_by_name(str(body["attack"]))
                return [AttackJob(attack=str(body["attack"]), env=env)]
            from ..attacks import all_attacks

            return [
                AttackJob(attack=scenario.name, env=env)
                for scenario in all_attacks()
            ]
        if path == "/exec":
            source = body.get("source")
            if not isinstance(source, str):
                raise _BadRequest("'source' must be a string")
            engine_name = body.get("engine", "ast")
            if engine_name not in ("ast", "bytecode"):
                raise _BadRequest("'engine' must be one of: ast, bytecode")
            return [
                ExecJob(
                    source=source,
                    entry=str(body.get("entry", "main")),
                    args=tuple(body.get("args") or ()),
                    stdin=tuple(body.get("stdin") or ()),
                    canary=bool(body.get("canary")),
                    engine=engine_name,
                )
            ]
        return None


async def create_cluster_server(
    router: ClusterRouter,
    quotas: Optional[QuotaManager] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ClusterServer:
    """Bind and start (but do not serve) the front-end; port 0 = pick one."""
    return await ClusterServer(router, quotas=quotas, host=host, port=port).start()

"""Tests for the interprocedural extension of the detector (§3.3/§5.1)."""

import pytest

from repro.analysis import Severity, analyze_source, parse
from repro.analysis.detector import PlacementNewDetector
from repro.workloads.corpus import INTERPROC_CORPUS


class TestInterproceduralDetection:
    @pytest.mark.parametrize("program", INTERPROC_CORPUS, ids=lambda p: p.key)
    def test_expected_rules(self, program):
        report = analyze_source(program.source)
        fired = report.rules_fired()
        missing = set(program.expected_rules) - fired
        assert not missing, f"missing {missing}, fired {fired}"
        if not program.expected_rules:
            assert not report.at_least(Severity.WARNING)

    def test_caller_context_decides_the_helper_verdict(self):
        """With inlining the bare-pointer placement becomes a decided
        oversize; intra-procedurally it is only an info note — the exact
        precision gap the paper attributes to inter-procedural flow."""
        source = INTERPROC_CORPUS[0].source
        inter = PlacementNewDetector(parse(source), interprocedural=True).analyze()
        intra = PlacementNewDetector(parse(source), interprocedural=False).analyze()
        assert "PN-OVERSIZE" in inter.rules_fired()
        assert "PN-OVERSIZE" not in intra.rules_fired()
        assert "PN-UNKNOWN-ARENA" in intra.rules_fired()

    def test_taint_flows_into_callee(self):
        report = analyze_source(
            """
char pool[32];
void carve(int n) { char *b = new (pool) char[n]; }
void serve() { int n = 0; cin >> n; carve(n); }
"""
        )
        findings = [f for f in report.findings if f.rule == "PN-TAINTED-COUNT"]
        assert findings
        # Either pass suffices: the standalone analysis sees the tainted
        # parameter, and the inline pass (same site, deduplicated) binds
        # the caller's stdin taint to it.
        assert any(
            "stdin" in f.message or "param:n" in f.message for f in findings
        )

    def test_globals_visible_inside_callee(self):
        report = analyze_source(
            """
char pool[32];
void carve() { char *b = new (pool) char[64]; }
void serve() { carve(); }
"""
        )
        assert "PN-OVERSIZE" in report.rules_fired()
        assert "PN-UNKNOWN-ARENA" not in report.rules_fired()

    def test_recursion_is_bounded(self):
        # Self-recursive function must not loop the analyzer.
        report = analyze_source(
            """
void f(int n) { if (n > 0) { f(n - 1); } }
void g() { f(3); }
"""
        )
        assert report.findings == []

    def test_depth_limit(self):
        detector = PlacementNewDetector(
            parse(
                """
class A { public: double d; };
class B : public A { public: int x[8]; };
void level3(A *p) { B *b = new (p) B(); }
void level2(A *p) { level3(p); }
void level1(A *p) { level2(p); }
void level0(A *p) { level1(p); }
void entry() { A small; level0(&small); }
"""
            )
        )
        detector.max_inline_depth = 2
        report = detector.analyze()
        # Too deep: the arena fact never reaches level3 — info only.
        assert "PN-OVERSIZE" not in report.rules_fired()
        deep = PlacementNewDetector(
            parse(
                """
class A { public: double d; };
class B : public A { public: int x[8]; };
void level2(A *p) { B *b = new (p) B(); }
void level1(A *p) { level2(p); }
void entry() { A small; level1(&small); }
"""
            )
        )
        deep.max_inline_depth = 4
        assert "PN-OVERSIZE" in deep.analyze().rules_fired()

    def test_findings_attributed_to_callee(self):
        report = analyze_source(INTERPROC_CORPUS[0].source)
        oversize = [f for f in report.findings if f.rule == "PN-OVERSIZE"]
        assert oversize[0].function == "placeAt"

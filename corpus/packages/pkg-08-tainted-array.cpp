// package: pkg-08-tainted-array
// imports: pkg-00-leak
char pool[32];
void run() {
  char *buf = new (pool) char[15];
}

"""Tests for regression replay, rebaseline, the service fan-out, and
the repro-regress CLI (repro.regress.replay + repro.cli)."""

import json

from repro.cli import regress_main
from repro.fuzz import FuzzConfig, run_campaign
from repro.regress import (
    RegressionBundle,
    RegressionStore,
    rebaseline_store,
    replay_bundle,
    replay_bundle_json,
    replay_store,
)
from repro.service import ServiceEngine
from repro.service.jobs import RegressReplayJob
from repro.service.workers import WORKER_REGISTRY

from .test_regress_store import AGREEING, DIVERGING, make_bundle


def seeded_store(tmp_path, count=3):
    """A store with ``count`` distinct diverging bundles."""
    store = RegressionStore(tmp_path / "store")
    for index in range(count):
        store.record(make_bundle(stdin=(8 + index,)))
    return store


class TestReplayBundle:
    def test_green_replay(self):
        result = replay_bundle(make_bundle())
        assert result.ok and result.status == "ok"
        assert result.expected["kind"] == result.observed["kind"]

    def test_agreement_bundle_replays_ok(self):
        assert replay_bundle(make_bundle(source=AGREEING, stdin=())).ok

    def test_verdict_drift(self):
        bundle = make_bundle()
        bundle.expected_kind = "agree"
        bundle.expected_fingerprint = ""
        result = replay_bundle(bundle)
        assert result.status == "verdict-drift"
        assert "kind" in result.detail

    def test_triage_drift(self):
        bundle = make_bundle()
        bundle.triage = "wild-pointer: pretend this was the old label"
        result = replay_bundle(bundle)
        assert result.status == "triage-drift"
        assert "wild-pointer" in result.detail

    def test_manual_triage_is_sticky(self):
        bundle = make_bundle(triage="manual: reviewed by hand")
        assert replay_bundle(bundle).ok

    def test_stale_version_is_a_failure_not_a_skip(self):
        bundle = make_bundle()
        bundle.versions = dict(bundle.versions, detector="0")
        result = replay_bundle(bundle)
        assert result.status == "stale-version"
        assert "rebaseline" in result.detail
        # The escape hatch compares verdicts across versions.
        assert replay_bundle(bundle, check_versions=False).ok

    def test_expected_invalid_replays_ok(self):
        bundle = make_bundle(source="@@ not a program", stdin=())
        assert bundle.expected_kind == "invalid"
        assert replay_bundle(bundle).ok

    def test_unjudgeable_input_is_invalid_run(self):
        bundle = make_bundle()
        bundle.source = "@@ not a program"
        result = replay_bundle(bundle)
        assert result.status == "invalid-run"

    def test_replay_bundle_json_rejects_garbage(self):
        result = replay_bundle_json("not json at all")
        assert result["status"] == "invalid-run"
        result = replay_bundle_json(json.dumps({"schema": 99, "id": "rb-x"}))
        assert result["status"] == "invalid-run"
        assert result["bundle_id"] == "rb-x"


class TestReplayStore:
    def test_clean_store_replays_green(self, tmp_path):
        store = seeded_store(tmp_path)
        report = replay_store(store)
        assert report.clean
        assert report.counts() == {"ok": len(store)}

    def test_drift_report_is_byte_stable_and_sorted(self, tmp_path):
        store = seeded_store(tmp_path)
        a, b = replay_store(store), replay_store(store)
        assert a.to_json() == b.to_json()
        ids = [r["bundle_id"] for r in a.to_dict()["results"]]
        assert ids == sorted(ids)

    def test_rebaseline_clears_drift(self, tmp_path):
        store = seeded_store(tmp_path, count=2)
        drifted_id = store.ids()[0]
        bundle = store.load(drifted_id)
        bundle.expected_kind = "agree"
        bundle.expected_fingerprint = ""
        store.record(bundle, overwrite=True)
        assert not replay_store(store).clean

        outcome = rebaseline_store(store)
        assert outcome["updated"] == [drifted_id]
        assert not outcome["failed"]
        assert replay_store(store).clean

    def test_rebaseline_after_version_bump(self, tmp_path):
        store = seeded_store(tmp_path, count=1)
        bundle = store.load(store.ids()[0])
        bundle.versions = dict(bundle.versions, detector="0")
        store.record(bundle, overwrite=True)
        assert replay_store(store).counts() == {"stale-version": 1}
        rebaseline_store(store)
        assert replay_store(store).clean

    def test_rebaseline_keeps_manual_triage(self, tmp_path):
        store = RegressionStore(tmp_path / "store")
        bundle_id, _ = store.record(make_bundle(triage="manual: reviewed"))
        rebaseline_store(store)
        assert store.load(bundle_id).triage == "manual: reviewed"

    def test_rebaseline_refuses_unjudgeable_input(self, tmp_path):
        store = seeded_store(tmp_path, count=1)
        bundle_id = store.ids()[0]
        document = json.loads(store.path_for(bundle_id).read_text())
        document["source"] = "@@ not a program"
        # keep the content address honest for the tampered source
        tampered = RegressionBundle.from_dict(document)
        store.path_for(bundle_id).unlink()
        new_id, _ = store.record(tampered)
        outcome = rebaseline_store(store)
        assert new_id in outcome["failed"]
        # the bundle is untouched, not silently rewritten
        assert store.load(new_id).expected_kind == tampered.expected_kind


class TestServiceFanOut:
    def test_regress_replay_job_registered(self):
        assert RegressReplayJob.KIND in WORKER_REGISTRY
        assert not RegressReplayJob.CACHEABLE

    def test_engine_replay_matches_sequential_for_any_worker_count(
        self, tmp_path
    ):
        store = seeded_store(tmp_path, count=5)
        sequential = replay_store(store).to_json()
        for workers in (1, 2, 4):
            with ServiceEngine(workers=workers, use_cache=False) as engine:
                fanned = engine.regress_replay(store, chunk_size=2)
            assert fanned.to_json() == sequential, workers

    def test_engine_replay_accepts_store_path(self, tmp_path):
        store = seeded_store(tmp_path, count=2)
        with ServiceEngine(workers=2, use_cache=False) as engine:
            report = engine.regress_replay(str(store.directory))
            snapshot = engine.metrics.snapshot()
        assert report.clean
        assert snapshot["gauges"]["regress.bundles"] == 2
        assert snapshot["counters"]["regress.replays_total"] == 2

    def test_failed_chunk_marks_bundles_not_drops_them(self, tmp_path):
        store = seeded_store(tmp_path, count=3)
        with ServiceEngine(
            workers=2, use_cache=False, fault_plan="crash:regress-replay:99"
        ) as engine:
            report = engine.regress_replay(store, chunk_size=2)
        assert len(report.results) == len(store)
        assert report.counts() == {"invalid-run": 3}
        assert all("chunk failed" in r.detail for r in report.results)


class TestCampaignAutoRecord:
    def test_campaign_records_divergences_and_replay_is_green(self, tmp_path):
        store = RegressionStore(tmp_path / "store")
        report = run_campaign(
            FuzzConfig(seed=3, iterations=60, minimize=False), store=store
        )
        assert report.divergences, "campaign found nothing to record"
        assert len(store) > 0
        replay = replay_store(store)
        assert replay.clean, replay.render()
        recorded = store.load(store.ids()[0])
        assert recorded.meta.get("recorded_by") == "fuzz-campaign"
        assert recorded.meta.get("seed") == 3


class TestRegressCli:
    def test_record_replay_list_gc_roundtrip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        source = tmp_path / "diverge.mc"
        source.write_text(DIVERGING)
        assert (
            regress_main(
                ["record", "--store", store_dir, "--source", str(source),
                 "--stdin", "8"]
            )
            == 0
        )
        assert "created rb-" in capsys.readouterr().out
        assert regress_main(["replay", "--store", store_dir]) == 0
        assert "no drift" in capsys.readouterr().out
        assert regress_main(["list", "--store", store_dir]) == 0
        assert "1 bundle(s)" in capsys.readouterr().out
        assert regress_main(["gc", "--store", store_dir, "--dry-run"]) == 0

    def test_replay_exits_one_on_drift_and_diff_explains(
        self, tmp_path, capsys
    ):
        store = seeded_store(tmp_path, count=1)
        bundle = store.load(store.ids()[0])
        bundle.expected_kind = "agree"
        bundle.expected_fingerprint = ""
        store.record(bundle, overwrite=True)
        store_dir = str(store.directory)
        assert regress_main(["replay", "--store", store_dir]) == 1
        assert regress_main(
            ["replay", "--store", store_dir, "--fail-on-drift"]
        ) == 1
        assert regress_main(
            ["replay", "--store", store_dir, "--allow-drift"]
        ) == 0
        capsys.readouterr()
        assert regress_main(["diff", "--store", store_dir]) == 1
        out = capsys.readouterr().out
        assert "verdict-drift" in out and "expected" in out
        assert regress_main(["rebaseline", "--store", store_dir]) == 0
        assert regress_main(["replay", "--store", store_dir]) == 0

    def test_replay_exits_one_on_version_bump_until_rebaseline(
        self, tmp_path
    ):
        store = seeded_store(tmp_path, count=1)
        bundle = store.load(store.ids()[0])
        bundle.versions = dict(bundle.versions, detector="0")
        store.record(bundle, overwrite=True)
        store_dir = str(store.directory)
        assert regress_main(["replay", "--store", store_dir]) == 1
        assert regress_main(
            ["replay", "--store", store_dir, "--skip-version-check"]
        ) == 0
        assert regress_main(["rebaseline", "--store", store_dir]) == 0
        assert regress_main(["replay", "--store", store_dir]) == 0

    def test_replay_jobs_writes_identical_drift_artifact(
        self, tmp_path, capsys
    ):
        store = seeded_store(tmp_path, count=3)
        store_dir = str(store.directory)
        artifacts = []
        for jobs in ("0", "2"):
            out = tmp_path / f"drift-{jobs}.json"
            assert regress_main(
                ["replay", "--store", store_dir, "--jobs", jobs,
                 "--out", str(out)]
            ) == 0
            artifacts.append(out.read_text())
        assert artifacts[0] == artifacts[1]
        data = json.loads(artifacts[0])
        assert data["clean"] is True and data["bundles"] == 3

    def test_usage_errors(self, tmp_path, capsys):
        missing = str(tmp_path / "absent")
        assert regress_main(["replay", "--store", missing]) == 2
        assert regress_main(["record", "--store", missing]) == 2
        capsys.readouterr()

"""A miniature injected-code ISA and its interpreter.

Code injection (Section 3.6.2) requires that attacker-written bytes be
*executable*: the attacker stores a payload in the overflowed region and
redirects control into it.  Real shellcode is x86; our simulated CPU
instead interprets this small instruction set — the security semantics
(NX bypass requirements, NOP sleds, syscall side effects, crashes on
garbage) carry over byte for byte.

Encoding (all little-endian):

=========  =======================  =====================================
opcode     operands                 effect
=========  =======================  =====================================
``0x90``   —                        NOP (sled filler, same as x86)
``0x68``   imm32                    PUSH immediate onto a scratch stack
``0xCD``   syscall# (1 byte)        SYSCALL: 1=exit, 2=spawn shell,
                                    3=write, 4=setuid
``0xC3``   —                        RET (ends the payload)
=========  =======================  =====================================

Anything else raises :class:`IllegalInstruction`, the simulated SIGILL a
sloppy payload earns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IllegalInstruction, NonExecutableMemory, SegmentationFault
from ..memory.address_space import AddressSpace

OP_NOP = 0x90
OP_PUSH = 0x68
OP_SYSCALL = 0xCD
OP_RET = 0xC3

SYS_EXIT = 1
SYS_SPAWN_SHELL = 2
SYS_WRITE = 3
SYS_SETUID = 4

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_SPAWN_SHELL: "spawn_shell",
    SYS_WRITE: "write",
    SYS_SETUID: "setuid",
}

#: Safety valve: a payload may not run longer than this many instructions.
MAX_STEPS = 10_000


@dataclass
class ShellcodeResult:
    """What an interpreted payload did."""

    start_address: int
    steps: int = 0
    syscalls: list[str] = field(default_factory=list)
    pushed: list[int] = field(default_factory=list)
    exited: bool = False

    @property
    def spawned_shell(self) -> bool:
        """True if the payload reached the classic goal."""
        return "spawn_shell" in self.syscalls


def assemble(*instructions) -> bytes:
    """Build payload bytes from ("nop"|"push",imm|"syscall",n|"ret") ops."""
    out = bytearray()
    for instruction in instructions:
        if instruction == "nop":
            out.append(OP_NOP)
        elif instruction == "ret":
            out.append(OP_RET)
        elif isinstance(instruction, tuple) and instruction[0] == "push":
            out.append(OP_PUSH)
            out += int(instruction[1]).to_bytes(4, "little", signed=False)
        elif isinstance(instruction, tuple) and instruction[0] == "syscall":
            out.append(OP_SYSCALL)
            out.append(int(instruction[1]))
        else:
            raise ValueError(f"unknown instruction {instruction!r}")
    return bytes(out)


def spawn_shell_payload(sled: int = 16) -> bytes:
    """The canonical attack payload: NOP sled + execve("/bin/sh") + ret.

    A sled widens the set of return addresses that land safely, just as
    in real exploits where the exact stack address is uncertain.
    """
    return (
        bytes([OP_NOP]) * sled
        + assemble(("push", 0x6E69622F), ("syscall", SYS_SPAWN_SHELL), "ret")
    )


def interpret(
    space: AddressSpace,
    address: int,
    enforce_nx: bool = True,
    max_steps: int = MAX_STEPS,
) -> ShellcodeResult:
    """Execute payload bytes starting at ``address``.

    Raises :class:`NonExecutableMemory` when NX is enforced and the
    segment lacks execute permission; :class:`SegmentationFault` when the
    address is unmapped; :class:`IllegalInstruction` on undecodable
    bytes.  All three are the realistic failure modes of a misaimed jump.
    """
    segment = space.find_segment(address)
    if segment is None:
        raise SegmentationFault(address, "execute", "jump target unmapped")
    if enforce_nx and not segment.permissions.execute:
        raise NonExecutableMemory(address)

    result = ShellcodeResult(start_address=address)
    pc = address
    while result.steps < max_steps:
        opcode = space.read(pc, 1)[0]
        result.steps += 1
        if opcode == OP_NOP:
            pc += 1
        elif opcode == OP_RET:
            result.exited = True
            break
        elif opcode == OP_PUSH:
            value = int.from_bytes(space.read(pc + 1, 4), "little")
            result.pushed.append(value)
            pc += 5
        elif opcode == OP_SYSCALL:
            number = space.read(pc + 1, 1)[0]
            name = SYSCALL_NAMES.get(number)
            if name is None:
                raise IllegalInstruction(pc + 1, number)
            result.syscalls.append(name)
            if name == "exit":
                result.exited = True
                break
            pc += 2
        else:
            raise IllegalInstruction(pc, opcode)
    return result

// package: pkg-03-direct
// imports: pkg-01-leak, pkg-02-leak
class Small { public: int f0; short f1; int f2; };
class Big : public Small { public: char g0; double g1; short g2; char g3; };
void run() {
  Big arena;
  Small *p = new (&arena) Small();
}

"""Tests for the MiniC++ dynamic executor.

The headline tests run the paper's listings *from source* and observe
the same corruption the hand-built attack scenarios produce — the
dynamic validation of every static finding.
"""

import pytest

from repro.errors import SimulatedTimeout, StackSmashingDetected
from repro.execution import run_source
from repro.memory.encoding import encode_pointer
from repro.runtime import CanaryPolicy, Machine, MachineConfig, password_file
from repro.workloads.corpus import (
    LISTING_11,
    LISTING_12,
    LISTING_13,
    LISTING_15,
    LISTING_19,
    LISTING_21,
    LISTING_22,
    LISTING_23,
)


def _plain_machine():
    return Machine(
        MachineConfig(canary_policy=CanaryPolicy.NONE, save_frame_pointer=True)
    )


def _guarded_machine():
    return Machine(
        MachineConfig(canary_policy=CanaryPolicy.RANDOM, save_frame_pointer=True)
    )


class TestBasics:
    def test_arithmetic_and_return(self):
        _, outcome = run_source(
            "int f(int a, int b) { return a * b + 1; }", entry="f", args=(6, 7)
        )
        assert outcome.return_value == 43

    def test_locals_and_assignment(self):
        _, outcome = run_source(
            "int f() { int x = 5; x = x + 2; return x; }", entry="f", args=()
        )
        assert outcome.return_value == 7

    def test_if_else(self):
        source = "int sign(int x) { if (x > 0) { return 1; } else { return 0; } }"
        assert run_source(source, entry="sign", args=(5,))[1].return_value == 1
        assert run_source(source, entry="sign", args=(-5,))[1].return_value == 0

    def test_while_loop(self):
        _, outcome = run_source(
            "int f(int n) { int s = 0; int i = 0; "
            "while (i < n) { s = s + i; ++i; } return s; }",
            entry="f",
            args=(5,),
        )
        assert outcome.return_value == 10

    def test_for_loop(self):
        _, outcome = run_source(
            "int f() { int s = 0; for (int i = 1; i <= 4; ++i) { s = s + i; } return s; }",
            entry="f",
            args=(),
        )
        assert outcome.return_value == 10

    def test_cin_reads_stdin(self):
        _, outcome = run_source(
            "int f() { int x = 0; cin >> x; return x; }",
            entry="f",
            args=(),
            stdin=(42,),
        )
        assert outcome.return_value == 42

    def test_cout_captures_output(self):
        interp, _ = run_source(
            'void f() { cout << "hello" << 7 << endl; }', entry="f", args=()
        )
        assert interp.outputs == ["hello", 7]

    def test_nested_function_calls(self):
        _, outcome = run_source(
            "int add(int a, int b) { return a + b; }"
            "int f() { return add(add(1, 2), 3); }",
            entry="f",
            args=(),
        )
        assert outcome.return_value == 6

    def test_global_scalar_roundtrip(self):
        _, outcome = run_source(
            "int counter = 10;"
            "int f() { counter = counter + 1; return counter; }",
            entry="f",
            args=(),
        )
        assert outcome.return_value == 11

    def test_class_member_access(self):
        _, outcome = run_source(
            "class P { public: int x, y; };"
            "int f() { P p; p.x = 3; p.y = 4; return p.x + p.y; }",
            entry="f",
            args=(),
        )
        assert outcome.return_value == 7

    def test_heap_new_and_arrow(self):
        _, outcome = run_source(
            "class P { public: int x; };"
            "int f() { P *p = new P(); p->x = 9; return p->x; }",
            entry="f",
            args=(),
        )
        assert outcome.return_value == 9

    def test_sizeof(self):
        _, outcome = run_source(
            "class S { public: double d; int i; };"
            "int f() { return sizeof(S); }",
            entry="f",
            args=(),
        )
        assert outcome.return_value == 16

    def test_step_budget_stops_runaway_loop(self):
        with pytest.raises(SimulatedTimeout):
            run_source(
                "void f() { while (1) { int x = 0; } }",
                entry="f",
                args=(),
                step_budget=1_000,
            )

    def test_string_argument_materialized(self):
        _, outcome = run_source(
            "int f(char *s) { char buf[8]; strncpy(buf, s, 8); return 1; }",
            entry="f",
            args=("hi",),
        )
        assert outcome.return_value == 1


class TestListingsFromSource:
    """Execute the actual corpus listings and observe the paper's results."""

    def test_listing11_data_bss_overflow(self):
        interp, _ = run_source(
            LISTING_11.source,
            entry="addStudent",
            args=(False,),
            stdin=(0x11111111, 0x22222222, 777),
        )
        stud2 = interp.globals.lookup("stud2")
        gpa_before = interp.machine.space.read_double(stud2.address)
        assert gpa_before == 3.0
        interp.run("addStudent", True)
        gpa_after = interp.machine.space.read_double(stud2.address)
        year_after = interp.machine.space.read_int(stud2.address + 8)
        assert gpa_after != gpa_before
        assert year_after == 777

    def test_listing12_heap_overflow(self):
        interp, _ = run_source(
            LISTING_12.source, stdin=(0x58585858, 0x59595959, 0x5A5A5A5A)
        )
        name_var = interp.globals.lookup("name")
        name_address = interp.machine.space.read_pointer(name_var.address)
        assert interp.machine.space.read_c_string(name_address) != "abcdefghijklmno"
        assert interp.machine.heap.is_corrupted()

    def test_listing13_hijack_unprotected(self):
        machine = _plain_machine()
        target = machine.text.function_named("system").address
        _, outcome = run_source(
            LISTING_13.source,
            entry="addStudent",
            args=(True,),
            machine=machine,
            stdin=(-1, target, -1),  # FP saved: ssn[1] is the return slot
        )
        assert outcome.frame_exit.hijacked
        assert outcome.frame_exit.execution.function_name == "system"
        assert machine.shell_spawned

    def test_listing13_naive_smash_detected_by_stackguard(self):
        machine = _guarded_machine()
        target = machine.text.function_named("system").address
        with pytest.raises(StackSmashingDetected):
            run_source(
                LISTING_13.source,
                entry="addStudent",
                args=(True,),
                machine=machine,
                stdin=(0x41414141, 0x42424242, target),
            )

    def test_listing13_selective_overwrite_evades_stackguard(self):
        """The §5.2 experiment, executed from the paper's own source."""
        machine = _guarded_machine()
        target = machine.text.function_named("system").address
        _, outcome = run_source(
            LISTING_13.source,
            entry="addStudent",
            args=(True,),
            machine=machine,
            stdin=(-1, -1, target),  # the guard skips canary and FP
        )
        assert outcome.frame_exit.hijacked
        assert outcome.frame_exit.canary_intact
        assert machine.shell_spawned

    def test_listing15_loop_bound_rewritten(self):
        machine = _plain_machine()
        _, outcome = run_source(
            LISTING_15.source,
            entry="addStudent",
            args=(True,),
            machine=machine,
            stdin=(7777,),
        )
        # n was 5; after the overflow the loop ran 7777 times.
        assert outcome.steps > 7777

    def test_listing19_two_step_from_source(self):
        machine = _plain_machine()
        machine.stack.push_region(1024)  # caller frames
        target = machine.text.function_named("system").address
        # Crafted uname: filler up to the return slot, then the target.
        payload = "A" * 68 + encode_pointer(target).decode("latin-1")
        _, outcome = run_source(
            LISTING_19.source,
            entry="sortAndAddUname",
            args=(payload, True, 8),
            machine=machine,
            stdin=(8, -1, 32, -1),  # n_unames=8 passes the check; ssn[1]→32
        )
        assert outcome.frame_exit.hijacked
        assert outcome.frame_exit.execution.function_name == "system"

    def test_listing21_info_leak_from_source(self):
        machine = Machine()
        machine.files.add(password_file())
        interp, _ = run_source(LISTING_21.source, machine=machine)
        _, stored = interp.stored[0][0], interp.stored[0][1]
        assert b"$6$" in stored  # password hashes left in the pool

    def test_listing22_object_leak_from_source(self):
        interp, _ = run_source(LISTING_22.source)
        address, stored = interp.stored[0]
        assert len(stored) == 32  # the GradStudent-sized arena, SSNs and all

    def test_listing23_leak_law_from_source(self):
        interp, _ = run_source(
            LISTING_23.source, entry="addStudents", args=(20,)
        )
        # 10 iterations (i += 2), 16 bytes each.
        assert interp.machine.tracker.leaked_bytes == 160


class TestStaticDynamicAgreement:
    """The detector's verdicts, validated by execution."""

    def test_oversize_finding_matches_observed_overflow(self):
        from repro.analysis import analyze_source

        report = analyze_source(LISTING_11.source)
        assert "PN-OVERSIZE" in report.rules_fired()
        interp, _ = run_source(
            LISTING_11.source,
            entry="addStudent",
            args=(True,),
            stdin=(1, 2, 3),
        )
        # The placement the detector flagged did overflow its arena.
        overflowing = interp.machine.placement_log.overflowing()
        assert overflowing
        assert overflowing[0].type_name == "GradStudent"

    def test_leak_finding_matches_observed_leak(self):
        from repro.analysis import analyze_source

        report = analyze_source(LISTING_23.source)
        assert "PN-LEAK" in report.rules_fired()
        interp, _ = run_source(LISTING_23.source, entry="addStudents", args=(4,))
        assert interp.machine.tracker.leaked_bytes > 0

    def test_safe_program_neither_flags_nor_overflows(self):
        from repro.analysis import Severity, analyze_source
        from repro.workloads.corpus import SAFE_PLACEMENT

        report = analyze_source(SAFE_PLACEMENT.source)
        assert not report.at_least(Severity.WARNING)
        interp, _ = run_source(SAFE_PLACEMENT.source, entry="recycle", args=())
        assert not interp.machine.placement_log.overflowing()

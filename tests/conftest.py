"""Shared fixtures: machines in the hardening configurations the paper
evaluates, plus the running-example classes."""

from __future__ import annotations

import pytest

from repro.runtime import CanaryPolicy, Machine, MachineConfig
from repro.workloads import make_student_classes


@pytest.fixture
def machine() -> Machine:
    """A baseline victim: no canary, FP saved, executable stack —
    the most permissive target, like the paper's unprotected builds."""
    return Machine(
        MachineConfig(canary_policy=CanaryPolicy.NONE, save_frame_pointer=True)
    )


@pytest.fixture
def bare_machine() -> Machine:
    """No canary and no saved FP (the paper's ssn[0]→ret case)."""
    return Machine(
        MachineConfig(canary_policy=CanaryPolicy.NONE, save_frame_pointer=False)
    )


@pytest.fixture
def guarded_machine() -> Machine:
    """StackGuard-style: random canary + saved FP (gcc -fstack-protector)."""
    return Machine(
        MachineConfig(
            canary_policy=CanaryPolicy.RANDOM,
            canary_seed=99,
            save_frame_pointer=True,
        )
    )


@pytest.fixture
def nx_machine() -> Machine:
    """Non-executable stack and heap (the Section 5.2 mitigation)."""
    return Machine(
        MachineConfig(
            canary_policy=CanaryPolicy.NONE,
            save_frame_pointer=True,
            nx_stack=True,
            nx_heap=True,
        )
    )


@pytest.fixture
def student_classes():
    """Plain (non-virtual) Student and GradStudent."""
    return make_student_classes(virtual=False)


@pytest.fixture
def virtual_student_classes():
    """Polymorphic Student and GradStudent (Section 3.8.2 variants)."""
    return make_student_classes(virtual=True)

"""The asyncio front-end over HTTP: endpoints, quotas, shard labels."""

import asyncio
import json

import pytest

from repro.cluster import (
    AsyncClusterClient,
    ClusterRouter,
    InProcessShard,
    QuotaManager,
    SubprocessShard,
    create_cluster_server,
)
from repro.cluster.quotas import DEFAULT_TENANT
from repro.service import ServiceError

VULN = """
class A { public: double d; };
class B : public A { public: int x[8]; };
void f() { A a; B *b = new (&a) B(); }
"""


def run_cluster(scenario, shards=2, quotas=None, **client_kwargs):
    """Start a live cluster + front-end, run ``scenario(client, router)``."""

    async def main():
        members = [InProcessShard(f"s{i}", workers=1) for i in range(shards)]
        router = ClusterRouter(members, vnodes=32)
        server = await create_cluster_server(router, quotas=quotas)
        client = AsyncClusterClient("127.0.0.1", server.port, **client_kwargs)
        try:
            return await scenario(client, router)
        finally:
            await server.close()

    return asyncio.run(main())


class TestEndpoints:
    def test_healthz(self):
        async def scenario(client, router):
            health = await client.healthz()
            assert health["status"] == "ok"
            assert health["shards_live"] == 2
            assert health["shards"] == ["s0", "s1"]

        run_cluster(scenario)

    def test_analyze_round_trip(self):
        async def scenario(client, router):
            response = await client.analyze(VULN, label="vuln")
            assert response["label"] == "vuln"
            assert "PN-OVERSIZE" in [f["rule"] for f in response["findings"]]

        run_cluster(scenario)

    def test_sweep_preserves_submission_order(self):
        async def scenario(client, router):
            pairs = [(f"l{i}", VULN + f"// {i}\n") for i in range(8)]
            response = await client.sweep(pairs)
            assert [r["label"] for r in response["reports"]] == [
                f"l{i}" for i in range(8)
            ]

        run_cluster(scenario)

    def test_attack_and_exec_round_trips(self):
        async def scenario(client, router):
            attack = await client.attacks(attack="data-bss-overflow")
            assert attack["summary"] == "ATTACK-WINS"
            result = await client.execute("int main(int a, char b) { return 9; }")
            assert result["return_value"] == 9

        run_cluster(scenario)

    def test_cluster_topology_endpoint(self):
        async def scenario(client, router):
            topology = await client.cluster()
            assert topology["ring"]["shards"] == ["s0", "s1"]
            assert topology["shards"]["s0"]["state"] == "active"

        run_cluster(scenario)

    def test_unknown_path_404_and_bad_body_400(self):
        async def scenario(client, router):
            with pytest.raises(ServiceError) as excinfo:
                await client.request("GET", "/nope")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                await client.request("POST", "/analyze", {"legacy": True})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                await client.request("POST", "/attacks", {"attack": "nope"})
            assert excinfo.value.status == 400

        run_cluster(scenario)

    def test_admin_kill_then_serving_continues(self):
        async def scenario(client, router):
            await client.analyze(VULN, label="before")
            await client.kill("s0")
            response = await client.analyze(VULN + "// 2\n", label="after")
            assert response["label"] == "after"
            assert (await client.healthz())["shards_live"] == 1

        run_cluster(scenario)

    def test_admin_drain_finishes_queue(self):
        async def scenario(client, router):
            sweep = asyncio.ensure_future(
                client.sweep([(f"d{i}", VULN + f"// {i}\n") for i in range(6)])
            )
            await asyncio.sleep(0.01)
            drained = await client.drain("s1")
            assert drained["drained"]["state"] == "draining"
            reports = (await sweep)["reports"]
            assert [r["label"] for r in reports] == [f"d{i}" for i in range(6)]

        run_cluster(scenario)


class TestQuotas:
    def test_429_with_retry_after_honored_by_client(self):
        # tiny bucket, fast refill: the client must wait out Retry-After
        # (from the JSON body) and then succeed
        quotas = QuotaManager(capacity=1, refill_rate=200.0)

        async def scenario(client, router):
            first = await client.analyze(VULN, label="a")
            assert first["label"] == "a"
            second = await client.analyze(VULN + "// b\n", label="b")
            assert second["label"] == "b"
            assert client.throttled_waits, "client never saw a 429"
            assert all(0 < wait <= 0.1 for wait in client.throttled_waits)

        run_cluster(scenario, quotas=quotas, tenant="burst")

    def test_429_surfaces_when_retries_exhausted(self):
        quotas = QuotaManager(capacity=1, refill_rate=0.001)

        async def scenario(client, router):
            await client.analyze(VULN, label="a")
            with pytest.raises(ServiceError) as excinfo:
                await client.analyze(VULN + "// b\n", label="b")
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after > 1

        run_cluster(
            scenario, quotas=quotas, tenant="dry", max_throttle_retries=0
        )

    def test_burst_at_exactly_capacity_is_admitted(self):
        quotas = QuotaManager(capacity=4, refill_rate=0.001)

        async def scenario(client, router):
            pairs = [(f"l{i}", VULN + f"// {i}\n") for i in range(4)]
            response = await client.sweep(pairs)  # cost 4 == capacity
            assert len(response["reports"]) == 4
            with pytest.raises(ServiceError) as excinfo:
                await client.analyze(VULN + "// over\n")
            assert excinfo.value.status == 429

        run_cluster(
            scenario, quotas=quotas, tenant="exact", max_throttle_retries=0
        )

    def test_tenant_isolation_over_http(self):
        quotas = QuotaManager(capacity=1, refill_rate=0.001)

        async def scenario(client, router):
            starving = client
            fed = AsyncClusterClient(
                "127.0.0.1",
                starving._transport.port,
                tenant="fed",
                max_throttle_retries=0,
            )
            await starving.analyze(VULN, label="a")
            with pytest.raises(ServiceError):
                await starving.analyze(VULN + "// b\n")
            response = await fed.analyze(VULN + "// c\n", label="c")
            assert response["label"] == "c"

        run_cluster(
            scenario, quotas=quotas, tenant="starving", max_throttle_retries=0
        )

    def test_quota_counters_on_metrics(self):
        quotas = QuotaManager(capacity=1, refill_rate=0.001)

        async def scenario(client, router):
            await client.analyze(VULN, label="a")
            with pytest.raises(ServiceError):
                await client.analyze(VULN + "// b\n")
            metrics = await client.metrics()
            assert metrics["quotas"]["granted"] == 1
            assert metrics["quotas"]["throttled"] == 1
            assert "q1" in metrics["quotas"]["tenants"]
            assert metrics["counters"]["cluster.http_throttled"] == 1
            text = await client.metrics_text()
            assert "repro_cluster_throttled_q1_total" in text

        run_cluster(
            scenario, quotas=quotas, tenant="q1", max_throttle_retries=0
        )

    def test_missing_tenant_header_is_anon(self):
        quotas = QuotaManager(capacity=1, refill_rate=0.001)

        async def scenario(client, router):
            await client.analyze(VULN, label="a")
            metrics = await client.metrics()
            assert DEFAULT_TENANT in metrics["quotas"]["tenants"]

        run_cluster(scenario, quotas=quotas)  # no tenant= → no header


class TestMetrics:
    def test_per_shard_labels_in_prometheus_text(self):
        async def scenario(client, router):
            await client.sweep([(f"m{i}", VULN + f"// {i}\n") for i in range(8)])
            text = await client.metrics_text()
            assert 'shard_id="router"' in text
            assert "repro_cluster_jobs_completed_total" in text
            # the pool gauges exist on every shard, busy or idle
            assert 'repro_pool_workers{shard_id="s0"}' in text
            assert 'repro_pool_workers{shard_id="s1"}' in text
            assert 'repro_scheduler_jobs_submitted_total{shard_id="s' in text
            # TYPE lines must not repeat across shard renders
            type_lines = [
                line
                for line in text.splitlines()
                if line.startswith("# TYPE repro_pool_workers ")
            ]
            assert len(type_lines) == 1

        run_cluster(scenario)

    def test_json_document_keys_shards_by_id(self):
        async def scenario(client, router):
            await client.analyze(VULN, label="m")
            metrics = await client.metrics()
            assert set(metrics["shards"]) == {"s0", "s1"}
            assert metrics["shards"]["s0"]["shard"]["shard_id"] == "s0"
            assert metrics["tiers"]["lookups"] >= 1
            assert metrics["counters"]["cluster.jobs_completed"] >= 1

        run_cluster(scenario)


class TestSubprocessShards:
    """The deployment shape: each shard a child repro-serve process."""

    def test_round_trip_cache_peering_and_failover(self):
        async def main():
            shards = []
            try:
                for index in range(2):
                    shard = SubprocessShard(f"p{index}", workers=1)
                    await shard.start()
                    shards.append(shard)
                router = ClusterRouter(shards, vnodes=32)
                server = await create_cluster_server(router)
                client = AsyncClusterClient("127.0.0.1", server.port)
                try:
                    pairs = [(f"l{i}", VULN + f"// {i}\n") for i in range(4)]
                    cold = await client.sweep(pairs)
                    warm = await client.sweep(pairs)
                    assert json.dumps(cold, sort_keys=True) == json.dumps(
                        warm, sort_keys=True
                    )
                    tiers = (await client.metrics())["tiers"]
                    assert tiers["hits"]["mem"] >= 4
                    # per-shard labels flow through the HTTP shard protocol
                    text = await client.metrics_text()
                    assert 'shard_id="p0"' in text and 'shard_id="p1"' in text
                    # kill the child process; the survivor absorbs the keys
                    await client.kill("p0")
                    survived = await client.sweep(pairs)
                    assert json.dumps(survived, sort_keys=True) == json.dumps(
                        cold, sort_keys=True
                    )
                finally:
                    await server.close()
            finally:
                for shard in shards:
                    await shard.close()

        asyncio.run(main())

"""Worker functions and the executor pool that runs them.

Each job kind maps to a module-level function taking the job's payload
dict and returning a JSON-able result dict — module-level so the
process backend can pickle references into child interpreters.  The
dict-in/dict-out contract is what makes results cacheable on disk and
transportable over the HTTP API without a second serialization layer.

``WorkerPool`` wraps a :mod:`concurrent.futures` executor.  The thread
backend is the default (cheap startup, shares the warm interpreter);
the process backend buys real CPU parallelism for big sweeps on
multi-core hosts.  Custom job kinds registered at runtime via
:func:`register_worker` are visible to the thread backend only — child
processes import this module fresh and see just the built-in registry.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Optional

from .faults import WORKER_FAULTS, FaultInjected, FaultKind, FaultPlan

from ..analysis import AnalysisReport, Finding, Severity, analyze_source, run_tool_suite
from ..attacks import all_attacks, attack_by_name, environment_by_label
from ..attacks.base import AttackResult
from ..defenses import ALL_DEFENSES, defense_by_name, evaluate_matrix
from ..errors import SimulatedProcessError


class TransientWorkerError(RuntimeError):
    """A failure worth retrying (worker lost, resource contention)."""


def _jsonify(value):
    """Coerce arbitrary detail values into JSON-able shapes."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# -- result serialization --------------------------------------------------


def report_payload(report: AnalysisReport, label: str = "") -> dict:
    """An :class:`AnalysisReport` as a deterministic dict."""
    return {
        "label": label,
        "tool": report.tool,
        "flagged": report.flagged,
        "findings": [
            {
                "rule": finding.rule,
                "severity": finding.severity.label(),
                "message": finding.message,
                "line": finding.line,
                "function": finding.function,
            }
            for finding in sorted(
                report.findings,
                key=lambda f: (f.line, f.rule, f.function, f.message),
            )
        ],
    }


def report_from_payload(payload: dict) -> AnalysisReport:
    """Rebuild a report object so CLI rendering matches the direct path."""
    report = AnalysisReport(tool=payload["tool"])
    for entry in payload["findings"]:
        report.add(
            Finding(
                rule=entry["rule"],
                severity=Severity[entry["severity"].upper()],
                message=entry["message"],
                line=entry["line"],
                function=entry["function"],
                tool=payload["tool"],
            )
        )
    return report


def attack_payload(result: AttackResult) -> dict:
    """An :class:`AttackResult` as a JSON-able dict."""
    return {
        "name": result.name,
        "paper_ref": result.paper_ref,
        "environment": result.environment,
        "succeeded": result.succeeded,
        "detected_by": result.detected_by,
        "crashed": result.crashed,
        "detail": _jsonify(result.detail),
        "events": [str(event) for event in result.events],
        "summary": cell_summary(
            result.succeeded, result.detected_by, result.crashed
        ),
    }


def cell_summary(succeeded: bool, detected_by: Optional[str], crashed: bool) -> str:
    """The compact matrix-cell text (mirrors ``MatrixCell.summary``)."""
    if succeeded:
        return "ATTACK-WINS"
    if detected_by:
        return f"detected({detected_by})"
    if crashed:
        return "crashed"
    return "prevented"


# -- worker functions ------------------------------------------------------


def run_analyze(payload: dict) -> dict:
    """Worker for :class:`AnalyzeJob`."""
    report = analyze_source(payload["source"])
    result = report_payload(report, label=payload.get("label", ""))
    if payload.get("legacy"):
        result["legacy"] = [
            report_payload(legacy_report)
            for _, legacy_report in run_tool_suite(payload["source"])
        ]
    return result


def run_attack(payload: dict) -> dict:
    """Worker for :class:`AttackJob`."""
    scenario = attack_by_name(payload["attack"])
    env = environment_by_label(payload.get("env", "unprotected"))
    return attack_payload(scenario.run(env))


def run_matrix(payload: dict) -> dict:
    """Worker for :class:`MatrixJob` (the sequential whole-matrix path)."""
    attack_names = payload.get("attacks") or ()
    defense_names = payload.get("defenses") or ()
    scenarios = (
        [attack_by_name(name) for name in attack_names]
        if attack_names
        else all_attacks()
    )
    defenses = (
        tuple(defense_by_name(name) for name in defense_names)
        if defense_names
        else ALL_DEFENSES
    )
    matrix = evaluate_matrix(scenarios, defenses)
    return {
        "defenses": [defense.name for defense in defenses],
        "cells": [
            {
                "attack": cell.attack,
                "defense": cell.defense,
                "summary": cell.summary,
                "succeeded": cell.result.succeeded,
                "detected_by": cell.result.detected_by,
                "crashed": cell.result.crashed,
            }
            for cell in matrix.cells
        ],
        "attacks_succeeding": {
            defense.name: matrix.wins_for_defense(defense.name)
            for defense in defenses
        },
    }


def run_matrix_cell(payload: dict) -> dict:
    """Worker for :class:`MatrixCellJob` (one sweep cell).

    Lazily imported so the service layer does not pull the sweep stack
    (fuzz oracles, regress store) in at import time.
    """
    from ..matrix.sweep import evaluate_cell

    return evaluate_cell(payload)


def run_exec(payload: dict) -> dict:
    """Worker for :class:`ExecJob`."""
    from ..execution import run_source
    from ..runtime import CanaryPolicy, Machine, MachineConfig

    machine = Machine(
        MachineConfig(
            canary_policy=(
                CanaryPolicy.RANDOM if payload.get("canary") else CanaryPolicy.NONE
            )
        )
    )
    engine = payload.get("engine", "ast")
    try:
        if engine == "bytecode":
            from ..execution.vm import run_source_bytecode

            interpreter, outcome, engine = run_source_bytecode(
                payload["source"],
                entry=payload.get("entry", "main"),
                args=tuple(payload.get("args") or ()),
                machine=machine,
                stdin=tuple(payload.get("stdin") or ()),
            )
        else:
            interpreter, outcome = run_source(
                payload["source"],
                entry=payload.get("entry", "main"),
                args=tuple(payload.get("args") or ()),
                machine=machine,
                stdin=tuple(payload.get("stdin") or ()),
            )
    except SimulatedProcessError as error:
        return {
            "died": True,
            "error": str(error),
            "error_type": type(error).__name__,
            "events": [str(event) for event in machine.events],
        }
    return {
        "died": False,
        "return_value": _jsonify(outcome.return_value),
        "steps": outcome.steps,
        "engine": engine,
        "hijacked": bool(
            outcome.frame_exit is not None and outcome.frame_exit.hijacked
        ),
        "outputs": [str(output) for output in interpreter.outputs],
        "events": [str(event) for event in machine.events],
        "placements": [
            {
                "type": record.type_name,
                "size": record.size,
                "address": record.address,
                "arena_size": record.arena_size,
                "overflow": record.overflows_arena,
            }
            for record in machine.placement_log.records
        ],
    }


def run_fuzz_campaign(payload: dict) -> dict:
    """Worker for :class:`FuzzCampaignJob` (one deterministic batch).

    Imported lazily so the service layer does not pull the fuzzing
    stack in at import time (and ``repro.fuzz`` can import the service
    layer for its campaign driver without a cycle).
    """
    from ..fuzz.campaign import run_batch

    return run_batch(payload)


def run_regress_replay(payload: dict) -> dict:
    """Worker for :class:`RegressReplayJob` (one chunk of bundles).

    The bundles travel *in* the payload as canonical JSON, so the
    worker never touches the store directory — pure and process-safe.
    Lazily imported for the same reason as the fuzz worker.
    """
    from ..regress.replay import replay_bundle_json

    check_versions = payload.get("check_versions", True)
    engine = payload.get("engine", "ast")
    return {
        "results": [
            replay_bundle_json(
                document,
                check_versions=check_versions,
                engine="" if engine == "ast" else engine,
            )
            for document in payload.get("bundles", ())
        ]
    }


def run_score(payload: dict) -> dict:
    """Worker for :class:`ScoreJob`: one package's risk dicts.

    Propagation needs the whole graph and stays in the engine; the
    worker does only the per-package half (parse + detect + registry
    mapping), which is the expensive part.  Lazily imported so process
    workers don't pay for the registry until they score.
    """
    from ..score.propagate import analyze_package_source

    return {
        "label": payload.get("label", ""),
        "risks": analyze_package_source(
            payload["source"], payload.get("label", "")
        ),
    }


#: Kind → worker function.  Extensible at runtime (thread backend only).
WORKER_REGISTRY: dict = {
    "analyze": run_analyze,
    "attack": run_attack,
    "matrix": run_matrix,
    "matrix-cell": run_matrix_cell,
    "exec": run_exec,
    "fuzz-campaign": run_fuzz_campaign,
    "regress-replay": run_regress_replay,
    "score": run_score,
}


def register_worker(kind: str, fn: Callable[[dict], dict]) -> None:
    """Register (or replace) the worker for a job kind."""
    WORKER_REGISTRY[kind] = fn


def execute_job(kind: str, payload: dict) -> dict:
    """Dispatch one job payload to its worker (picklable entry point)."""
    try:
        worker = WORKER_REGISTRY[kind]
    except KeyError:
        raise KeyError(f"no worker registered for job kind '{kind}'")
    return worker(payload)


def execute_job_with_faults(plan: FaultPlan, kind: str, payload: dict) -> dict:
    """The worker-side fault seam: crash or hang before the real work."""
    rule = plan.activate(WORKER_FAULTS, job_kind=kind)
    if rule is not None:
        if rule.kind is FaultKind.CRASH:
            raise FaultInjected(f"injected worker crash for kind '{kind}'")
        time.sleep(rule.delay)  # hang past the deadline, then finish
    return execute_job(kind, payload)


class WorkerPool:
    """A sized pool of job executors over threads or processes."""

    def __init__(
        self,
        max_workers: int = 4,
        backend: str = "thread",
        fault_plan: Optional[FaultPlan] = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if backend not in ("thread", "process"):
            raise ValueError("backend must be 'thread' or 'process'")
        if fault_plan is not None and backend != "thread":
            raise ValueError("fault injection requires the thread backend")
        self.size = max_workers
        self.backend = backend
        self.fault_plan = fault_plan
        self._resize_lock = threading.Lock()
        self._extra_workers = 0
        if backend == "process":
            self._executor = ProcessPoolExecutor(max_workers=max_workers)
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-worker"
            )

    def submit(self, kind: str, payload: dict) -> Future:
        """Queue one job on the underlying executor."""
        if self.fault_plan is not None:
            return self._executor.submit(
                execute_job_with_faults, self.fault_plan, kind, payload
            )
        return self._executor.submit(execute_job, kind, payload)

    # -- capacity repair ---------------------------------------------------

    @property
    def extra_workers(self) -> int:
        """Replacement workers currently covering abandoned slots."""
        with self._resize_lock:
            return self._extra_workers

    def expand(self, count: int = 1) -> bool:
        """Grow capacity by ``count`` to cover an abandoned (hung) worker.

        Thread backend only: the executor's worker budget is raised so
        the next ``submit`` spawns a replacement thread instead of
        queueing behind the hung one.  Returns ``False`` when the
        backend cannot be resized (process pools re-fork on their own).
        """
        executor = self._executor
        if self.backend != "thread" or not hasattr(executor, "_max_workers"):
            return False
        with self._resize_lock:
            executor._max_workers += count
            self._extra_workers += count
        return True

    def shrink(self, count: int = 1) -> None:
        """Give back replacement capacity once an abandoned worker ends.

        The budget drops immediately; a surplus idle thread (the
        recovered straggler) dies with the pool rather than being
        reaped, which is the usual ThreadPoolExecutor behavior.
        """
        executor = self._executor
        if self.backend != "thread" or not hasattr(executor, "_max_workers"):
            return
        with self._resize_lock:
            count = min(count, self._extra_workers)
            if count > 0:
                executor._max_workers -= count
                self._extra_workers -= count

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""The service engine: one object wiring cache, pool, scheduler, metrics.

``ServiceEngine`` is the programmatic front door used by the HTTP
server, the CLI batch paths, and the benchmarks.  It owns the component
lifecycles (use it as a context manager) and exposes the high-level
operations — single analyses, parallel corpus sweeps, attack runs, the
E14 matrix — as blocking calls that internally fan out through the
scheduler.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence, Tuple

from ..attacks import all_attacks, attack_by_name
from ..defenses import ALL_DEFENSES, defense_by_name
from ..workloads.corpus import corpus_sources
from .cache import ResultCache
from .faults import FaultPlan, fault_plan_from
from .jobs import (
    HIGH_PRIORITY,
    LOW_PRIORITY,
    NORMAL_PRIORITY,
    AnalyzeJob,
    AttackJob,
    ExecJob,
    MatrixJob,
)
from .metrics import MetricsRegistry, render_prometheus
from .scheduler import Scheduler
from .tracing import TraceBuffer
from .workers import WorkerPool, cell_summary


class ServiceEngine:
    """Configured job engine with a blocking convenience API."""

    def __init__(
        self,
        workers: int = 4,
        backend: str = "thread",
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        cache_version: Optional[str] = None,
        max_queue: int = 1024,
        default_timeout: float = 60.0,
        max_retries: int = 2,
        fault_plan: "FaultPlan | str | None" = None,
        trace_capacity: int = 512,
        shard_id: str = "",
    ):
        self.shard_id = shard_id
        self.metrics = MetricsRegistry()
        self.fault_plan = fault_plan_from(fault_plan)
        self.traces = TraceBuffer(capacity=trace_capacity)
        self.cache = (
            ResultCache(
                directory=cache_dir,
                version=cache_version,
                fault_plan=self.fault_plan,
            )
            if use_cache
            else None
        )
        self.pool = WorkerPool(
            max_workers=workers, backend=backend, fault_plan=self.fault_plan
        )
        self.scheduler = Scheduler(
            pool=self.pool,
            cache=self.cache,
            metrics=self.metrics,
            max_queue=max_queue,
            default_timeout=default_timeout,
            max_retries=max_retries,
            fault_plan=self.fault_plan,
            traces=self.traces,
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        self.scheduler.shutdown(wait=wait)
        self.pool.shutdown()

    def __enter__(self) -> "ServiceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- analysis ----------------------------------------------------------

    def analyze(
        self,
        source: str,
        label: str = "",
        legacy: bool = False,
        priority: int = HIGH_PRIORITY,
    ) -> dict:
        """Analyze one source, served from cache when warm."""
        return self.scheduler.run(
            AnalyzeJob(source=source, label=label, legacy=legacy),
            priority=priority,
        )

    def sweep(
        self,
        sources: Iterable[Tuple[str, str]],
        legacy: bool = False,
        priority: int = LOW_PRIORITY,
    ) -> List[dict]:
        """Analyze ``(label, source)`` pairs in parallel, preserving order."""
        handles = self.scheduler.map(
            [
                AnalyzeJob(source=source, label=label, legacy=legacy)
                for label, source in sources
            ],
            priority=priority,
        )
        return [handle.result() for handle in handles]

    def corpus_sweep(self, legacy: bool = False) -> List[dict]:
        """Analyze the built-in paper corpus in parallel."""
        return self.sweep(corpus_sources(), legacy=legacy)

    # -- attacks -----------------------------------------------------------

    def attack(
        self,
        name: str,
        env: str = "unprotected",
        priority: int = HIGH_PRIORITY,
    ) -> dict:
        """Run one attack under one environment."""
        return self.scheduler.run(AttackJob(attack=name, env=env), priority=priority)

    def gallery(self, env: str = "unprotected") -> List[dict]:
        """Run the whole attack gallery in parallel under one environment."""
        handles = self.scheduler.map(
            [
                AttackJob(attack=scenario.name, env=env)
                for scenario in all_attacks()
            ]
        )
        return [handle.result() for handle in handles]

    def matrix(
        self,
        attacks: Sequence[str] = (),
        defenses: Sequence[str] = (),
        parallel: bool = True,
    ) -> dict:
        """The E14 attack × defense matrix as a dict.

        ``parallel=True`` decomposes the matrix into one
        :class:`AttackJob` per cell so independent cells run (and cache)
        concurrently; ``parallel=False`` runs the classic sequential
        :func:`repro.defenses.evaluate_matrix` inside a single worker.
        """
        for name in attacks:  # reject unknown names up front, not per-cell
            attack_by_name(name)
        for name in defenses:
            defense_by_name(name)
        if not parallel:
            return self.scheduler.run(
                MatrixJob(attacks=tuple(attacks), defenses=tuple(defenses))
            )
        attack_names = list(attacks) or [s.name for s in all_attacks()]
        chosen = (
            [d for d in ALL_DEFENSES if d.name in set(defenses)]
            if defenses
            else list(ALL_DEFENSES)
        )
        handles = [
            (
                attack_name,
                defense.name,
                self.scheduler.submit(
                    AttackJob(attack=attack_name, env=defense.environment.label),
                    priority=NORMAL_PRIORITY,
                ),
            )
            for attack_name in attack_names
            for defense in chosen
        ]
        cells = []
        wins: dict = {defense.name: 0 for defense in chosen}
        for attack_name, defense_name, handle in handles:
            result = handle.result()
            cells.append(
                {
                    "attack": attack_name,
                    "defense": defense_name,
                    "summary": cell_summary(
                        result["succeeded"],
                        result["detected_by"],
                        result["crashed"],
                    ),
                    "succeeded": result["succeeded"],
                    "detected_by": result["detected_by"],
                    "crashed": result["crashed"],
                }
            )
            if result["succeeded"]:
                wins[defense_name] += 1
        return {
            "defenses": [defense.name for defense in chosen],
            "cells": cells,
            "attacks_succeeding": wins,
        }

    def matrix_sweep(
        self,
        rows=None,
        defenses: Sequence[str] = (),
        engine: str = "ast",
        seed: int = 1,
        regress_dir: Optional[str] = None,
        step_budget: int = 50_000,
        timeout: float = 120.0,
    ) -> dict:
        """The full modern-mitigation sweep, fanned out cell-per-job.

        Rows default to gallery attacks + generator seed families (+
        regression bundles when ``regress_dir`` is given); cells are
        submitted row-major and collected in submission order, so the
        returned report is byte-identical to the sequential
        :func:`repro.matrix.run_sweep` at any worker count.
        """
        from ..matrix.sweep import build_report, collect_rows
        from .jobs import MatrixCellJob

        if rows is None:
            rows = collect_rows(seed=seed, regress_dir=regress_dir)
        defense_names = list(defenses) or [d.name for d in ALL_DEFENSES]
        for name in defense_names:
            defense_by_name(name)  # reject unknown names up front
        handles = [
            self.scheduler.submit(
                MatrixCellJob(
                    row_kind=row.kind,
                    row_id=row.row_id,
                    source=row.source,
                    stdin=tuple(row.stdin),
                    defense=name,
                    engine="" if row.kind == "attack" else engine,
                    step_budget=step_budget,
                ),
                priority=NORMAL_PRIORITY,
                timeout=timeout,
            )
            for row in rows
            for name in defense_names
        ]
        cells = [handle.result() for handle in handles]
        report = build_report(rows, defense_names, cells)
        self.metrics.counter("matrix.sweeps_total").inc()
        self.metrics.counter("matrix.cells_total").inc(len(cells))
        self.metrics.gauge("matrix.rows").set(len(rows))
        self.metrics.gauge("matrix.defenses").set(len(defense_names))
        self.metrics.gauge("matrix.attack_wins").set(
            sum(report["attacks_succeeding"].values())
        )
        self.metrics.gauge("matrix.risks").set(len(report["risks"]))
        return report

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        source: str,
        entry: str = "main",
        args: Sequence = (),
        stdin: Sequence = (),
        canary: bool = False,
        engine: str = "ast",
    ) -> dict:
        """Run MiniC++ source on a fresh simulated machine."""
        return self.scheduler.run(
            ExecJob(
                source=source,
                entry=entry,
                args=tuple(args),
                stdin=tuple(stdin),
                canary=canary,
                engine=engine,
            ),
            priority=HIGH_PRIORITY,
        )

    # -- fuzzing -----------------------------------------------------------

    def fuzz_campaign(
        self,
        seed: int = 1,
        iterations: int = 200,
        step_budget: int = 50_000,
        canary: bool = True,
        minimize: bool = True,
        max_corpus: int = 256,
        engine: str = "ast",
        batch_size: int = 50,
        batch_timeout: float = 120.0,
        store=None,
        checkpoint_dir=None,
        resume: bool = False,
        skip_version_check: bool = False,
        stop_event=None,
        stop_after_rounds=None,
    ):
        """Run a differential fuzzing campaign over this worker pool.

        Returns a :class:`repro.fuzz.CampaignReport`.  Imported lazily:
        the fuzz package drives the service layer, not vice versa.
        ``checkpoint_dir``/``resume`` persist and continue long
        campaigns (see :mod:`repro.fuzz.checkpoint`); ``stop_event``
        requests a graceful round-boundary stop that raises
        :class:`repro.fuzz.CampaignInterrupted` after a final
        checkpoint is written.
        """
        from ..fuzz import FuzzConfig, run_campaign

        config = FuzzConfig(
            seed=seed,
            iterations=iterations,
            step_budget=step_budget,
            canary=canary,
            minimize=minimize,
            max_corpus=max_corpus,
            engine=engine,
        )
        return run_campaign(
            config,
            engine=self,
            batch_size=batch_size,
            batch_timeout=batch_timeout,
            store=store,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            skip_version_check=skip_version_check,
            stop_event=stop_event,
            stop_after_rounds=stop_after_rounds,
        )

    # -- regression replay -------------------------------------------------

    def regress_replay(
        self,
        store,
        chunk_size: int = 8,
        check_versions: bool = True,
        timeout: float = 300.0,
        engine: str = "ast",
    ):
        """Replay a regression store over the worker pool.

        ``store`` is a :class:`repro.regress.RegressionStore` or a
        directory path.  Bundles are chunked in id order into
        ``regress-replay`` jobs; results merge in submission order and
        the returned :class:`repro.regress.DriftReport` is byte-identical
        to a sequential replay for any worker count.  A failed or
        timed-out chunk marks each of its bundles ``invalid-run`` rather
        than dropping them — a replay gate must never lose bundles.
        """
        from ..regress import DriftReport, RegressionStore, ReplayResult
        from .jobs import RegressReplayJob
        from .scheduler import JobFailed

        if not isinstance(store, RegressionStore):
            store = RegressionStore(store, create=False)
        chunk_size = max(1, chunk_size)
        chunks: List[List[str]] = []
        current: List[str] = []
        for bundle in store.bundles():
            current.append(bundle.to_json())
            if len(current) >= chunk_size:
                chunks.append(current)
                current = []
        if current:
            chunks.append(current)
        handles = [
            self.scheduler.submit(
                RegressReplayJob(
                    bundles=tuple(chunk),
                    check_versions=check_versions,
                    engine=engine,
                ),
                priority=NORMAL_PRIORITY,
                timeout=timeout,
            )
            for chunk in chunks
        ]
        report = DriftReport()
        for chunk, handle in zip(chunks, handles):
            try:
                results = handle.result()["results"]
            except JobFailed as error:
                results = [
                    {
                        "bundle_id": json.loads(doc).get("id", "?"),
                        "status": "invalid-run",
                        "detail": f"replay chunk failed: {error}",
                    }
                    for doc in chunk
                ]
            for entry in results:
                report.results.append(ReplayResult.from_dict(entry))
        self.metrics.gauge("regress.bundles").set(len(report.results))
        self.metrics.counter("regress.replays_total").inc(len(report.results))
        drifted = len(report.drifted)
        if drifted:
            self.metrics.counter("regress.drift_total").inc(drifted)
        return report

    # -- risk scoring ------------------------------------------------------

    def score_corpus(self, graph, attenuation: Optional[float] = None):
        """Score a package graph over the worker pool.

        ``graph`` is a :class:`repro.score.PackageGraph` or a package
        directory path.  Per-package scoring fans out as ``score``
        jobs; propagation runs in-process once every package's risks
        are back.  Results are collected in submission (sorted-name)
        order, so the returned :class:`repro.score.CorpusScore` is
        byte-identical to :func:`repro.score.score_graph` at any
        worker count.
        """
        from ..score.packages import PackageGraph, load_package_dir
        from ..score.propagate import DEFAULT_ATTENUATION, score_packages
        from ..score.threats import registry_version
        from .jobs import ScoreJob

        if not isinstance(graph, PackageGraph):
            graph = load_package_dir(graph)
        if attenuation is None:
            attenuation = DEFAULT_ATTENUATION
        registry = registry_version()
        names = graph.names()
        handles = [
            self.scheduler.submit(
                ScoreJob(
                    source=graph.package(name).source,
                    label=name,
                    registry=registry,
                ),
                priority=NORMAL_PRIORITY,
            )
            for name in names
        ]
        risks_by_package = {
            name: handle.result()["risks"]
            for name, handle in zip(names, handles)
        }
        score = score_packages(graph, risks_by_package, attenuation)
        totals = score.totals
        self.metrics.counter("score.packages_scored").inc(totals["packages"])
        self.metrics.counter("score.risks_found").inc(totals["risks"])
        self.metrics.gauge("score.flawed_packages").set(
            totals["flawed_packages"]
        )
        self.metrics.gauge("score.max_blast_radius").set(
            totals["max_blast_radius"]
        )
        return score

    # -- introspection -----------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Scheduler + cache + pool state for the ``/metrics`` endpoint."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.stats() if self.cache else {"enabled": False}
        snapshot["pool"] = {
            "backend": self.pool.backend,
            "workers": self.pool.size,
            "extra_workers": self.pool.extra_workers,
        }
        snapshot["faults"] = (
            self.fault_plan.stats() if self.fault_plan else {"enabled": False}
        )
        from ..execution.vm import cache_stats

        snapshot["bytecode"] = cache_stats()
        if self.shard_id:
            snapshot["shard"] = {"shard_id": self.shard_id}
        return snapshot

    def metrics_prometheus(self, emit_types: bool = True) -> str:
        """The snapshot in Prometheus text exposition format.

        A shard-scoped engine labels every sample with its
        ``shard_id``, so the cluster front-end can concatenate the
        renders of all shards into one scrape (pass
        ``emit_types=False`` for every shard after the first so
        ``# TYPE`` lines appear once).
        """
        labels = {"shard_id": self.shard_id} if self.shard_id else None
        return render_prometheus(
            self.metrics_snapshot(), labels=labels, emit_types=emit_types
        )

    # -- cluster cache seam ------------------------------------------------

    def cache_lookup(self, key: str) -> "tuple[Optional[dict], Optional[str]]":
        """``(value, tier)`` from this shard's result cache, or ``(None, None)``.

        The cluster router's tiered cache uses this to peek a peer
        shard's cache (tier ``"mem"`` or ``"disk"``) before recomputing.
        """
        if self.cache is None:
            return None, None
        return self.cache.probe(key)

    def cache_store(self, key: str, value: dict) -> bool:
        """Warm this shard's cache with a result computed elsewhere."""
        if self.cache is None:
            return False
        return self.cache.put(key, value)

    def trace(self, key: str) -> Optional[dict]:
        """The span record of the latest submission of ``key``, if traced."""
        trace = self.traces.get(key)
        return trace.to_dict() if trace is not None else None

    def health(self) -> dict:
        """Liveness payload for ``/healthz``."""
        from .. import __version__

        payload = {
            "status": "ok",
            "version": __version__,
            "workers": self.pool.size,
            "backend": self.pool.backend,
            "cache": self.cache is not None,
        }
        if self.shard_id:
            payload["shard_id"] = self.shard_id
        return payload

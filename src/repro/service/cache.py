"""Result cache: in-memory LRU in front of an optional on-disk store.

Entries are keyed by ``(job key, version)``.  The version string
defaults to the package release plus the detector revision
(:data:`repro.analysis.DETECTOR_VERSION`), so bumping either invalidates
every cached analysis without touching files on disk — stale versions
simply stop being read.  Hit/miss/eviction accounting is kept on the
cache itself and folded into the service metrics snapshot.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from .faults import CACHE_FAULTS, FaultKind, FaultPlan


def default_cache_version() -> str:
    """Package release + detector revision, e.g. ``1.0.0+d1``."""
    from .. import __version__
    from ..analysis import DETECTOR_VERSION

    return f"{__version__}+d{DETECTOR_VERSION}"


class ResultCache:
    """Thread-safe LRU result cache with optional disk persistence."""

    def __init__(
        self,
        directory: Optional[str] = None,
        max_entries: int = 1024,
        version: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.version = version or default_cache_version()
        self.max_entries = max_entries
        self.directory = Path(directory) if directory else None
        self.fault_plan = fault_plan
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.stores = 0
        self.write_errors = 0

    # -- paths -------------------------------------------------------------

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        safe_version = self.version.replace("/", "_")
        return self.directory / safe_version / f"{key}.json"

    # -- lookups -----------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The cached result for ``key`` under the current version."""
        return self.probe(key)[0]

    def probe(self, key: str) -> "tuple[Optional[dict], Optional[str]]":
        """``(value, tier)`` — which tier served the lookup.

        ``tier`` is ``"mem"`` for an in-memory hit, ``"disk"`` when the
        entry was promoted from the on-disk store, and ``None`` on a
        miss.  The cluster router's tiered cache uses the tier to
        account hits per layer; :meth:`get` is this minus the tier.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key], "mem"
            path = self._path(key)
            if path is not None and path.is_file():
                try:
                    value = json.loads(path.read_text())
                except (OSError, ValueError):
                    value = None
                if isinstance(value, dict):
                    self._insert(key, value)
                    self.hits += 1
                    self.disk_hits += 1
                    return value, "disk"
            self.misses += 1
            return None, None

    def put(self, key: str, value: dict) -> bool:
        """Store a result in memory and (when configured) on disk.

        The in-memory insert happens under the lock; the disk write does
        NOT — a slow or wedged filesystem must never serialize readers
        behind it.  Disk errors (full disk, read-only directory) and
        non-JSON-serializable values are
        absorbed into :attr:`write_errors` rather than raised: a job
        whose worker succeeded stays succeeded even when the cache
        cannot persist its result.  Returns ``True`` when the entry is
        durable on disk (or no disk store is configured).
        """
        with self._lock:
            self._insert(key, value)
            self.stores += 1
        return self._write_disk(key, value)

    def _write_disk(self, key: str, value: dict) -> bool:
        """Best-effort persistence; the fault plan's disk seam lives here."""
        path = self._path(key)
        if path is None:
            return True
        try:
            # Serialization stays inside the guarded region: a worker
            # result that is not JSON-able (sets, exotic objects) is a
            # write error like any other — never an exception out of a
            # job that already SUCCEEDED.
            data = json.dumps(value, sort_keys=True)
            if self.fault_plan is not None:
                rule = self.fault_plan.activate(CACHE_FAULTS, key=key)
                if rule is not None:
                    if rule.kind is FaultKind.UNWRITABLE_DISK:
                        raise OSError(30, "injected read-only cache directory")
                    if rule.kind is FaultKind.SLOW_DISK:
                        time.sleep(rule.delay)
                    elif rule.kind is FaultKind.CORRUPT_CACHE:
                        data = '{"corrupt'  # readers treat this as a miss
            path.parent.mkdir(parents=True, exist_ok=True)
            # unique tmp name: concurrent writers of one key must not
            # interleave inside each other's half-written file
            tmp = path.parent / f"{path.name}.{threading.get_ident():x}.tmp"
            tmp.write_text(data)
            tmp.replace(path)
        except (OSError, TypeError, ValueError):
            with self._lock:
                self.write_errors += 1
            return False
        return True

    def _insert(self, key: str, value: dict) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    # -- maintenance -------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory store; optionally the disk files too."""
        with self._lock:
            self._entries.clear()
            if disk and self.directory is not None:
                version_dir = self._path("x")
                if version_dir is not None:
                    for file in version_dir.parent.glob("*.json"):
                        file.unlink(missing_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Accounting snapshot for the metrics endpoint."""
        with self._lock:
            return {
                "version": self.version,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "stores": self.stores,
                "write_errors": self.write_errors,
                "hit_rate": round(self.hit_rate, 4),
                "persistent": self.directory is not None,
            }

"""Dynamic execution of MiniC++ programs on the simulated machine.

The dynamic complement to :mod:`repro.analysis`: the same sources the
static detector flags are *run* here, so every report can be validated
against observed memory corruption.

Two engines share one semantics: the AST :class:`Interpreter` (the
precise-fault reference) and the :class:`BytecodeVM` (a compiled IR
with a threaded dispatch loop — see :mod:`repro.execution.bytecode`),
which the fuzzing stack can differential-test against the interpreter.
"""

from .bytecode import (
    BYTECODE_VERSION,
    CompiledProgram,
    UnsupportedConstruct,
    compile_program,
    disassemble,
)
from .interpreter import (
    DEFAULT_STEP_BUDGET,
    ExecutionError,
    FunctionOutcome,
    Interpreter,
    run_source,
)
from .values import LValue, Scope, Variable, truthy
from .vm import (
    BytecodeVM,
    cache_stats,
    compile_source,
    compiled_for,
    reset_cache,
    run_source_bytecode,
)

__all__ = [
    "BYTECODE_VERSION",
    "BytecodeVM",
    "CompiledProgram",
    "DEFAULT_STEP_BUDGET",
    "ExecutionError",
    "FunctionOutcome",
    "Interpreter",
    "LValue",
    "Scope",
    "UnsupportedConstruct",
    "Variable",
    "cache_stats",
    "compile_program",
    "compile_source",
    "compiled_for",
    "disassemble",
    "reset_cache",
    "run_source",
    "run_source_bytecode",
    "truthy",
]

// package: pkg-12-guarded
// imports: pkg-05-direct, pkg-07-leak, pkg-08-tainted-array
class Small { public: short f0; short f1; double f2; char f3; };
class Big : public Small { public: int g0; int g1; double g2; };
void run() {
  Big arena;
  if (sizeof(Small) <= sizeof(Big)) {
    Small *p = new (&arena) Small();
  }
}

// package: pkg-20-helper
// imports: pkg-00-leak, pkg-03-direct, pkg-12-guarded
class Small { public: float f0; short f1; short f2; };
class Big : public Small { public: float g0; double g1; };
Small *helper(Big *where) {
  Small *p = new (where) Small();
  return p;
}
void run() {
  Big arena;
  Small *p = helper(&arena);
}

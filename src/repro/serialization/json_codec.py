"""JSON-style object (de)serialization — the paper's remote-object model.

Section 3.2: objects arrive from untrusted sources — *"Web
browsers/clients send objects via java scripts/Ajax applications; one
such object model is JSON"* — and are re-materialized with placement new.
A :class:`RemoteObject` is the wire-side representation: a class name, a
field map, and a taint pedigree.  The codec converts between simulated
instances and this representation; the *deserializing placement
constructor* (:func:`construct_from_remote`) is the attack surface —
it writes however many fields the wire object claims.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from ..cxx.classdef import ClassDef
from ..cxx.object_model import Instance
from ..cxx.layout import ClassType
from ..errors import ApiMisuseError
from ..taint.engine import TaintLabel


@dataclass(frozen=True)
class RemoteObject:
    """A serialized object as received off the wire."""

    class_name: str
    fields: Mapping[str, Any]
    labels: frozenset = frozenset({TaintLabel.REMOTE_OBJECT})

    def get(self, name: str, default: Any = None) -> Any:
        """Field access with a default (wire objects may omit fields)."""
        return self.fields.get(name, default)

    @property
    def tainted(self) -> bool:
        """True when the object came from an untrusted source."""
        return bool(self.labels)

    def to_json(self) -> str:
        """Render as the JSON a browser/service would actually send."""
        return json.dumps({"__class__": self.class_name, **dict(self.fields)})

    @classmethod
    def from_json(
        cls, text: str, trusted: bool = False
    ) -> "RemoteObject":
        """Parse a JSON payload into a wire object."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ApiMisuseError(f"malformed remote object: {exc}") from None
        if not isinstance(data, dict) or "__class__" not in data:
            raise ApiMisuseError("remote object must be a dict with __class__")
        class_name = data.pop("__class__")
        labels = frozenset() if trusted else frozenset({TaintLabel.REMOTE_OBJECT})
        return cls(class_name=class_name, fields=data, labels=labels)


def serialize(instance: Instance) -> RemoteObject:
    """Read an instance out of simulated memory into wire form.

    Array fields are serialized element-wise at their declared length —
    note this *includes* whatever the memory currently holds, which is
    how Listing 22's ``store(st)`` exfiltrates residue.  Class-type
    members nest as JSON objects (their own ``__class__`` tag plus
    fields), the shape an Ajax/JSON peer would actually emit.
    """
    fields: dict[str, Any] = {}
    for slot in instance.layout.field_slots:
        if isinstance(slot.ctype, ClassType):
            nested = serialize(instance.nested(slot.name))
            fields[slot.name] = {
                "__class__": nested.class_name,
                **dict(nested.fields),
            }
        else:
            fields[slot.name] = instance.get(slot.name)
    return RemoteObject(
        class_name=instance.class_def.name, fields=fields, labels=frozenset()
    )


def construct_from_remote(
    ctx: Any,
    class_def: ClassDef,
    address: int,
    remote: RemoteObject,
    taint: Any = None,
) -> Instance:
    """The deserializing placement constructor (Section 2.1 use-case 4).

    Writes every field *the class declares* from the wire object — so a
    program that deserializes into a ``GradStudent`` view writes
    ``sizeof(GradStudent)`` bytes no matter how small the arena was.  If
    a taint engine is supplied, each written field is labelled with the
    wire object's pedigree.
    """
    instance = Instance(ctx, class_def, address)
    layout = instance.layout
    if layout.has_vptr:
        table = ctx.vtables.ensure(class_def)
        for vptr_offset in layout.vptr_offsets:
            ctx.space.write_pointer(address + vptr_offset, table.address)
    for slot in layout.field_slots:
        if slot.name not in remote.fields:
            continue
        value = remote.fields[slot.name]
        if isinstance(slot.ctype, ClassType) and isinstance(value, Mapping):
            nested_fields = {k: v for k, v in value.items() if k != "__class__"}
            construct_from_remote(
                ctx,
                slot.ctype.class_def,
                address + slot.offset,
                RemoteObject(
                    class_name=value.get("__class__", slot.ctype.class_def.name),
                    fields=nested_fields,
                    labels=remote.labels,
                ),
                taint=taint,
            )
            continue
        instance.set(slot.name, value)
        if taint is not None and remote.tainted:
            taint.mark(address + slot.offset, slot.ctype.size, *remote.labels)
    return instance


def wire_size_estimate(remote: RemoteObject) -> int:
    """A *wire-side* size guess (bytes of JSON) — deliberately unrelated
    to the in-memory size, modelling why programmers misjudge fit."""
    return len(remote.to_json())

"""Result cache: in-memory LRU in front of an optional on-disk store.

Entries are keyed by ``(job key, version)``.  The version string
defaults to the package release plus the detector revision
(:data:`repro.analysis.DETECTOR_VERSION`), so bumping either invalidates
every cached analysis without touching files on disk — stale versions
simply stop being read.  Hit/miss/eviction accounting is kept on the
cache itself and folded into the service metrics snapshot.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional


def default_cache_version() -> str:
    """Package release + detector revision, e.g. ``1.0.0+d1``."""
    from .. import __version__
    from ..analysis import DETECTOR_VERSION

    return f"{__version__}+d{DETECTOR_VERSION}"


class ResultCache:
    """Thread-safe LRU result cache with optional disk persistence."""

    def __init__(
        self,
        directory: Optional[str] = None,
        max_entries: int = 1024,
        version: Optional[str] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.version = version or default_cache_version()
        self.max_entries = max_entries
        self.directory = Path(directory) if directory else None
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.stores = 0

    # -- paths -------------------------------------------------------------

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        safe_version = self.version.replace("/", "_")
        return self.directory / safe_version / f"{key}.json"

    # -- lookups -----------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The cached result for ``key`` under the current version."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            path = self._path(key)
            if path is not None and path.is_file():
                try:
                    value = json.loads(path.read_text())
                except (OSError, ValueError):
                    value = None
                if isinstance(value, dict):
                    self._insert(key, value)
                    self.hits += 1
                    self.disk_hits += 1
                    return value
            self.misses += 1
            return None

    def put(self, key: str, value: dict) -> None:
        """Store a result in memory and (when configured) on disk."""
        with self._lock:
            self._insert(key, value)
            self.stores += 1
            path = self._path(key)
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(".tmp")
                tmp.write_text(json.dumps(value, sort_keys=True))
                tmp.replace(path)

    def _insert(self, key: str, value: dict) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    # -- maintenance -------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory store; optionally the disk files too."""
        with self._lock:
            self._entries.clear()
            if disk and self.directory is not None:
                version_dir = self._path("x")
                if version_dir is not None:
                    for file in version_dir.parent.glob("*.json"):
                        file.unlink(missing_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Accounting snapshot for the metrics endpoint."""
        with self._lock:
            return {
                "version": self.version,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "stores": self.stores,
                "hit_rate": round(self.hit_rate, 4),
                "persistent": self.directory is not None,
            }

"""The modern-mitigation sweep: every workload × every defense.

The E14 matrix evaluates the hand-written attack gallery.  This module
widens both axes: rows are the gallery scenarios *plus* the vulnerable
twin of every generator seed family *plus* every committed regression
bundle, and columns are the full defense roster including the modern
mitigations (shadow call stack, VRT, memory tagging).  Program rows run
on the simulated machine built by the defense's environment — which is
how the sweep demonstrates, mechanically, that the §5.1 *source fix*
(checked placement) cannot protect programs it was never compiled into,
while the machine-level mitigations can.

Determinism is load-bearing: cell evaluation is pure (fresh machine,
seeded canaries, fixed stdin), rows and defenses are ordered, and the
report is canonical JSON with no engine or timing fields — so the same
sweep is byte-identical at any worker count and on either execution
engine, which is what lets CI diff a committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..attacks import all_attacks, attack_by_name
from ..attacks.base import classify_failure
from ..defenses import ALL_DEFENSES, defense_by_name
from ..errors import SimulatedProcessError

#: Schema stamp for saved sweep reports.
SCHEMA = 1

#: Campaign seed the seed-family rows are generated under.
DEFAULT_SEED = 1

#: Step budget for program rows (matches the fuzz oracle default).
DEFAULT_STEP_BUDGET = 50_000


@dataclass(frozen=True)
class MatrixRow:
    """One sweep row: an attack scenario or a runnable program."""

    kind: str  # "attack" | "seed" | "regress"
    row_id: str
    source: str = ""
    stdin: tuple = ()

    @property
    def is_program(self) -> bool:
        return self.kind != "attack"


# -- row collection ---------------------------------------------------------


def attack_rows() -> list:
    """The gallery scenarios, in gallery order."""
    return [
        MatrixRow(kind="attack", row_id=scenario.name)
        for scenario in all_attacks()
    ]


def seed_rows(seed: int = DEFAULT_SEED) -> list:
    """The vulnerable twin of every generator seed family."""
    from ..fuzz.seeds import generator_seeds

    return [
        MatrixRow(
            kind="seed",
            row_id=entry.family,
            source=entry.source,
            stdin=tuple(entry.stdin),
        )
        for entry in generator_seeds(seed)
        if entry.label == "vulnerable"
    ]


def regress_rows(store_dir: str) -> list:
    """Every committed regression bundle, in bundle-id order."""
    from ..regress import RegressionStore

    store = RegressionStore(store_dir, create=False)
    return [
        MatrixRow(
            kind="regress",
            row_id=bundle.bundle_id,
            source=bundle.source,
            stdin=tuple(bundle.stdin),
        )
        for bundle in store.bundles()
    ]


def collect_rows(
    seed: int = DEFAULT_SEED, regress_dir: Optional[str] = None
) -> list:
    """The full deterministic row list for one sweep."""
    rows = attack_rows() + seed_rows(seed)
    if regress_dir:
        rows += regress_rows(regress_dir)
    return rows


# -- cell evaluation --------------------------------------------------------


def _cell(summary: str, succeeded: bool, detected_by, crashed: bool) -> dict:
    return {
        "summary": summary,
        "succeeded": succeeded,
        "detected_by": detected_by,
        "crashed": crashed,
    }


def run_attack_cell(attack_name: str, defense_name: str) -> dict:
    """One gallery scenario under one defense (fresh environment)."""
    scenario = attack_by_name(attack_name)
    defense = defense_by_name(defense_name)
    result = scenario.run(defense.fresh_environment())
    if result.succeeded:
        summary = "ATTACK-WINS"
    elif result.detected_by:
        summary = f"detected({result.detected_by})"
    elif result.crashed:
        summary = "crashed"
    else:
        summary = "prevented"
    return _cell(summary, result.succeeded, result.detected_by, result.crashed)


def run_program_cell(
    source: str,
    stdin: Sequence,
    defense_name: str,
    engine: str = "ast",
    step_budget: int = DEFAULT_STEP_BUDGET,
) -> dict:
    """One MiniC++ program on the defense environment's machine.

    The run mirrors the fuzz dynamic oracle (entry planning, password
    file, memory-event tap, secret-leak probe) except that the machine
    comes from ``defense.fresh_environment().make_machine()``, so
    machine-level mitigations are armed while source-level disciplines
    (checked placement, sanitize-on-reuse) have nothing to hook — the
    interpreter places objects itself, exactly the legacy-code gap §5
    worries about.
    """
    from ..fuzz.oracles import (
        DEFAULT_STDIN,
        VULNERABLE_EVENTS,
        _entry_plan,
        _secret_leaked,
    )
    from ..memory import MemoryEventTap
    from ..runtime import password_file

    defense = defense_by_name(defense_name)
    env = defense.fresh_environment()
    try:
        plan = _entry_plan(source)
    except Exception:
        return _cell("invalid", False, None, False)
    if plan is None:
        return _cell("invalid", False, None, False)
    entry, args = plan

    machine = env.make_machine()
    machine.files.add(password_file())
    tap = MemoryEventTap(machine.space)
    machine.event_tap = tap
    machine.space.add_access_hook(tap)

    compiled = None
    if engine == "bytecode":
        from ..execution.vm import compiled_for

        compiled, _ = compiled_for(source)

    events: set = set()
    executor = None
    feed = tuple(stdin) or DEFAULT_STDIN
    try:
        if compiled is not None:
            from ..execution.vm import BytecodeVM

            executor = BytecodeVM(
                compiled, machine=machine, step_budget=step_budget
            )
            if feed:
                machine.stdin.feed(*feed)
            outcome = executor.run(entry, *args)
        else:
            from ..execution import run_source

            executor, outcome = run_source(
                source,
                entry=entry,
                args=args,
                machine=machine,
                stdin=feed,
                step_budget=step_budget,
            )
        if outcome.frame_exit is not None and outcome.frame_exit.hijacked:
            events.add("hijack")
    except SimulatedProcessError as error:
        detected_by, crashed = classify_failure(error)
        if detected_by:
            return _cell(f"detected({detected_by})", False, detected_by, False)
        return _cell("crashed", False, None, True)
    except Exception:
        return _cell("invalid", False, None, False)

    for record in machine.placement_log.records:
        if record.overflows_arena:
            events.add("placement-overflow")
    if executor is not None and _secret_leaked(executor.stored):
        events.add("leak-detected")
    events.update(tap.kinds)
    if events & VULNERABLE_EVENTS:
        return _cell("ATTACK-WINS", True, None, False)
    return _cell("prevented", False, None, False)


def evaluate_cell(payload: dict) -> dict:
    """Worker-shaped cell evaluation (dict in, dict out)."""
    row_kind = payload.get("row_kind", "attack")
    defense = payload.get("defense", "none")
    if row_kind == "attack":
        cell = run_attack_cell(payload["row_id"], defense)
    else:
        cell = run_program_cell(
            payload.get("source", ""),
            tuple(payload.get("stdin") or ()),
            defense,
            engine=payload.get("engine") or "ast",
            step_budget=payload.get("step_budget") or DEFAULT_STEP_BUDGET,
        )
    cell["row_kind"] = row_kind
    cell["row_id"] = payload["row_id"]
    cell["defense"] = defense
    return cell


# -- report assembly --------------------------------------------------------


def build_report(
    rows: Sequence,
    defense_names: Sequence[str],
    cells: Iterable[dict],
) -> dict:
    """Assemble the canonical sweep report from evaluated cells.

    ``cells`` must arrive in row-major submission order (every defense
    for row 0, then row 1, ...).  The report carries no engine, worker
    count, or timing — byte-identity across those knobs is the point.
    """
    from ..score.threats import risks_from_matrix

    cell_list = list(cells)
    report_rows = []
    totals = {name: 0 for name in defense_names}
    index = 0
    for row in rows:
        row_cells = {}
        for name in defense_names:
            cell = cell_list[index]
            index += 1
            row_cells[name] = cell["summary"]
            if cell["succeeded"]:
                totals[name] += 1
        report_rows.append(
            {"kind": row.kind, "id": row.row_id, "cells": row_cells}
        )
    matrix_dict = {
        "cells": [
            {
                "attack": cell["row_id"],
                "defense": cell["defense"],
                "summary": cell["summary"],
            }
            for cell in cell_list
            if cell.get("row_kind") == "attack"
        ]
    }
    risks = [risk.to_dict() for risk in risks_from_matrix(matrix_dict)]
    return {
        "schema": SCHEMA,
        "defenses": list(defense_names),
        "rows": report_rows,
        "attacks_succeeding": totals,
        "risks": risks,
    }


def canonical_report_json(report: dict) -> str:
    """The byte-stable encoding used for baselines and ``--json``."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def render_report(report: dict, column_width: int = 24) -> str:
    """A fixed-width table of the sweep (rows grouped by kind)."""
    defenses = report["defenses"]
    header = f"{'row':44s}" + "".join(
        f"{name:>{column_width}s}" for name in defenses
    )
    lines = [header, "-" * len(header)]
    for row in report["rows"]:
        label = f"{row['kind']}:{row['id']}"
        line = f"{label:44s}" + "".join(
            f"{row['cells'].get(name, '?'):>{column_width}s}"
            for name in defenses
        )
        lines.append(line)
    lines.append("-" * len(header))
    totals = report["attacks_succeeding"]
    lines.append(
        f"{'rows where the attack wins':44s}"
        + "".join(f"{totals.get(name, 0):>{column_width}d}" for name in defenses)
    )
    if report.get("risks"):
        lines.append(f"risks (matrix-cell evidence): {len(report['risks'])}")
    return "\n".join(lines)


def diff_reports(baseline: dict, current: dict) -> list:
    """Cell-level outcome drift between two sweep reports.

    Returns human-readable drift lines; empty means no drift.  Rows or
    defenses present on one side only are drift too — a silently
    vanished row must fail the gate, not shrink it.
    """
    drift = []
    base_defenses = list(baseline.get("defenses", ()))
    cur_defenses = list(current.get("defenses", ()))
    if base_defenses != cur_defenses:
        drift.append(
            f"defense roster changed: {base_defenses} -> {cur_defenses}"
        )
    base_rows = {
        (row["kind"], row["id"]): row["cells"]
        for row in baseline.get("rows", ())
    }
    cur_rows = {
        (row["kind"], row["id"]): row["cells"]
        for row in current.get("rows", ())
    }
    for key in sorted(base_rows.keys() | cur_rows.keys()):
        kind, row_id = key
        base_cells = base_rows.get(key)
        cur_cells = cur_rows.get(key)
        if base_cells is None:
            drift.append(f"{kind}:{row_id}: new row (not in baseline)")
            continue
        if cur_cells is None:
            drift.append(f"{kind}:{row_id}: row missing from current sweep")
            continue
        for name in sorted(base_cells.keys() | cur_cells.keys()):
            before = base_cells.get(name, "<absent>")
            after = cur_cells.get(name, "<absent>")
            if before != after:
                drift.append(
                    f"{kind}:{row_id} under {name}: {before} -> {after}"
                )
    return drift


# -- sequential driver ------------------------------------------------------


def run_sweep(
    rows: Optional[Sequence] = None,
    defenses: Sequence[str] = (),
    engine: str = "ast",
    seed: int = DEFAULT_SEED,
    regress_dir: Optional[str] = None,
    step_budget: int = DEFAULT_STEP_BUDGET,
) -> dict:
    """Evaluate the sweep in-process, sequentially (the ``--jobs 0``
    path and the reference the fanned-out path must byte-match)."""
    if rows is None:
        rows = collect_rows(seed=seed, regress_dir=regress_dir)
    defense_names = list(defenses) or [d.name for d in ALL_DEFENSES]
    for name in defense_names:
        defense_by_name(name)  # reject unknown names up front
    cells = [
        evaluate_cell(
            {
                "row_kind": row.kind,
                "row_id": row.row_id,
                "source": row.source,
                "stdin": tuple(row.stdin),
                "defense": name,
                "engine": "" if row.kind == "attack" else engine,
                "step_budget": step_budget,
            }
        )
        for row in rows
        for name in defense_names
    ]
    return build_report(rows, defense_names, cells)

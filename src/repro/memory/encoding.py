"""Little-endian scalar encoding for the simulated 32-bit process.

The paper's experiments ran on 32-bit Ubuntu 10.04 (gcc 4.4.3):
``sizeof(int) == sizeof(void*) == 4`` and ``sizeof(double) == 8``.  This
module is the single place where Python values become bytes in the
simulated address space and back, so every overflow writes exactly the
byte pattern a real process would see.
"""

from __future__ import annotations

import struct

from ..errors import ApiMisuseError

# Scalar widths for the simulated ILP32 target.
CHAR_SIZE = 1
SHORT_SIZE = 2
INT_SIZE = 4
LONG_SIZE = 4
LONG_LONG_SIZE = 8
FLOAT_SIZE = 4
DOUBLE_SIZE = 8
POINTER_SIZE = 4
BOOL_SIZE = 1

# Natural alignments (match gcc on 32-bit Linux, where double is
# 8-aligned inside structs under -malign-double semantics used by the
# paper's layout narrative; see DESIGN.md section 4).
DOUBLE_ALIGN = 8

_STRUCT_BY_WIDTH_SIGNED = {1: "<b", 2: "<h", 4: "<i", 8: "<q"}
_STRUCT_BY_WIDTH_UNSIGNED = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}


def _check_width(width: int) -> None:
    if width not in (1, 2, 4, 8):
        raise ApiMisuseError(f"unsupported scalar width {width}")


def encode_int(value: int, width: int = INT_SIZE, signed: bool = True) -> bytes:
    """Encode an integer as ``width`` little-endian bytes.

    Values are wrapped modulo ``2**(8*width)`` first, mirroring C's
    implementation-defined narrowing rather than raising — attacks rely on
    being able to store e.g. an address into an ``int`` member.
    """
    _check_width(width)
    mask = (1 << (8 * width)) - 1
    wrapped = value & mask
    if signed:
        # Reinterpret the wrapped bit pattern as two's-complement.
        sign_bit = 1 << (8 * width - 1)
        if wrapped & sign_bit:
            as_signed = wrapped - (1 << (8 * width))
        else:
            as_signed = wrapped
        return struct.pack(_STRUCT_BY_WIDTH_SIGNED[width], as_signed)
    return struct.pack(_STRUCT_BY_WIDTH_UNSIGNED[width], wrapped)


def decode_int(data: bytes, signed: bool = True) -> int:
    """Decode little-endian bytes as an integer of ``len(data)`` width."""
    width = len(data)
    _check_width(width)
    fmt = _STRUCT_BY_WIDTH_SIGNED[width] if signed else _STRUCT_BY_WIDTH_UNSIGNED[width]
    return struct.unpack(fmt, bytes(data))[0]


def encode_double(value: float) -> bytes:
    """Encode an IEEE-754 binary64 value (8 bytes, little-endian)."""
    return struct.pack("<d", value)


def decode_double(data: bytes) -> float:
    """Decode 8 little-endian bytes as an IEEE-754 binary64 value."""
    if len(data) != DOUBLE_SIZE:
        raise ApiMisuseError(f"double requires {DOUBLE_SIZE} bytes, got {len(data)}")
    return struct.unpack("<d", bytes(data))[0]


def encode_float(value: float) -> bytes:
    """Encode an IEEE-754 binary32 value (4 bytes, little-endian)."""
    return struct.pack("<f", value)


def decode_float(data: bytes) -> float:
    """Decode 4 little-endian bytes as an IEEE-754 binary32 value."""
    if len(data) != FLOAT_SIZE:
        raise ApiMisuseError(f"float requires {FLOAT_SIZE} bytes, got {len(data)}")
    return struct.unpack("<f", bytes(data))[0]


def encode_pointer(address: int) -> bytes:
    """Encode a 32-bit pointer (unsigned, little-endian)."""
    return encode_int(address, POINTER_SIZE, signed=False)


def decode_pointer(data: bytes) -> int:
    """Decode a 32-bit pointer."""
    if len(data) != POINTER_SIZE:
        raise ApiMisuseError(
            f"pointer requires {POINTER_SIZE} bytes, got {len(data)}"
        )
    return decode_int(data, signed=False)


def encode_c_string(text: str, buffer_size: int | None = None) -> bytes:
    """Encode ``text`` as a NUL-terminated byte string.

    If ``buffer_size`` is given, the result is truncated/zero-padded to
    exactly that many bytes (the terminator may be lost on truncation,
    mirroring ``strncpy`` semantics).
    """
    raw = text.encode("latin-1", errors="replace") + b"\x00"
    if buffer_size is None:
        return raw
    if buffer_size < 0:
        raise ApiMisuseError(f"negative buffer size {buffer_size}")
    if len(raw) >= buffer_size:
        return raw[:buffer_size]
    return raw.ljust(buffer_size, b"\x00")


def decode_c_string(data: bytes) -> str:
    """Decode bytes up to (not including) the first NUL."""
    raw = bytes(data)
    nul = raw.find(0)
    if nul >= 0:
        raw = raw[:nul]
    return raw.decode("latin-1", errors="replace")
